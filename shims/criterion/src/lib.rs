//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness behind criterion's API surface as used
//! by this workspace: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `black_box`. It runs each benchmark `sample_size`
//! times (after one warm-up iteration) and prints min/mean/max — no
//! statistics engine, no HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Recorded per-sample durations of the last `iter` call.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f` once per sample (plus one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        let n = b.times.len().max(1);
        let total: Duration = b.times.iter().sum();
        let mean = total / n as u32;
        let min = b.times.iter().min().copied().unwrap_or_default();
        let max = b.times.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{}: mean {:?} (min {:?}, max {:?}, {} samples)",
            self.name, id, mean, min, max, n
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.name, f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.name, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== group {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a benchmark group runner, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let input = 10u64;
        group.bench_with_input(BenchmarkId::new("sum", input), &input, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::new("noop", 1), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_expands() {
        benches();
    }
}
