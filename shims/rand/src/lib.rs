//! Offline stand-in for the `rand` crate.
//!
//! A deterministic SplitMix64 generator behind the `rand 0.8` API subset
//! this workspace uses: `StdRng::seed_from_u64`, `gen_range` over
//! half-open and inclusive integer ranges, `gen_bool`, and `gen` for a
//! few primitives. Not cryptographic; statistically fine for workload
//! generation and tests.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A type with a canonical uniform distribution over a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (both inclusive).
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sampling range");
                let span = (high as i128) - (low as i128); // span >= 0, fits u64 for all $t
                if span >= u64::MAX as i128 {
                    return rng() as $t;
                }
                let span = span as u64 + 1;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans used here.
                let v = ((rng() as u128 * span as u128) >> 64) as u64;
                ((low as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty sampling range");
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "empty sampling range");
        T::sample_inclusive(rng, self.start, self.end.minus_ulp())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for turning a half-open bound into an inclusive one.
pub trait One: Sized {
    /// The largest value strictly below `self` (integers: `self - 1`;
    /// floats: `self` itself, since the draw never hits the upper bound).
    fn minus_ulp(self) -> Self;
}

macro_rules! impl_one_int {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_ulp(self) -> Self { self - 1 }
        }
    )*};
}

impl_one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl One for f64 {
    fn minus_ulp(self) -> Self {
        self
    }
}

impl One for f32 {
    fn minus_ulp(self) -> Self {
        self
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default generator: SplitMix64 (deterministic, fast, decent
    /// equidistribution — not the upstream ChaCha, and not compatible
    /// with upstream `StdRng` streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_hit_their_bounds_only() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 drawn");
        for _ in 0..500 {
            let v = rng.gen_range(10i64..=12);
            assert!((10..=12).contains(&v));
        }
        for _ in 0..100 {
            let x = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn negative_and_wide_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
        }
    }
}
