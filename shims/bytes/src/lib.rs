//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor reading ([`Buf`] over `&[u8]`),
//! appending ([`BufMut`]), and the growable [`BytesMut`] buffer the
//! storage crate uses — nothing more.

#![warn(missing_docs)]

/// Sequential little-endian reads that consume the buffer from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes. Panics if fewer than `n` remain.
    fn advance(&mut self, n: usize);
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16;
    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian i64.
    fn get_i64_le(&mut self) -> i64;
    /// Read a little-endian IEEE-754 f64.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Sequential little-endian appends.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian IEEE-754 f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer, API-compatible with `bytes::BytesMut` as far
/// as this workspace needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Copy the contents out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(258);
        buf.put_u32_le(70_000);
        buf.put_i64_le(-5);
        buf.put_f64_le(2.5);
        buf.put_slice(b"ab");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 258);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r, b"b");
    }
}
