//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::bounded` is provided, backed by
//! `std::sync::mpsc::sync_channel`, which has the same blocking-send /
//! disconnect semantics the exchange operator relies on.

#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam::channel` subset used here).
pub mod channel {
    /// Sending half of a bounded channel.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued; errors if the receiver
        /// has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, std::sync::mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Create a bounded channel buffering up to `cap` values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_and_disconnect() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn producer_thread_streams() {
        let (tx, rx) = bounded(4);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                if tx.send(i).is_err() {
                    break;
                }
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got.len(), 100);
    }
}
