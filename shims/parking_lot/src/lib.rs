//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std locks with `parking_lot`'s poison-free API so the rest
//! of the workspace builds without the crates.io registry. Only the
//! surface this workspace uses is provided.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that ignores poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. A panicked holder
    /// does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock that ignores poisoning, like `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
