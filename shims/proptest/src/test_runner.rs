//! Deterministic RNG and configuration for the property-test runner.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default; may be overridden per test with
        // `ProptestConfig::with_cases`.
        ProptestConfig { cases: 256 }
    }
}

/// A deterministic SplitMix64 generator. Each (test, case) pair gets an
/// independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed deterministically for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_case_dependent() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        let mut c = TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        let u = rng.unit_f64();
        assert!((0.0..1.0).contains(&u));
    }
}
