//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds for a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy producing vectors of `element` values with a length in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.min == self.size.max {
            self.size.min
        } else {
            self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = vec(any::<u8>(), 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
