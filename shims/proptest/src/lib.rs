//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses — the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple and `Just` and `any` strategies, a small
//! regex-subset string strategy, `collection::vec`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, and `prop_oneof!` macros.
//!
//! Differences from upstream: generation is derived from a fixed
//! deterministic seed per test (reproducible by construction, no
//! persistence files), and failing cases are reported but **not shrunk**.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import the tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg_pat =
                        $crate::strategy::Strategy::generate(&($arg_strat), &mut __proptest_rng);
                )+
                let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = __proptest_result {
                    panic!(
                        "property '{}' failed at case {} of {}:\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside `proptest!`; failure reports the case
/// instead of unwinding through arbitrary stack frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}\n{}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n left: {:?}\nright: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n left: {:?}\nright: {:?}\n{}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
