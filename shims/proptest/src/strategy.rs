//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (reference-counted, cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// substructure and returns the strategy for one level above it.
    /// `depth` bounds the recursion; the size hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![base.clone(), deeper]).boxed();
        }
        cur
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Object-safe mirror of [`Strategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of nothing");
        Union(options)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Types with a default "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The default strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, sometimes any scalar value.
        if rng.below(4) < 3 {
            (0x20 + rng.below(0x5F) as u32) as u8 as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// Numeric types whose ranges can serve as strategies.
pub trait RangeValue: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn draw_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range strategy");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + rng.below(span) as i128) as $t
            }

            fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range strategy");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (low as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    fn draw_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range strategy");
        low + rng.unit_f64() * (high - low)
    }

    fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty range strategy");
        low + rng.unit_f64() * (high - low)
    }
}

impl RangeValue for f32 {
    fn draw_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self {
        f64::draw_half_open(rng, low as f64, high as f64) as f32
    }

    fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
        f64::draw_inclusive(rng, low as f64, high as f64) as f32
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw_half_open(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String literals are regex-subset strategies: a sequence of atoms
/// (`.`, `[class]`, or a literal character), each optionally repeated
/// with `{m,n}` or `{m}`. This covers the patterns used in this
/// workspace (e.g. `".{0,200}"`, `"[a-zA-Z0-9 _-]{0,40}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (set, min, max) in &atoms {
            let n = if min == max {
                *min
            } else {
                *min + rng.below((*max - *min + 1) as u64) as usize
            };
            for _ in 0..n {
                out.push(set.draw(rng));
            }
        }
        out
    }
}

/// One regex atom's character set.
enum CharSet {
    /// `.` — any scalar value except `\n` (mostly printable ASCII here).
    Any,
    /// `[...]` — union of inclusive ranges.
    Set(Vec<(char, char)>),
}

impl CharSet {
    fn draw(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Any => loop {
                // Mostly printable ASCII with occasional arbitrary
                // scalar values, like a fuzzer would want.
                let c = if rng.below(8) < 7 {
                    (0x20 + rng.below(0x5F) as u32) as u8 as char
                } else {
                    match char::from_u32(rng.below(0x11_0000) as u32) {
                        Some(c) => c,
                        None => continue,
                    }
                };
                if c != '\n' {
                    return c;
                }
            },
            CharSet::Set(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                    .sum();
                let mut i = rng.below(total);
                for &(a, b) in ranges {
                    let span = (b as u64) - (a as u64) + 1;
                    if i < span {
                        return char::from_u32(a as u32 + i as u32).unwrap_or(a);
                    }
                    i -= span;
                }
                unreachable!("draw index within total span")
            }
        }
    }
}

/// Parse the regex subset into (set, min-reps, max-reps) atoms.
fn parse_pattern(pattern: &str) -> Vec<(CharSet, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => CharSet::Any,
            '[' => {
                let mut ranges = Vec::new();
                let mut pending: Option<char> = None;
                while let Some(d) = chars.next() {
                    if d == ']' {
                        break;
                    }
                    if d == '-' {
                        // Range if something is pending and a bound
                        // follows; a trailing '-' is a literal.
                        match (pending.take(), chars.peek()) {
                            (Some(lo), Some(&hi)) if hi != ']' => {
                                chars.next();
                                ranges.push((lo, hi));
                            }
                            (lo, _) => {
                                if let Some(lo) = lo {
                                    ranges.push((lo, lo));
                                }
                                ranges.push(('-', '-'));
                            }
                        }
                    } else {
                        if let Some(p) = pending.replace(d) {
                            ranges.push((p, p));
                        }
                    }
                }
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                CharSet::Set(ranges)
            }
            '\\' => {
                let escaped = chars.next().expect("dangling escape");
                CharSet::Set(vec![(escaped, escaped)])
            }
            lit => CharSet::Set(vec![(lit, lit)]),
        };
        // Optional {m,n} / {m} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut digits = String::new();
            let mut min = None;
            for d in chars.by_ref() {
                match d {
                    '}' => break,
                    ',' => min = Some(std::mem::take(&mut digits)),
                    d => digits.push(d),
                }
            }
            let hi: usize = digits.parse().expect("quantifier bound");
            match min {
                Some(lo) => (lo.parse().expect("quantifier bound"), hi),
                None => (hi, hi),
            }
        } else {
            (1, 1)
        };
        out.push((set, min, max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn just_and_map_and_union() {
        let mut rng = TestRng::from_seed(1);
        let s = Just(3usize).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng), 6);
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        for _ in 0..20 {
            assert!(matches!(u.generate(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = (0u32..8).generate(&mut rng);
            assert!(v < 8);
            let (a, b) = (0usize..3, any::<bool>()).generate(&mut rng);
            assert!(a < 3);
            let _ = b;
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let i = (5i64..=7).generate(&mut rng);
            assert!((5..=7).contains(&i));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
            let t = "[a-zA-Z0-9 _-]{0,40}".generate(&mut rng);
            assert!(t.chars().count() <= 40);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
            let lit = "ab".generate(&mut rng);
            assert_eq!(lit, "ab");
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let strat =
            Just(T::Leaf).prop_recursive(3, 8, 1, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut rng = TestRng::from_seed(4);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max >= 1, "recursion actually recurses");
        assert!(max <= 3, "depth bound respected, got {max}");
    }
}
