//! Quickstart: define a catalog, build a query in the logical algebra,
//! optimize it, and inspect the chosen plan.
//!
//! Run with: `cargo run --example quickstart`

use volcano::core::{PhysicalProps, SearchOptions};
use volcano::rel::builder::{join_on, select_one};
use volcano::rel::{Catalog, Cmp, ColumnDef, QueryBuilder, RelModel, RelOptimizer, RelProps};

fn main() {
    // 1. Describe the stored data: tables, cardinalities, column
    //    statistics. This is what the cost model consumes.
    let mut catalog = Catalog::new();
    catalog.add_table(
        "orders",
        1_000_000.0,
        vec![
            ColumnDef::int("id", 1_000_000.0),
            ColumnDef::int("customer", 50_000.0),
            ColumnDef::int("amount", 10_000.0),
        ],
    );
    catalog.add_table(
        "customers",
        50_000.0,
        vec![
            ColumnDef::int("id", 50_000.0),
            ColumnDef::int("country", 50.0),
        ],
    );

    // 2. "Generate" the optimizer: assemble the relational model
    //    specification (operators, rules, cost functions) for this
    //    catalog. rustc compiled the rule set; the model instance binds
    //    the statistics.
    let model = RelModel::with_defaults(catalog);
    let q = QueryBuilder::new(model.catalog());

    // 3. State the query as a logical algebra expression:
    //    SELECT ... FROM orders, customers
    //    WHERE orders.customer = customers.id AND customers.country = 7
    let query = join_on(
        q.scan("orders"),
        select_one(
            q.scan("customers"),
            Cmp::eq(q.attr("customers", "country"), 7i64),
        ),
        q.attr("orders", "customer"),
        q.attr("customers", "id"),
    );
    println!("logical query:  {}\n", query.display());

    // 4. Optimize — once without ordering requirements, once with an
    //    ORDER BY customer goal, to see physical properties drive the
    //    plan choice.
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);

    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    println!("=== no ordering required ===");
    println!("{}", plan.explain());

    let by_customer = RelProps::sorted(vec![q.attr("orders", "customer")]);
    let sorted_plan = opt.find_best_plan(root, by_customer.clone(), None).unwrap();
    println!("=== ORDER BY orders.customer ===");
    println!("{}", sorted_plan.explain());
    assert!(sorted_plan.delivered.satisfies(&by_customer));

    // 5. The search statistics: how much work the memo saved.
    println!("=== search statistics ===\n{}", opt.stats());
}
