//! Cost as a function of available memory (§4.1): regenerating the
//! optimizer with different memory parameters produces different plans
//! for the same query — the machinery behind "dynamic plans for
//! incompletely specified queries" (§1): optimize once per anticipated
//! memory level, pick at run time.
//!
//! Run with: `cargo run --example memory_pressure`

use volcano::core::{PhysicalProps, SearchOptions};
use volcano::rel::builder::join;
use volcano::rel::{
    Catalog, ColumnDef, JoinPred, QueryBuilder, RelModel, RelModelOptions, RelOptimizer, RelProps,
};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for name in ["build", "probe"] {
        c.add_table(
            name,
            15_000.0,
            vec![
                ColumnDef::int("k", 1_500.0),
                ColumnDef::str("pad", 92, 15_000.0),
            ],
        );
    }
    c
}

fn main() {
    // The same query optimized under different memory assumptions.
    for (label, memory) in [
        ("unlimited memory", f64::INFINITY),
        ("4 MiB", 4.0 * 1024.0 * 1024.0),
        ("256 KiB", 256.0 * 1024.0),
        ("64 KiB", 64.0 * 1024.0),
    ] {
        let opts = RelModelOptions {
            hash_join_memory_bytes: memory,
            ..RelModelOptions::default()
        };
        let model = RelModel::new(catalog(), opts);
        let q = QueryBuilder::new(model.catalog());
        let expr = join(
            q.scan("build"),
            q.scan("probe"),
            JoinPred::eq(q.attr("build", "k"), q.attr("probe", "k")),
        );
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
        println!("=== {label} ===  estimated {}", plan.cost);
        println!("{}", plan.compact());
        println!();
    }
}
