//! The search-strategy knobs the paper puts "into the hands of the
//! optimizer implementor" (§3): branch-and-bound pruning, failure
//! memoization, promise ordering, and heuristic move selection — and
//! what each costs or saves on a non-trivial join query.
//!
//! Run with: `cargo run --release --example search_heuristics`

use volcano::core::{PhysicalProps, SearchOptions};
use volcano::rel::builder::{join, select_one};
use volcano::rel::{
    Catalog, Cmp, ColumnDef, JoinPred, QueryBuilder, RelExpr, RelModel, RelModelOptions,
    RelOptimizer, RelProps,
};

fn build_query(model: &RelModel, n: usize) -> RelExpr {
    let q = QueryBuilder::new(model.catalog());
    let leaf = |i: usize| {
        select_one(
            q.scan(&format!("t{i}")),
            Cmp::lt(q.attr(&format!("t{i}"), "id"), 500_000i64),
        )
    };
    let mut expr = leaf(0);
    for i in 1..n {
        expr = join(
            expr,
            leaf(i),
            JoinPred::eq(
                q.attr(&format!("t{}", i - 1), "k"),
                q.attr(&format!("t{i}"), "k"),
            ),
        );
    }
    expr
}

fn run(model: &RelModel, query: &RelExpr, label: &str, opts: SearchOptions) {
    let mut opt = RelOptimizer::new(model, opts);
    let root = opt.insert_tree(query);
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    let s = opt.stats();
    println!(
        "{label:<28} cost {:>12.1}  goals {:>6}  moves {:>7}  pruned {:>6}  elapsed {:?}",
        plan.cost.total(),
        s.goals_optimized,
        s.total_moves(),
        s.moves_pruned,
        s.elapsed
    );
}

fn main() {
    let n = 7;
    let mut catalog = Catalog::new();
    for i in 0..n {
        catalog.add_table(
            &format!("t{i}"),
            5_000.0,
            vec![ColumnDef::int("id", 5_000.0), ColumnDef::int("k", 500.0)],
        );
    }
    let model = RelModel::new(catalog, RelModelOptions::paper_fig4());
    let query = build_query(&model, n);

    println!(
        "chain of {n} relations; same optimal cost expected for every exhaustive configuration\n"
    );

    run(
        &model,
        &query,
        "default (all mechanisms)",
        SearchOptions::default(),
    );

    let no_prune = SearchOptions {
        pruning: false,
        ..SearchOptions::default()
    };
    run(&model, &query, "no branch-and-bound", no_prune);

    let no_fail = SearchOptions {
        failure_memo: false,
        ..SearchOptions::default()
    };
    run(&model, &query, "no failure memoization", no_fail);

    let no_promise = SearchOptions {
        promise_ordering: false,
        ..SearchOptions::default()
    };
    run(&model, &query, "no promise ordering", no_promise);

    // Heuristic move selection sacrifices the optimality guarantee for
    // speed — the plan may (or may not) be worse.
    let top3 = SearchOptions {
        move_limit: Some(3),
        ..SearchOptions::default()
    };
    run(&model, &query, "top-3 moves only (heuristic)", top3);
}
