//! The optimizer-generator paradigm itself (Figure 1): a model
//! specification file goes in; an optimizer comes out — here in both
//! flavours, interpreted (usable immediately) and compiled (emitted Rust
//! source).
//!
//! Run with: `cargo run --example generator`

use volcano::core::{Optimizer, SearchOptions};
use volcano::gen::{emit_rust, parse_spec, DynModel, DynQueryBuilder};

const SPEC: &str = r#"
    # A tiny relational-style model specification.
    model demo;
    operator get 0;
    operator select 1;
    operator join 2;
    prop sorted;

    card get = table;
    card select = in0 * 0.3;
    card join = in0 * in1 * 0.005;

    transform commute: join(?a, ?b) -> join(?b, ?a);
    transform assoc: join(join(?a, ?b), ?c) -> join(?a, join(?b, ?c));

    impl get -> scan { requires; delivers none; cost out * 0.02; }
    impl select -> filter { requires pass; delivers pass; cost in0 * 0.01; }
    impl join -> hash_join { requires any, any; delivers none; cost in0 * 0.03 + in1 * 0.015; }
    impl join -> merge_join { requires sorted, sorted; delivers sorted; cost (in0 + in1) * 0.005; }
    enforcer sort { enforces sorted; cost out * log2(max(out, 2)) * 0.004; }
"#;

fn main() {
    // 1. Load and parse the specification — from the spec file when run
    //    from the repository, falling back to the inline copy.
    let text = std::fs::read_to_string("examples/specs/relational.vspec")
        .unwrap_or_else(|_| SPEC.to_string());
    let spec = parse_spec(&text).expect("well-formed spec");
    println!(
        "model {:?}: {} operators, {} properties, {} transformations, {} implementations, {} enforcers\n",
        spec.name,
        spec.operators.len(),
        spec.properties.len(),
        spec.transforms.len(),
        spec.impls.len(),
        spec.enforcers.len()
    );

    // 2. Interpreted backend: optimize immediately.
    let model = DynModel::new(spec.clone());
    let b = DynQueryBuilder::new(&model);
    let query = b.node(
        "join",
        vec![
            b.node(
                "join",
                vec![
                    b.leaf("get", 40_000.0),
                    b.node("select", vec![b.leaf("get", 2_000.0)]),
                ],
            ),
            b.leaf("get", 500.0),
        ],
    );
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    let plan = opt
        .find_best_plan(root, model.props(&["sorted"]), None)
        .unwrap();
    println!("=== interpreted optimizer, goal: sorted output ===");
    println!("{}", plan.explain());

    // 3. Compiled backend: emit the optimizer source code.
    let source = emit_rust(&spec);
    println!(
        "=== emitted Rust source: {} lines (first 30 shown) ===",
        source.lines().count()
    );
    for line in source.lines().take(30) {
        println!("{line}");
    }
    println!("...");
}
