//! The full stack: SQL text → parser → logical algebra → Volcano
//! optimizer → executable plan → iterator execution over paged storage —
//! with the result checked against a naive evaluator, and the cost
//! model's I/O estimate compared to the pages the buffer pool actually
//! read.
//!
//! Run with: `cargo run --example end_to_end`

use volcano::core::{PhysicalProps, SearchOptions};
use volcano::exec::{assert_same_rows, evaluate_logical, Database};
use volcano::rel::{Catalog, ColumnDef, RelModel, RelOptimizer, RelProps};
use volcano::sql::plan_query;

fn main() {
    let mut catalog = Catalog::new();
    catalog.add_table(
        "emp",
        2_000.0,
        vec![
            ColumnDef::int("id", 2_000.0),
            ColumnDef::int("dept", 40.0),
            ColumnDef::int("salary", 500.0),
            ColumnDef::str("pad", 76, 2_000.0),
        ],
    );
    catalog.add_table(
        "dept",
        40.0,
        vec![ColumnDef::int("id", 40.0), ColumnDef::int("region", 5.0)],
    );

    // Parse + lower the SQL.
    let sql = "SELECT emp.id, emp.salary, dept.region \
               FROM emp, dept \
               WHERE emp.dept = dept.id AND emp.salary < 100 \
               ORDER BY emp.salary";
    let query = plan_query(sql, &mut catalog).expect("valid SQL");
    println!("SQL:     {sql}");
    println!("algebra: {}\n", query.expr.display());

    // Create and populate the database (honours the catalog statistics),
    // with a small buffer pool so scans do real page I/O.
    let db = Database::with_pool_size(catalog.clone(), 16);
    db.generate(2026);
    db.reset_io_stats();

    // Optimize with the ORDER BY as the physical-property goal.
    let model = RelModel::with_defaults(catalog);
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query.expr);
    let goal = RelProps::sorted(query.order_by.clone());
    let plan = opt.find_best_plan(root, goal.clone(), None).unwrap();
    println!("=== chosen plan (estimated {}) ===", plan.cost);
    println!("{}", plan.explain());

    // Execute.
    let rows = db.execute(&plan);
    let (reads, writes) = db.io_stats();
    println!("result: {} rows", rows.len());
    println!("observed physical I/O: {reads} page reads, {writes} page writes");
    println!(
        "cost model estimated {:.0} ms of I/O at 3 ms/page ≈ {:.0} page accesses",
        plan.cost.io,
        plan.cost.io / 3.0
    );

    // The result is sorted as requested (salary is output column 1)...
    for w in rows.windows(2) {
        assert!(w[0][1] <= w[1][1], "output must be sorted by salary");
    }
    // ...and identical (as a multiset, modulo column order) to the naive
    // evaluation of the logical expression.
    let oracle = evaluate_logical(&db, &query.expr);
    assert_same_rows(rows, oracle.rows);
    println!("\nresult verified against the naive logical-algebra evaluator ✓");
    assert!(plan.delivered.satisfies(&goal));
}
