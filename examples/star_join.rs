//! Interesting orders on a star of joins sharing one attribute: the
//! Volcano optimizer discovers a merge-join tower that shares sort
//! work, while the EXODUS-style baseline (greedy per-node algorithm
//! choice, no property-driven search) stays with hash joins and pays
//! more — the mechanism behind the paper's plan-quality gap for
//! complex queries (§4.2).
//!
//! Run with: `cargo run --release --example star_join`

use volcano::core::{PhysicalProps, SearchOptions};
use volcano::exodus::ExodusOptimizer;
use volcano::rel::builder::{join, select_one};
use volcano::rel::{
    Catalog, Cmp, ColumnDef, JoinPred, QueryBuilder, RelModel, RelModelOptions, RelOptimizer,
    RelProps,
};

fn main() {
    // Six relations, every join on the same low-distinct key: the join
    // results grow, and every level of the tower can reuse one sort
    // order.
    let n = 6;
    let mut catalog = Catalog::new();
    for i in 0..n {
        catalog.add_table(
            &format!("t{i}"),
            6_000.0,
            vec![ColumnDef::int("id", 6_000.0), ColumnDef::int("k", 600.0)],
        );
    }
    let k: Vec<_> = (0..n)
        .map(|i| catalog.attr(&format!("t{i}"), "k"))
        .collect();
    let id: Vec<_> = (0..n)
        .map(|i| catalog.attr(&format!("t{i}"), "id"))
        .collect();

    let model = RelModel::new(catalog, RelModelOptions::paper_fig4());
    let q = QueryBuilder::new(model.catalog());
    let leaf = |i: usize| select_one(q.scan(&format!("t{i}")), Cmp::lt(id[i], 500_000i64));
    let mut query = leaf(0);
    for i in 1..n {
        query = join(query, leaf(i), JoinPred::eq(k[0], k[i]));
    }
    println!("query: {}\n", query.display());

    // Volcano: exhaustive, property-driven.
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    let vplan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    println!("=== Volcano plan (cost {}) ===", vplan.cost);
    println!("{}", vplan.explain());

    // EXODUS baseline: forward chaining, greedy algorithm choice.
    let e = ExodusOptimizer::new(&model)
        .optimize(&query, &[])
        .expect("small enough to fit the default MESH budget");
    println!("=== EXODUS plan (cost {}) ===", e.cost);
    println!("{}", e.plan.explain());

    let ratio = e.cost.total() / vplan.cost.total();
    println!("EXODUS plan is {ratio:.3}x the Volcano plan's estimated cost");
    assert!(
        vplan.cost.total() <= e.cost.total() + 1e-6,
        "exhaustive property-driven search can never lose"
    );

    println!("\nVolcano search: {}", opt.stats());
    println!("\nEXODUS search: {}", e.stats);
}
