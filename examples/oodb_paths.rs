//! Data-model independence: the same search engine optimizing an
//! *object* algebra — the Open OODB materialize operator, assembledness
//! as a physical property, and the assembly operator vs. naive pointer
//! chasing as competing enforcers (§4.1, §6).
//!
//! Run with: `cargo run --example oodb_paths`

use volcano::core::{Optimizer, SearchOptions};
use volcano::oodb::{OodbModel, OodbSchema};

fn main() {
    // Employee --department--> Department --floor--> Floor.
    let schema = OodbSchema::demo();
    let model = OodbModel::new(schema);

    // materialize(employee.department.floor): give me employees with the
    // whole path traversable in memory.
    let query = model.materialize_query("Employee", &["department", "floor"]);
    println!("object query: {}\n", query.display());

    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    let goal = model.assembled_goal(&["department", "floor"]);
    let plan = opt.find_best_plan(root, goal, None).unwrap();

    println!("=== plan (estimated cost {:.1}) ===", plan.cost);
    println!("{}", plan.explain());
    println!(
        "assembly operators in the plan: {}",
        plan.count_algs(|a| matches!(a, volcano::oodb::OodbAlg::Assembly(_)))
    );
    println!(
        "pointer-chase operators in the plan: {}",
        plan.count_algs(|a| matches!(a, volcano::oodb::OodbAlg::PointerChase(_)))
    );

    // Flip the economics: a tiny extent referencing a huge one makes
    // per-object pointer chasing cheaper than batched assembly.
    let mut s = OodbSchema::new();
    let few = s.add_class("Sample", 8.0, 100.0);
    let many = s.add_class("Archive", 5_000_000.0, 100.0);
    s.add_path("record", few, many, 1.0);
    let model2 = OodbModel::new(s);
    let query2 = model2.materialize_query("Sample", &["record"]);
    let mut opt2 = Optimizer::new(&model2, SearchOptions::default());
    let root2 = opt2.insert_tree(&query2);
    let plan2 = opt2
        .find_best_plan(root2, model2.assembled_goal(&["record"]), None)
        .unwrap();
    println!("\n=== tiny extent into huge archive ===");
    println!("{}", plan2.explain());
}
