//! The MESH data structure: "the hash table called MESH, which held all
//! logical and physical algebra expressions explored so far" (§4.1).
//!
//! Unlike the Volcano memo, a MESH node mixes the logical operator with
//! its analyzed algorithm choices ("only one type of node existed"), and
//! superseded plan records are retained — that is the paper's "large
//! number of nodes in MESH", and it is what the memory accounting
//! charges.

use std::collections::HashMap;
use std::mem::size_of;

use volcano_core::model::Model;
use volcano_rel::{AttrId, RelAlg, RelCost, RelLogical, RelModel, RelOp};

/// Identifier of a MESH equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl ClassId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a MESH node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One analysis record: an algorithm choice with its cost and the sort
/// order its output happens to deliver. EXODUS keeps every record ever
/// produced ("the logical expression had to be kept twice" to retain both
/// merge-join and hash-join plans).
#[derive(Debug, Clone)]
pub struct PlanRecord {
    /// The chosen algorithm.
    pub alg: RelAlg,
    /// Local cost including any implicit enforcer costs folded in (e.g.
    /// the sorts a merge join needs).
    pub local: RelCost,
    /// Total cost including the inputs' current best plans.
    pub total: RelCost,
    /// Sort order the output happens to have (exploited only by luck:
    /// "if the algorithm with the lowest cost happened to deliver results
    /// with useful physical properties, this was recorded in MESH").
    pub order: Vec<AttrId>,
    /// Which inputs need an implicit sort under this algorithm.
    pub input_sorts: Vec<bool>,
}

/// A MESH node: logical operator + accumulated plan records.
pub struct NodeData {
    /// The logical operator.
    pub op: RelOp,
    /// Input classes.
    pub inputs: Vec<ClassId>,
    /// Owning class.
    pub class: ClassId,
    /// All analysis records ever produced for this node (last = current).
    pub records: Vec<PlanRecord>,
    /// Index of the currently best record.
    pub best: Option<usize>,
    /// Retired by a merge cascade.
    pub dead: bool,
}

/// A MESH equivalence class.
pub struct ClassData {
    /// Member nodes.
    pub nodes: Vec<NodeId>,
    /// Logical properties (same derivation as the Volcano side).
    pub logical: RelLogical,
    /// Consumer nodes that take this class as an input.
    pub parents: Vec<NodeId>,
    /// The cheapest analyzed member and its current total cost + order.
    pub best: Option<(NodeId, RelCost, Vec<AttrId>)>,
}

/// The MESH.
pub struct Mesh {
    nodes: Vec<NodeData>,
    classes: Vec<ClassData>,
    parent: Vec<u32>,
    index: HashMap<(RelOp, Vec<ClassId>), NodeId>,
    /// Total plan records ever appended (memory statistic).
    pub records_appended: u64,
}

impl Mesh {
    /// An empty MESH.
    pub fn new() -> Self {
        Mesh {
            nodes: Vec::new(),
            classes: Vec::new(),
            parent: Vec::new(),
            index: HashMap::new(),
            records_appended: 0,
        }
    }

    /// Union–find representative of a class.
    pub fn repr(&self, c: ClassId) -> ClassId {
        let mut i = c.0;
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        ClassId(i)
    }

    /// Number of nodes (including retired ones).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of class slots allocated.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Node accessor.
    pub fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, n: NodeId) -> &mut NodeData {
        &mut self.nodes[n.index()]
    }

    /// Class accessor (resolves representatives).
    pub fn class(&self, c: ClassId) -> &ClassData {
        &self.classes[self.repr(c).index()]
    }

    /// Mutable class accessor (resolves representatives).
    pub fn class_mut(&mut self, c: ClassId) -> &mut ClassData {
        let r = self.repr(c);
        &mut self.classes[r.index()]
    }

    /// Live member nodes of a class.
    pub fn class_nodes(&self, c: ClassId) -> Vec<NodeId> {
        self.class(c)
            .nodes
            .iter()
            .copied()
            .filter(|&n| !self.nodes[n.index()].dead)
            .collect()
    }

    /// Live consumer nodes of a class.
    pub fn class_parents(&self, c: ClassId) -> Vec<NodeId> {
        self.class(c)
            .parents
            .iter()
            .copied()
            .filter(|&n| !self.nodes[n.index()].dead)
            .collect()
    }

    /// Find or create the node `(op, inputs)`. With a `target` class, a
    /// hit in a different class merges the two. Returns the node, its
    /// (canonical) class, and whether the node is new.
    pub fn intern(
        &mut self,
        model: &RelModel,
        op: RelOp,
        inputs: Vec<ClassId>,
        target: Option<ClassId>,
    ) -> (NodeId, ClassId, bool) {
        let inputs: Vec<ClassId> = inputs.iter().map(|&c| self.repr(c)).collect();
        let key = (op.clone(), inputs.clone());
        if let Some(&existing) = self.index.get(&key) {
            let ec = self.repr(self.nodes[existing.index()].class);
            if let Some(t) = target {
                let t = self.repr(t);
                if t != ec {
                    self.merge(t, ec);
                }
            }
            let ec = self.repr(ec);
            return (existing, ec, false);
        }

        let logical = {
            let input_props: Vec<&RelLogical> =
                inputs.iter().map(|&c| &self.class(c).logical).collect();
            model.derive_logical_props(&op, &input_props)
        };

        let class = match target {
            Some(t) => self.repr(t),
            None => {
                let c = ClassId(self.classes.len() as u32);
                self.classes.push(ClassData {
                    nodes: Vec::new(),
                    logical,
                    parents: Vec::new(),
                    best: None,
                });
                self.parent.push(c.0);
                c
            }
        };

        let nid = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            op,
            inputs: inputs.clone(),
            class,
            records: Vec::new(),
            best: None,
            dead: false,
        });
        self.classes[class.index()].nodes.push(nid);
        for &i in &inputs {
            let r = self.repr(i);
            self.classes[r.index()].parents.push(nid);
        }
        self.index.insert(key, nid);
        (nid, class, true)
    }

    /// Merge two classes proven equal, cascading re-canonicalization.
    pub fn merge(&mut self, a: ClassId, b: ClassId) {
        let mut pending = vec![(a, b)];
        while let Some((a, b)) = pending.pop() {
            let ra = self.repr(a);
            let rb = self.repr(b);
            if ra == rb {
                continue;
            }
            let (keep, gone) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
            self.parent[gone.index()] = keep.0;
            let gone_nodes = std::mem::take(&mut self.classes[gone.index()].nodes);
            let gone_parents = std::mem::take(&mut self.classes[gone.index()].parents);
            self.classes[keep.index()].nodes.extend(gone_nodes);
            self.classes[keep.index()].parents.extend(gone_parents);
            let gone_best = self.classes[gone.index()].best.take();
            if let Some((n, c, o)) = gone_best {
                let better = match &self.classes[keep.index()].best {
                    None => true,
                    Some((_, kc, _)) => {
                        use volcano_core::cost::Cost;
                        c.cheaper_than(kc)
                    }
                };
                if better {
                    self.classes[keep.index()].best = Some((n, c, o));
                }
            }
            pending.extend(self.rebuild_index());
        }
    }

    fn rebuild_index(&mut self) -> Vec<(ClassId, ClassId)> {
        self.index.clear();
        let mut merges = Vec::new();
        for i in 0..self.nodes.len() {
            if self.nodes[i].dead {
                continue;
            }
            let inputs: Vec<ClassId> = self.nodes[i].inputs.iter().map(|&c| self.repr(c)).collect();
            let class = self.repr(self.nodes[i].class);
            self.nodes[i].inputs = inputs.clone();
            self.nodes[i].class = class;
            let key = (self.nodes[i].op.clone(), inputs);
            match self.index.get(&key) {
                None => {
                    self.index.insert(key, NodeId(i as u32));
                }
                Some(&prev) => {
                    let pc = self.repr(self.nodes[prev.index()].class);
                    if pc != class {
                        merges.push((pc, class));
                    } else {
                        self.nodes[i].dead = true;
                    }
                }
            }
        }
        merges
    }

    /// Rough memory estimate in bytes: nodes, accumulated plan records,
    /// class membership and parent lists, and the hash index.
    pub fn memory_estimate(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                size_of::<NodeData>()
                    + n.inputs.len() * size_of::<ClassId>()
                    + n.records
                        .iter()
                        .map(|r| {
                            size_of::<PlanRecord>()
                                + r.order.len() * size_of::<AttrId>()
                                + r.input_sorts.len()
                        })
                        .sum::<usize>()
            })
            .sum();
        let class_bytes: usize = self
            .classes
            .iter()
            .map(|c| {
                size_of::<ClassData>()
                    + c.nodes.len() * size_of::<NodeId>()
                    + c.parents.len() * size_of::<NodeId>()
            })
            .sum();
        let index_bytes = self.index.len()
            * (size_of::<(RelOp, Vec<ClassId>)>() + size_of::<NodeId>() + 2 * size_of::<ClassId>());
        node_bytes + class_bytes + index_bytes
    }
}

impl Default for Mesh {
    fn default() -> Self {
        Self::new()
    }
}
