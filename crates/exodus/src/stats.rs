//! Statistics for the EXODUS baseline, shaped to line up with
//! `volcano_core::SearchStats` in the Figure 4 tables.

use std::fmt;
use std::time::Duration;

/// Counters accumulated over one EXODUS optimization.
#[derive(Debug, Clone, Default)]
pub struct ExodusStats {
    /// MESH nodes created.
    pub nodes: usize,
    /// Equivalence classes created.
    pub classes: usize,
    /// Transformations applied (pattern matched + substitute built).
    pub transformations: u64,
    /// Node analyses performed (initial + reanalyses).
    pub analyses: u64,
    /// Reanalyses of existing consumer nodes after a best-plan change —
    /// the EXODUS time sink.
    pub reanalyses: u64,
    /// Plan records accumulated in MESH (every analysis appends records;
    /// EXODUS kept superseded plans around).
    pub mesh_records: u64,
    /// Estimated MESH memory footprint in bytes.
    pub mesh_bytes: usize,
    /// Wall-clock optimization time.
    pub elapsed: Duration,
}

impl fmt::Display for ExodusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mesh: {} nodes, {} classes, {} records, ~{} bytes",
            self.nodes, self.classes, self.mesh_records, self.mesh_bytes
        )?;
        write!(
            f,
            "work: {} transformations, {} analyses ({} reanalyses), elapsed {:?}",
            self.transformations, self.analyses, self.reanalyses, self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counters() {
        let s = ExodusStats {
            nodes: 5,
            reanalyses: 7,
            ..ExodusStats::default()
        };
        let t = s.to_string();
        assert!(t.contains("5 nodes"));
        assert!(t.contains("7 reanalyses"));
    }
}
