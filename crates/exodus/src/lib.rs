//! # exodus — the EXODUS optimizer generator baseline
//!
//! A reimplementation of the EXODUS optimizer generator's search engine
//! [Graefe & DeWitt, SIGMOD 1987] as characterized in §4 of the Volcano
//! paper, used as the comparison baseline for the Figure 4 reproduction.
//! It optimizes the *same* logical algebra (`volcano_rel::RelOp`) against
//! the *same* catalog, cost constants, and selectivity estimators — "we
//! specified the data model descriptions as similarly as possible for the
//! EXODUS and Volcano optimizer generators" (§4.2) — but with the EXODUS
//! search strategy and its documented weaknesses:
//!
//! 1. **One node type.** A MESH node carries a logical operator *and* its
//!    analyzed algorithm choices; "to retain equivalent plans using
//!    merge-join and hybrid hash join, the logical expression had to be
//!    kept twice, resulting in a large number of nodes in MESH" — every
//!    (re-)analysis appends plan records to the node, and the memory
//!    accounting charges all of them.
//! 2. **Haphazard physical properties.** There is no property-driven
//!    search: each node greedily picks its cheapest algorithm; "the cost
//!    of enforcers had to be included in the cost function of other
//!    algorithms such as merge-join" — merge join folds the sorts it
//!    needs into its own cost, and a useful sort order is exploited only
//!    "if the algorithm with the lowest cost happened to deliver results
//!    with useful physical properties".
//! 3. **Forward chaining with reanalysis.** Transformations are applied
//!    in order of *expected cost improvement* (a per-rule factor times
//!    the current cost of the matched node), which prefers nodes "at the
//!    top of the expression"; whenever a class's best plan changes, all
//!    consumer nodes above are reanalyzed — "for larger queries, most of
//!    the time was spent reanalyzing existing plans".
//! 4. **Memory appetite.** The optimizer aborts when its MESH estimate
//!    exceeds a budget, mirroring "the EXODUS optimizer generator aborted
//!    due to lack of memory" on complex queries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mesh;
pub mod optimizer;
pub mod stats;

pub use mesh::{ClassId, Mesh, NodeId};
pub use optimizer::{ExodusAbort, ExodusOptimizer, ExodusOutcome, RuleFactors};
pub use stats::ExodusStats;
