//! The EXODUS search strategy: forward chaining ordered by expected cost
//! improvement, with immediate analysis and consumer reanalysis.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

use volcano_core::cost::Cost;
use volcano_core::ids::GroupId;
use volcano_core::Plan;
use volcano_rel::cost::formulas;
use volcano_rel::{AttrId, RelAlg, RelCost, RelExpr, RelModel, RelOp, RelProps};

use crate::mesh::{ClassId, Mesh, NodeId, PlanRecord};
use crate::stats::ExodusStats;

/// Per-rule "expected cost improvement" factors. EXODUS scheduled
/// transformations by `factor × current cost of the matched expression`,
/// "worst of all for optimizer performance ... nodes at the top of the
/// expression (with high total cost) were preferred over lower
/// expressions" (§4.1) — the preference emerges from the cost term, the
/// factors only weight the rules against each other.
#[derive(Debug, Clone, Copy)]
pub struct RuleFactors {
    /// Factor for join commutativity.
    pub commute: f64,
    /// Factor for join associativity.
    pub assoc: f64,
}

impl Default for RuleFactors {
    fn default() -> Self {
        RuleFactors {
            commute: 1.0,
            assoc: 1.1,
        }
    }
}

/// The EXODUS-style optimizer.
pub struct ExodusOptimizer<'m> {
    model: &'m RelModel,
    factors: RuleFactors,
    /// Abort threshold for the MESH memory estimate, in bytes.
    memory_budget: usize,
    allow_cross_products: bool,
}

/// A successful optimization.
pub struct ExodusOutcome {
    /// The chosen plan (same plan type as the Volcano side, for direct
    /// comparison and shared explain tooling).
    pub plan: Plan<RelModel>,
    /// Estimated execution cost of the plan.
    pub cost: RelCost,
    /// Search statistics.
    pub stats: ExodusStats,
}

/// Optimization aborted — "the EXODUS optimizer generator aborted due to
/// lack of memory" (§4.2).
#[derive(Debug)]
pub struct ExodusAbort {
    /// Statistics at the point of abort.
    pub stats: ExodusStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Rule {
    Commute,
    Assoc,
}

struct OpenEntry {
    priority: f64,
    seq: u64,
    node: NodeId,
    rule: Rule,
}

impl PartialEq for OpenEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for OpenEntry {}

impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on priority; FIFO on ties (lower seq first).
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Search<'m> {
    model: &'m RelModel,
    factors: RuleFactors,
    allow_cross: bool,
    memory_budget: usize,
    mesh: Mesh,
    open: BinaryHeap<OpenEntry>,
    /// (outer node, rule, inner node or NodeId(u32::MAX)) already applied.
    applied: HashSet<(NodeId, Rule, NodeId)>,
    seq: u64,
    stats: ExodusStats,
}

const NO_INNER: NodeId = NodeId(u32::MAX);

impl<'m> ExodusOptimizer<'m> {
    /// Create an optimizer over the shared relational model (catalog,
    /// property derivation, and cost formulas are identical to the
    /// Volcano side).
    pub fn new(model: &'m RelModel) -> Self {
        ExodusOptimizer {
            model,
            factors: RuleFactors::default(),
            memory_budget: 64 << 20,
            allow_cross_products: model.options().allow_cross_products,
        }
    }

    /// Set the MESH memory budget in bytes (abort threshold).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Set the rule factors.
    pub fn with_factors(mut self, factors: RuleFactors) -> Self {
        self.factors = factors;
        self
    }

    /// Optimize a query, optionally requiring a final sort order.
    pub fn optimize(
        &self,
        query: &RelExpr,
        order_by: &[AttrId],
    ) -> Result<ExodusOutcome, ExodusAbort> {
        let start = Instant::now();
        let mut search = Search {
            model: self.model,
            factors: self.factors,
            allow_cross: self.allow_cross_products,
            memory_budget: self.memory_budget,
            mesh: Mesh::new(),
            open: BinaryHeap::new(),
            applied: HashSet::new(),
            seq: 0,
            stats: ExodusStats::default(),
        };
        let root = search.insert_tree(query);
        let result = search.run(root);
        search.stats.elapsed = start.elapsed();
        search.stats.nodes = search.mesh.num_nodes();
        search.stats.classes = search.mesh.num_classes();
        search.stats.mesh_records = search.mesh.records_appended;
        search.stats.mesh_bytes = search.mesh.memory_estimate();
        match result {
            Err(()) => Err(ExodusAbort {
                stats: search.stats,
            }),
            Ok(()) => {
                let (plan, cost) = search.extract(root, order_by);
                Ok(ExodusOutcome {
                    plan,
                    cost,
                    stats: search.stats,
                })
            }
        }
    }
}

impl<'m> Search<'m> {
    fn insert_tree(&mut self, tree: &RelExpr) -> ClassId {
        let inputs: Vec<ClassId> = tree.inputs.iter().map(|t| self.insert_tree(t)).collect();
        let (node, class, is_new) = self.mesh.intern(self.model, tree.op.clone(), inputs, None);
        if is_new {
            self.analyze(node);
            self.propagate(node);
            self.enqueue_rules(node);
        }
        class
    }

    fn run(&mut self, _root: ClassId) -> Result<(), ()> {
        let mut iterations: u64 = 0;
        while let Some(entry) = self.open.pop() {
            iterations += 1;
            if iterations.is_multiple_of(64) && self.mesh.memory_estimate() > self.memory_budget {
                return Err(());
            }
            if self.mesh.node(entry.node).dead {
                continue;
            }
            match entry.rule {
                Rule::Commute => self.apply_commute(entry.node),
                Rule::Assoc => self.apply_assoc(entry.node),
            }
        }
        Ok(())
    }

    fn priority(&self, node: NodeId, rule: Rule) -> f64 {
        let factor = match rule {
            Rule::Commute => self.factors.commute,
            Rule::Assoc => self.factors.assoc,
        };
        // "the expected cost improvement was calculated as product of a
        // factor associated with the transformation rule and the current
        // cost before transformation".
        let cost = self
            .mesh
            .node(node)
            .best
            .map(|i| self.mesh.node(node).records[i].total.total())
            .unwrap_or(0.0);
        factor * cost
    }

    fn enqueue_rules(&mut self, node: NodeId) {
        if !matches!(self.mesh.node(node).op, RelOp::Join(_)) {
            return;
        }
        for rule in [Rule::Commute, Rule::Assoc] {
            self.seq += 1;
            let e = OpenEntry {
                priority: self.priority(node, rule),
                seq: self.seq,
                node,
                rule,
            };
            self.open.push(e);
        }
        // A new join node makes its class's join-consumers associable
        // through it: re-trigger their Assoc entries.
        let class = self.mesh.node(node).class;
        for parent in self.mesh.class_parents(class) {
            let p = self.mesh.node(parent);
            if matches!(p.op, RelOp::Join(_))
                && self.mesh.repr(p.inputs[0]) == self.mesh.repr(class)
            {
                self.seq += 1;
                let e = OpenEntry {
                    priority: self.priority(parent, Rule::Assoc),
                    seq: self.seq,
                    node: parent,
                    rule: Rule::Assoc,
                };
                self.open.push(e);
            }
        }
    }

    fn apply_commute(&mut self, node: NodeId) {
        if !self.applied.insert((node, Rule::Commute, NO_INNER)) {
            return;
        }
        let (op, inputs, class) = {
            let n = self.mesh.node(node);
            (n.op.clone(), n.inputs.clone(), n.class)
        };
        let RelOp::Join(p) = op else { return };
        self.stats.transformations += 1;
        let (new_node, _, is_new) = self.mesh.intern(
            self.model,
            RelOp::Join(p.flipped()),
            vec![inputs[1], inputs[0]],
            Some(class),
        );
        if is_new {
            self.analyze(new_node);
            self.enqueue_rules(new_node);
            self.propagate(new_node);
        }
    }

    fn apply_assoc(&mut self, node: NodeId) {
        let (op, inputs, class) = {
            let n = self.mesh.node(node);
            (n.op.clone(), n.inputs.clone(), n.class)
        };
        let RelOp::Join(p2) = op else { return };
        // Enumerate current join members of the left class as bindings.
        for inner in self.mesh.class_nodes(inputs[0]) {
            if !self.applied.insert((node, Rule::Assoc, inner)) {
                continue;
            }
            let (iop, iinputs) = {
                let n = self.mesh.node(inner);
                (n.op.clone(), n.inputs.clone())
            };
            let RelOp::Join(p1) = iop else { continue };
            let (a, b, c) = (iinputs[0], iinputs[1], inputs[1]);
            let b_logical = &self.mesh.class(b).logical;
            let (q1, to_outer) = p2.partition(|l, _| b_logical.has_attr(l));
            let q2 = p1.and(&to_outer);
            if !self.allow_cross && (q1.is_cross() || q2.is_cross()) {
                continue;
            }
            self.stats.transformations += 1;
            let (inner_node, inner_class, inner_new) =
                self.mesh
                    .intern(self.model, RelOp::Join(q1), vec![b, c], None);
            if inner_new {
                self.analyze(inner_node);
                self.enqueue_rules(inner_node);
                self.propagate(inner_node);
            }
            let (root_node, _, root_new) = self.mesh.intern(
                self.model,
                RelOp::Join(q2),
                vec![a, inner_class],
                Some(class),
            );
            if root_new {
                self.analyze(root_node);
                self.enqueue_rules(root_node);
                self.propagate(root_node);
            }
        }
    }

    /// Analyze a node: evaluate each applicable algorithm against the
    /// inputs' *current best* plans (greedy, no property goals), folding
    /// any required sorts into the algorithm's own cost, and append the
    /// records to the node.
    fn analyze(&mut self, node: NodeId) {
        self.stats.analyses += 1;
        let (op, inputs) = {
            let n = self.mesh.node(node);
            (n.op.clone(), n.inputs.clone())
        };
        // Inputs' current bests; bail if any input is unanalyzable.
        let mut input_best: Vec<(RelCost, Vec<AttrId>)> = Vec::with_capacity(inputs.len());
        for &i in &inputs {
            match &self.mesh.class(i).best {
                Some((_, c, o)) => input_best.push((*c, o.clone())),
                None => return,
            }
        }
        let out = self.mesh.class(self.mesh.node(node).class).logical.clone();
        let in_logical: Vec<_> = inputs
            .iter()
            .map(|&i| self.mesh.class(i).logical.clone())
            .collect();

        let mut records: Vec<PlanRecord> = Vec::new();
        match &op {
            RelOp::Get(_) => {
                records.push(PlanRecord {
                    alg: RelAlg::FileScan(match op {
                        RelOp::Get(t) => t,
                        _ => unreachable!(),
                    }),
                    local: formulas::file_scan(&out),
                    total: RelCost::zero(),
                    order: vec![],
                    input_sorts: vec![],
                });
            }
            RelOp::Select(p) => {
                records.push(PlanRecord {
                    alg: RelAlg::Filter(p.clone()),
                    local: formulas::filter(&in_logical[0], p.len()),
                    total: RelCost::zero(),
                    // Filter passes its input through: a useful order is
                    // exploited when the input happens to have one.
                    order: input_best[0].1.clone(),
                    input_sorts: vec![false],
                });
            }
            RelOp::Project(attrs) => {
                let order: Vec<AttrId> = {
                    let o = &input_best[0].1;
                    if o.iter().all(|a| attrs.contains(a)) {
                        o.clone()
                    } else {
                        vec![]
                    }
                };
                records.push(PlanRecord {
                    alg: RelAlg::ProjectOp(attrs.clone()),
                    local: formulas::project(&in_logical[0]),
                    total: RelCost::zero(),
                    order,
                    input_sorts: vec![false],
                });
            }
            RelOp::Join(p) => {
                if !p.is_cross() {
                    records.push(PlanRecord {
                        alg: RelAlg::HybridHashJoin(p.clone()),
                        local: formulas::hash_join(&in_logical[0], &in_logical[1], &out),
                        total: RelCost::zero(),
                        order: vec![],
                        input_sorts: vec![false, false],
                    });
                    // Merge join: "the cost of enforcers had to be
                    // included in the cost function" — fold in a sort for
                    // every input whose current best order does not
                    // already cover the join keys.
                    let lkeys = p.left_attrs();
                    let rkeys = p.right_attrs();
                    let covers = |have: &[AttrId], need: &[AttrId]| {
                        need.len() <= have.len() && have[..need.len()] == need[..]
                    };
                    let mut local = formulas::merge_join(&in_logical[0], &in_logical[1], &out);
                    let l_sort = !covers(&input_best[0].1, &lkeys);
                    let r_sort = !covers(&input_best[1].1, &rkeys);
                    if l_sort {
                        local = local.add(&formulas::sort(&in_logical[0]));
                    }
                    if r_sort {
                        local = local.add(&formulas::sort(&in_logical[1]));
                    }
                    records.push(PlanRecord {
                        alg: RelAlg::MergeJoin(p.clone()),
                        local,
                        total: RelCost::zero(),
                        order: lkeys,
                        input_sorts: vec![l_sort, r_sort],
                    });
                }
            }
            RelOp::Union | RelOp::Intersect | RelOp::Difference => {
                let alg = match &op {
                    RelOp::Union => RelAlg::HashUnion,
                    RelOp::Intersect => RelAlg::HashIntersect,
                    _ => RelAlg::HashDifference,
                };
                records.push(PlanRecord {
                    alg,
                    local: formulas::hash_set_op(&in_logical[0], &in_logical[1], &out),
                    total: RelCost::zero(),
                    order: vec![],
                    input_sorts: vec![false, false],
                });
            }
            RelOp::Aggregate(spec) => {
                records.push(PlanRecord {
                    alg: RelAlg::HashAggregate(spec.clone()),
                    local: formulas::hash_agg(&in_logical[0], &out),
                    total: RelCost::zero(),
                    order: vec![],
                    input_sorts: vec![false],
                });
            }
            // Split aggregates exist only inside the Volcano optimizer's
            // search space (the aggregate-split transformation); they
            // never reach this greedy mesh, whose input is the user's
            // logical expression.
            RelOp::PartialAggregate(_) | RelOp::FinalAggregate(_) => {}
        }

        // Complete totals and pick the best record.
        let input_total = input_best
            .iter()
            .fold(RelCost::zero(), |acc, (c, _)| acc.add(c));
        for r in &mut records {
            r.total = r.local.add(&input_total);
        }
        if records.is_empty() {
            return;
        }
        let n = self.mesh.node_mut(node);
        let base = n.records.len();
        n.records.extend(records);
        self.mesh.records_appended += (self.mesh.node(node).records.len() - base) as u64;
        let best_idx = {
            let n = self.mesh.node(node);
            let mut bi = base;
            for i in base..n.records.len() {
                if n.records[i].total.cheaper_than(&n.records[bi].total) {
                    bi = i;
                }
            }
            // Keep an older record if it is still cheaper (can happen
            // after class merges shuffle input bests).
            match n.best {
                Some(old) if !n.records[bi].total.cheaper_than(&n.records[old].total) => old,
                _ => bi,
            }
        };
        self.mesh.node_mut(node).best = Some(best_idx);
    }

    /// If `node`'s plan improves its class best, reanalyze all consumer
    /// nodes transitively — the EXODUS time sink: "for larger queries,
    /// most of the time was spent reanalyzing existing plans".
    fn propagate(&mut self, node: NodeId) {
        let mut worklist = vec![node];
        while let Some(n) = worklist.pop() {
            let Some(best_idx) = self.mesh.node(n).best else {
                continue;
            };
            let (total, order) = {
                let nd = self.mesh.node(n);
                (
                    nd.records[best_idx].total,
                    nd.records[best_idx].order.clone(),
                )
            };
            let class = self.mesh.node(n).class;
            let improved = match &self.mesh.class(class).best {
                None => true,
                Some((_, c, _)) => total.cheaper_than(c),
            };
            if !improved {
                continue;
            }
            self.mesh.class_mut(class).best = Some((n, total, order));
            for parent in self.mesh.class_parents(class) {
                self.stats.reanalyses += 1;
                self.analyze(parent);
                worklist.push(parent);
            }
        }
    }

    /// Materialize the best plan for a class, inserting the implicit
    /// sorts the analysis folded into algorithm costs, plus a final sort
    /// if the caller's order requirement is not met by luck.
    fn extract(&self, root: ClassId, order_by: &[AttrId]) -> (Plan<RelModel>, RelCost) {
        let plan = self.extract_class(root);
        let covered = {
            let have = &plan.delivered.sort;
            order_by.len() <= have.len() && have[..order_by.len()] == order_by[..]
        };
        if order_by.is_empty() || covered {
            let cost = plan.cost;
            return (plan, cost);
        }
        let logical = &self.mesh.class(root).logical;
        let sort_cost = formulas::sort(logical);
        let total = plan.cost.add(&sort_cost);
        let sorted = Plan {
            alg: RelAlg::Sort(order_by.to_vec()),
            delivered: RelProps::sorted(order_by.to_vec()),
            local_cost: sort_cost,
            cost: total,
            group: GroupId::from_index(root.0 as usize),
            inputs: vec![plan],
        };
        (sorted, total)
    }

    fn extract_class(&self, class: ClassId) -> Plan<RelModel> {
        let (node, _, _) = self
            .mesh
            .class(class)
            .best
            .as_ref()
            .expect("extracting a class without a best plan");
        let nd = self.mesh.node(*node);
        let rec = &nd.records[nd.best.expect("best record")];
        let mut inputs = Vec::with_capacity(nd.inputs.len());
        let mut base_local = rec.local;
        for (i, &ic) in nd.inputs.iter().enumerate() {
            let mut child = self.extract_class(ic);
            if *rec.input_sorts.get(i).unwrap_or(&false) {
                let logical = &self.mesh.class(ic).logical;
                let sc = formulas::sort(logical);
                base_local = base_local.sub_saturating(&sc);
                let total = child.cost.add(&sc);
                let keys = match &rec.alg {
                    RelAlg::MergeJoin(p) => {
                        if i == 0 {
                            p.left_attrs()
                        } else {
                            p.right_attrs()
                        }
                    }
                    _ => vec![],
                };
                child = Plan {
                    alg: RelAlg::Sort(keys.clone()),
                    delivered: RelProps::sorted(keys),
                    local_cost: sc,
                    cost: total,
                    group: GroupId::from_index(ic.0 as usize),
                    inputs: vec![child],
                };
            }
            inputs.push(child);
        }
        Plan {
            alg: rec.alg.clone(),
            delivered: RelProps::sorted(rec.order.clone()),
            local_cost: base_local,
            cost: rec.total,
            group: GroupId::from_index(self.mesh.repr(class).0 as usize),
            inputs,
        }
    }
}
