//! Unit tests of the MESH data structure itself: interning, class
//! merging, record accounting, and the memory estimate.

use exodus::mesh::Mesh;
use volcano_rel::{Catalog, ColumnDef, JoinPred, Pred, RelModel, RelOp};

fn model() -> RelModel {
    let mut c = Catalog::new();
    c.add_table(
        "r",
        100.0,
        vec![ColumnDef::int("a", 100.0), ColumnDef::int("b", 10.0)],
    );
    c.add_table("s", 200.0, vec![ColumnDef::int("a", 200.0)]);
    RelModel::with_defaults(c)
}

#[test]
fn interning_deduplicates() {
    let m = model();
    let mut mesh = Mesh::new();
    let r = m.catalog().table_by_name("r").unwrap().id;
    let (n1, c1, new1) = mesh.intern(&m, RelOp::Get(r), vec![], None);
    let (n2, c2, new2) = mesh.intern(&m, RelOp::Get(r), vec![], None);
    assert!(new1);
    assert!(!new2);
    assert_eq!(n1, n2);
    assert_eq!(c1, c2);
    assert_eq!(mesh.num_nodes(), 1);
}

#[test]
fn logical_properties_derive_through_classes() {
    let m = model();
    let mut mesh = Mesh::new();
    let r = m.catalog().table_by_name("r").unwrap().id;
    let (_, rc, _) = mesh.intern(&m, RelOp::Get(r), vec![], None);
    assert_eq!(mesh.class(rc).logical.card, 100.0);
    let (_, sc, _) = mesh.intern(
        &m,
        RelOp::Select(Pred::single(volcano_rel::Cmp::lt(
            m.catalog().attr("r", "a"),
            5i64,
        ))),
        vec![rc],
        None,
    );
    // Range selectivity 1/3.
    assert!((mesh.class(sc).logical.card - 100.0 / 3.0).abs() < 1e-9);
}

#[test]
fn merging_unifies_classes_and_parents() {
    let m = model();
    let mut mesh = Mesh::new();
    let r = m.catalog().table_by_name("r").unwrap().id;
    let s = m.catalog().table_by_name("s").unwrap().id;
    let (_, rc, _) = mesh.intern(&m, RelOp::Get(r), vec![], None);
    let (_, sc, _) = mesh.intern(&m, RelOp::Get(s), vec![], None);
    let ra = m.catalog().attr("r", "a");
    let sa = m.catalog().attr("s", "a");
    let (_, j1, _) = mesh.intern(&m, RelOp::Join(JoinPred::eq(ra, sa)), vec![rc, sc], None);
    // Interning the same join with a target class that differs forces a
    // merge of the target with j1's class.
    let (_, extra, _) = mesh.intern(&m, RelOp::Get(r), vec![], None);
    let _ = extra;
    let (_, j2_class, _) = mesh.intern(
        &m,
        RelOp::Join(JoinPred::eq(ra, sa)),
        vec![rc, sc],
        Some(sc),
    );
    // The join already existed in j1; providing target sc merges sc and
    // j1's class.
    assert_eq!(mesh.repr(j1), mesh.repr(j2_class));
    assert_eq!(mesh.repr(j1), mesh.repr(sc));
}

#[test]
fn memory_estimate_grows_with_records() {
    let m = model();
    let mut mesh = Mesh::new();
    let r = m.catalog().table_by_name("r").unwrap().id;
    let (node, _, _) = mesh.intern(&m, RelOp::Get(r), vec![], None);
    let before = mesh.memory_estimate();
    mesh.node_mut(node).records.push(exodus::mesh::PlanRecord {
        alg: volcano_rel::RelAlg::FileScan(r),
        local: volcano_rel::RelCost::new(1.0, 1.0),
        total: volcano_rel::RelCost::new(1.0, 1.0),
        order: vec![],
        input_sorts: vec![],
    });
    assert!(mesh.memory_estimate() > before);
}
