//! Behavioural tests for the EXODUS baseline: correctness on simple
//! queries, agreement with Volcano where no interesting orders exist, and
//! the documented pathologies (reanalysis, memory abort, missed
//! interesting orders).

use exodus::ExodusOptimizer;
use volcano_core::{PhysicalProps, SearchOptions};
use volcano_rel::builder::{join, join_on, select_one};
use volcano_rel::{
    Catalog, Cmp, ColumnDef, JoinPred, QueryBuilder, RelAlg, RelModel, RelModelOptions,
    RelOptimizer, RelProps,
};

fn fig4_model(c: Catalog) -> RelModel {
    RelModel::new(c, RelModelOptions::paper_fig4())
}

fn two_table_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "r",
        2_000.0,
        vec![ColumnDef::int("a", 2_000.0), ColumnDef::int("b", 100.0)],
    );
    c.add_table(
        "s",
        4_000.0,
        vec![ColumnDef::int("a", 4_000.0), ColumnDef::int("b", 100.0)],
    );
    c
}

#[test]
fn single_join_matches_volcano_optimum() {
    let model = fig4_model(two_table_catalog());
    let q = QueryBuilder::new(model.catalog());
    let expr = join_on(q.scan("r"), q.scan("s"), q.attr("r", "b"), q.attr("s", "b"));

    let exodus = ExodusOptimizer::new(&model).optimize(&expr, &[]).unwrap();

    let mut vol = RelOptimizer::new(&model, SearchOptions::default());
    let root = vol.insert_tree(&expr);
    let vplan = vol.find_best_plan(root, RelProps::any(), None).unwrap();

    // For a single join with heap inputs and no order requirement there
    // are no interesting orders to exploit: both searches must agree.
    assert!(
        (exodus.cost.total() - vplan.cost.total()).abs() < 1e-6,
        "exodus {} vs volcano {}",
        exodus.cost,
        vplan.cost
    );
}

#[test]
fn selections_are_filtered_not_lost() {
    let model = fig4_model(two_table_catalog());
    let q = QueryBuilder::new(model.catalog());
    let expr = join_on(
        select_one(q.scan("r"), Cmp::eq(q.attr("r", "b"), 5i64)),
        q.scan("s"),
        q.attr("r", "a"),
        q.attr("s", "a"),
    );
    let out = ExodusOptimizer::new(&model).optimize(&expr, &[]).unwrap();
    let filters = out.plan.count_algs(|a| matches!(a, RelAlg::Filter(_)));
    assert_eq!(filters, 1);
    let scans = out.plan.count_algs(|a| matches!(a, RelAlg::FileScan(_)));
    assert_eq!(scans, 2);
}

#[test]
fn merge_join_folds_sorts_into_plan() {
    // Make the join output enormous so hash join's per-output-tuple cost
    // dwarfs sorting the inputs: merge join with folded sorts must win,
    // and extraction must materialize the sorts.
    let mut c = Catalog::new();
    c.add_table("l", 3_000.0, vec![ColumnDef::int("k", 3.0)]);
    c.add_table("r", 3_000.0, vec![ColumnDef::int("k", 3.0)]);
    let model = fig4_model(c);
    let q = QueryBuilder::new(model.catalog());
    let expr = join_on(q.scan("l"), q.scan("r"), q.attr("l", "k"), q.attr("r", "k"));
    let out = ExodusOptimizer::new(&model).optimize(&expr, &[]).unwrap();
    if matches!(out.plan.alg, RelAlg::MergeJoin(_)) {
        let sorts = out.plan.count_algs(|a| matches!(a, RelAlg::Sort(_)));
        assert_eq!(
            sorts,
            2,
            "both heap inputs need sorting:\n{}",
            out.plan.explain()
        );
    }
}

#[test]
fn order_by_adds_final_sort_when_unlucky() {
    let model = fig4_model(two_table_catalog());
    let q = QueryBuilder::new(model.catalog());
    let rb = q.attr("r", "b");
    let expr = join_on(q.scan("r"), q.scan("s"), rb, q.attr("s", "b"));
    let out = ExodusOptimizer::new(&model).optimize(&expr, &[rb]).unwrap();
    assert!(
        out.plan.delivered.satisfies(&RelProps::sorted(vec![rb])),
        "plan must deliver the requested order"
    );
}

#[test]
fn three_way_join_explores_orders() {
    let mut c = Catalog::new();
    c.add_table("a", 1_200.0, vec![ColumnDef::int("x", 100.0)]);
    c.add_table(
        "b",
        7_200.0,
        vec![ColumnDef::int("x", 100.0), ColumnDef::int("y", 100.0)],
    );
    c.add_table("d", 2_400.0, vec![ColumnDef::int("y", 100.0)]);
    let model = fig4_model(c);
    let q = QueryBuilder::new(model.catalog());
    let expr = join(
        join(
            q.scan("a"),
            q.scan("b"),
            JoinPred::eq(q.attr("a", "x"), q.attr("b", "x")),
        ),
        q.scan("d"),
        JoinPred::eq(q.attr("b", "y"), q.attr("d", "y")),
    );
    let out = ExodusOptimizer::new(&model).optimize(&expr, &[]).unwrap();
    assert!(out.stats.transformations >= 4, "commute + assoc must fire");
    assert!(
        out.stats.reanalyses > 0,
        "reanalysis is the EXODUS signature"
    );
    assert_eq!(out.plan.count_algs(|a| matches!(a, RelAlg::FileScan(_))), 3);

    // And the exhaustive Volcano search can never be beaten by EXODUS.
    let mut vol = RelOptimizer::new(&model, SearchOptions::default());
    let root = vol.insert_tree(&expr);
    let vplan = vol.find_best_plan(root, RelProps::any(), None).unwrap();
    assert!(vplan.cost.total() <= out.cost.total() + 1e-6);
}

#[test]
fn tiny_memory_budget_aborts() {
    let mut c = Catalog::new();
    for i in 0..5 {
        c.add_table(
            &format!("t{i}"),
            2_000.0,
            vec![ColumnDef::int("a", 100.0), ColumnDef::int("b", 100.0)],
        );
    }
    let a: Vec<_> = (0..5).map(|i| c.attr(&format!("t{i}"), "a")).collect();
    let model = fig4_model(c);
    let q = QueryBuilder::new(model.catalog());
    let mut expr = q.scan("t0");
    for i in 1..5 {
        expr = join(expr, q.scan(&format!("t{i}")), JoinPred::eq(a[i - 1], a[i]));
    }
    let result = ExodusOptimizer::new(&model)
        .with_memory_budget(4 << 10)
        .optimize(&expr, &[]);
    assert!(result.is_err(), "4 KiB must not be enough for 5 relations");
}

#[test]
fn exodus_misses_interesting_orders_volcano_exploits() {
    // A chain where relation `m` joins both neighbours on the SAME
    // attribute: Volcano can sort `m` once (or use merge joins sharing
    // the order); EXODUS chooses per-node greedily and cannot plan the
    // shared order deliberately. Volcano must be at least as good, and on
    // this catalog strictly better or equal; the inequality direction is
    // the invariant.
    let mut c = Catalog::new();
    c.add_table("l", 6_000.0, vec![ColumnDef::int("k", 20.0)]);
    c.add_table("m", 6_000.0, vec![ColumnDef::int("k", 20.0)]);
    c.add_table("r", 6_000.0, vec![ColumnDef::int("k", 20.0)]);
    let model = fig4_model(c);
    let q = QueryBuilder::new(model.catalog());
    let expr = join(
        join(
            q.scan("l"),
            q.scan("m"),
            JoinPred::eq(q.attr("l", "k"), q.attr("m", "k")),
        ),
        q.scan("r"),
        JoinPred::eq(q.attr("m", "k"), q.attr("r", "k")),
    );
    let ex = ExodusOptimizer::new(&model).optimize(&expr, &[]).unwrap();
    let mut vol = RelOptimizer::new(&model, SearchOptions::default());
    let root = vol.insert_tree(&expr);
    let vplan = vol.find_best_plan(root, RelProps::any(), None).unwrap();
    assert!(
        vplan.cost.total() <= ex.cost.total() + 1e-6,
        "volcano {} must never lose to exodus {}",
        vplan.cost,
        ex.cost
    );
}
