//! The demand-driven iterator interface.
//!
//! "Operators consuming and producing sets or sequences of items are the
//! fundamental building blocks" (§6); in the Volcano execution engine
//! each algorithm is an iterator with `open`, `next`, and `close`.

use volcano_rel::value::Tuple;

/// A Volcano iterator: one node of an executable plan.
///
/// Contract: `open` before the first `next`; `next` returns `None` at end
/// of stream and keeps returning `None` afterwards; `close` releases
/// resources. Re-opening after `close` restarts the stream (nested-loops
/// joins rely on this for their inner input).
pub trait Operator: Send {
    /// Prepare to produce tuples.
    fn open(&mut self);

    /// Produce the next tuple, or `None` at end of stream.
    fn next(&mut self) -> Option<Tuple>;

    /// Release resources.
    fn close(&mut self);

    /// Short algorithm name for diagnostics (e.g. `"hash_join"`).
    fn name(&self) -> &'static str {
        "operator"
    }

    /// Operator-specific counters for `EXPLAIN ANALYZE` — `(label,
    /// value)` pairs such as `("build_rows", 1000)`. Counters accumulate
    /// across re-opens (nested-loops inners) and must remain readable
    /// after `close`.
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// A boxed operator tree.
pub type BoxedOperator = Box<dyn Operator>;

/// Drain an operator into a vector (opens and closes it).
pub fn collect(op: &mut dyn Operator) -> Vec<Tuple> {
    op.open();
    let mut out = Vec::new();
    while let Some(t) = op.next() {
        out.push(t);
    }
    op.close();
    out
}
