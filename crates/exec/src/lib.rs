//! # volcano-exec — the Volcano execution engine
//!
//! The demand-driven iterator model of the Volcano query processor \[4\]:
//! every physical operator implements `open` / `next` / `close`
//! ([`iterator::Operator`]), consuming and producing streams of tuples,
//! with data pipelined between operators.
//!
//! * [`ops`] — the algorithms the optimizer chooses among: table scan,
//!   filtered scan, filter, project, sort, merge join, hash join, nested
//!   loops, set operations, aggregation, and the `exchange` operator for
//!   pipeline parallelism (crossbeam channels), per the paper's
//!   parallelism discussion.
//! * [`database`] — tables as heap files behind a buffer pool, with data
//!   generation that honours the catalog's statistics.
//! * [`compile()`] — lowers an optimized [`volcano_rel::RelPlan`] to an
//!   executable operator tree, resolving attributes to positions.
//! * [`naive`] — a direct evaluator for *logical* algebra expressions:
//!   the correctness oracle that every optimized-and-executed plan is
//!   tested against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod compile;
pub mod database;
pub mod iterator;
pub mod naive;
pub mod ops;

pub use analyze::{execute_analyzed, Analyzed};
pub use compile::{compile, compile_node, schema_of, Compiled};
pub use database::Database;
pub use iterator::{collect, BoxedOperator, Operator};
pub use naive::{assert_same_rows, evaluate_logical, Evaluated};
