//! # volcano-exec — the Volcano execution engine
//!
//! The demand-driven iterator model of the Volcano query processor \[4\]:
//! every physical operator implements `open` / `next` / `close`
//! ([`iterator::Operator`]), consuming and producing streams of tuples,
//! with data pipelined between operators.
//!
//! * [`ops`] — the algorithms the optimizer chooses among: table scan,
//!   filtered scan, filter, project, sort, merge join, hash join, nested
//!   loops, set operations, aggregation, and the `exchange` operator for
//!   pipeline parallelism (crossbeam channels), per the paper's
//!   parallelism discussion.
//! * [`database`] — tables as heap files behind a buffer pool, with data
//!   generation that honours the catalog's statistics.
//! * [`compile()`] — lowers an optimized [`volcano_rel::RelPlan`] to an
//!   executable operator tree, resolving attributes to positions.
//! * [`batch`] / [`kernels`] — a second, vectorized executor over the
//!   same physical plans: columnar batches with selection vectors,
//!   column-at-a-time kernels, and tuple↔batch adapters so every plan
//!   runs end-to-end under either engine with identical results
//!   ([`compile_batch()`]).
//! * [`fused`] — a third, pipeline-fused executor: maximal
//!   scan→filter→project→probe plan segments compiled into single
//!   fused-region operators with monomorphized predicate kernels and
//!   projected record decoding, falling back to batch operators (one
//!   adapter per genuine boundary) for everything else
//!   ([`compile_fused()`]).
//! * [`morsel`] — morsel-driven parallel execution of `gather(n)`
//!   regions: page-range morsels, work-stealing workers, partitioned
//!   parallel hash joins, results streamed to the consumer over a
//!   bounded exchange channel.
//! * [`serve`] — the multi-session serving layer: sessions with their
//!   own prepared statements and `SET` state over one shared
//!   `Send + Sync` [`database::Database`], with admission control that
//!   degrades overloaded search to greedy completion instead of
//!   queueing unboundedly.
//! * [`naive`] — a direct evaluator for *logical* algebra expressions:
//!   the correctness oracle that every optimized-and-executed plan is
//!   tested against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod batch;
pub mod compile;
pub mod database;
pub mod fused;
pub mod iterator;
pub mod kernels;
pub mod morsel;
pub mod naive;
pub mod ops;
pub mod plan_cache;
pub mod serve;

pub use analyze::{
    execute_analyzed, execute_analyzed_batch, execute_analyzed_fused, Analyzed, AnalyzedFused,
};
pub use batch::{collect_batches, Batch, BatchOperator, BoxedBatchOperator, Column};
pub use compile::{
    compile, compile_batch, compile_node, compile_node_at, schema_of, schema_of_at, BatchConfig,
    Compiled, CompiledBatch, Engine,
};
pub use database::{
    Database, ExecOptions, FeedbackStats, PrepareError, PreparedOutcome, PreparedStatement,
    SchemaSnapshot, DEFAULT_DRIFT_FACTOR, DEFAULT_PLAN_CACHE_CAPACITY, FEEDBACK_MATERIAL_RATIO,
};
pub use fused::{compile_fused, CompiledFused, FusedRegion, FusedReport};
pub use iterator::{collect, BoxedOperator, Operator};
pub use morsel::{MorselStats, ParallelGather};
pub use naive::{assert_same_rows, evaluate_logical, Evaluated};
pub use plan_cache::{rebind_plan, CacheOutcome, PlanCache, PlanCacheStats};
pub use serve::{
    Admission, AdmissionControl, AdmissionStats, Server, ServerConfig, Session, SessionError,
    SessionOutcome, Ticket, TrafficClass,
};
