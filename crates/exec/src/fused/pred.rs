//! Monomorphized predicate kernels for the fused engine.
//!
//! A [`FusedPred`] compiles each conjunct of a [`CompiledPred`] into a
//! closure specialized *at plan-compile time* over the (column variant ×
//! literal type × comparison operator) combination the plan says it will
//! see: the hot loop is a primitive comparison over a typed slice with
//! the operator inlined — no `CmpOp` dispatch, no `Value`
//! materialization, no per-row branching beyond the validity mask. A
//! conjunct whose column arrives in an unexpected variant at runtime
//! (demoted to [`Column::Any`], or a cross-typed comparison such as an
//! `Int` column against a `Float` literal) falls back to the batch
//! engine's [`filter_term`] kernel, which keeps semantics identical to
//! the tuple engine's [`CompiledPred::eval`] by construction — in
//! particular, a comparison involving NULL rejects the row.

use volcano_rel::{CmpOp, Value};

use crate::batch::{Batch, Column};
use crate::kernels::pred::filter_term;
use crate::ops::CompiledPred;

/// A monomorphized conjunct kernel: narrow `sel` by comparing one column
/// against the captured literal, pushing survivors into `out`.
type Kernel = Box<dyn Fn(&Column, &[u32], &mut Vec<u32>) + Send + Sync>;

struct FusedTerm {
    pos: usize,
    kernel: Kernel,
}

/// A conjunction compiled to per-conjunct monomorphized kernels.
pub struct FusedPred {
    terms: Vec<FusedTerm>,
}

impl FusedPred {
    /// Specialize every conjunct of `pred`.
    pub fn compile(pred: &CompiledPred) -> Self {
        FusedPred {
            terms: pred
                .terms()
                .iter()
                .map(|&(pos, op, ref lit)| FusedTerm {
                    pos,
                    kernel: compile_term(op, lit.clone()),
                })
                .collect(),
        }
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Trivially true?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Apply the conjunction to `batch`, replacing its selection vector
    /// with the surviving rows — same contract and same conjunct order
    /// as [`crate::kernels::apply_pred`]. Returns the surviving count.
    pub fn apply(&self, batch: &mut Batch, scratch: &mut Vec<u32>) -> usize {
        for term in &self.terms {
            if batch.live_rows() == 0 {
                break;
            }
            match batch.sel.take() {
                Some(sel) => {
                    (term.kernel)(&batch.columns[term.pos], &sel, scratch);
                    batch.sel = Some(std::mem::take(scratch));
                    *scratch = sel; // recycle the old allocation
                }
                None => {
                    let all: Vec<u32> = (0..batch.physical_rows() as u32).collect();
                    (term.kernel)(&batch.columns[term.pos], &all, scratch);
                    batch.sel = Some(std::mem::take(scratch));
                    *scratch = all;
                }
            }
        }
        batch.live_rows()
    }
}

/// Monomorphize one `<col> <op> <lit>` conjunct.
fn compile_term(op: CmpOp, lit: Value) -> Kernel {
    match lit {
        Value::Int(l) => int_term(op, l),
        Value::Float(l) => float_term(op, l.get()),
        Value::Str(l) => str_term(op, l),
        Value::Bool(l) => bool_term(op, l),
        // SQL comparison with NULL is unknown: rejects every row.
        Value::Null => Box::new(|_, _, out| out.clear()),
    }
}

/// Expand one specialized kernel per comparison operator: `$cmp` is a
/// distinct closure type per arm, so the inner loop is monomorphized
/// with the comparison inlined.
macro_rules! per_op {
    ($op:expr, $k:ident) => {
        match $op {
            CmpOp::Eq => $k!(|a, b| a == b),
            CmpOp::Ne => $k!(|a, b| a != b),
            CmpOp::Lt => $k!(|a, b| a < b),
            CmpOp::Le => $k!(|a, b| a <= b),
            CmpOp::Gt => $k!(|a, b| a > b),
            CmpOp::Ge => $k!(|a, b| a >= b),
        }
    };
}

fn int_term(op: CmpOp, l: i64) -> Kernel {
    macro_rules! k {
        ($cmp:expr) => {
            Box::new(
                move |col: &Column, sel: &[u32], out: &mut Vec<u32>| match col {
                    Column::Int { data, valid } => {
                        out.clear();
                        out.reserve(sel.len());
                        let cmp = $cmp;
                        for &i in sel {
                            let j = i as usize;
                            if valid[j] && cmp(data[j], l) {
                                out.push(i);
                            }
                        }
                    }
                    other => filter_term(other, op, &Value::Int(l), sel, out),
                },
            )
        };
    }
    per_op!(op, k)
}

fn float_term(op: CmpOp, l: f64) -> Kernel {
    // Direct f64 operators agree with `partial_cmp` because `Value`
    // bans NaN; both zeros already compare equal under either.
    macro_rules! k {
        ($cmp:expr) => {
            Box::new(
                move |col: &Column, sel: &[u32], out: &mut Vec<u32>| match col {
                    Column::Float { data, valid } => {
                        out.clear();
                        out.reserve(sel.len());
                        let cmp = $cmp;
                        for &i in sel {
                            let j = i as usize;
                            if valid[j] && cmp(data[j], l) {
                                out.push(i);
                            }
                        }
                    }
                    other => filter_term(other, op, &Value::float(l), sel, out),
                },
            )
        };
    }
    per_op!(op, k)
}

fn str_term(op: CmpOp, l: String) -> Kernel {
    let fallback_lit = Value::Str(l.clone());
    macro_rules! k {
        ($cmp:expr) => {
            Box::new(
                move |col: &Column, sel: &[u32], out: &mut Vec<u32>| match col {
                    Column::Str { data, valid } => {
                        out.clear();
                        out.reserve(sel.len());
                        let cmp = $cmp;
                        let l = l.as_str();
                        for &i in sel {
                            let j = i as usize;
                            if valid[j] && cmp(data[j].as_str(), l) {
                                out.push(i);
                            }
                        }
                    }
                    other => filter_term(other, op, &fallback_lit, sel, out),
                },
            )
        };
    }
    per_op!(op, k)
}

fn bool_term(op: CmpOp, l: bool) -> Kernel {
    macro_rules! k {
        ($cmp:expr) => {
            Box::new(
                move |col: &Column, sel: &[u32], out: &mut Vec<u32>| match col {
                    Column::Bool { data, valid } => {
                        out.clear();
                        out.reserve(sel.len());
                        let cmp = $cmp;
                        for &i in sel {
                            let j = i as usize;
                            if valid[j] && cmp(data[j], l) {
                                out.push(i);
                            }
                        }
                    }
                    other => filter_term(other, op, &Value::Bool(l), sel, out),
                },
            )
        };
    }
    per_op!(op, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::apply_pred;
    use volcano_rel::catalog::ColType;

    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// A batch with one column per storage shape: typed Int, typed
    /// Float, typed Str, typed Bool, and a demoted Any mixing types.
    fn mixed_batch() -> Batch {
        let mut b = Batch::with_columns(0);
        let mut ints = Column::with_type(ColType::Int);
        let mut floats = Column::with_type(ColType::Float);
        let mut strs = Column::with_type(ColType::Str);
        let mut bools = Column::with_type(ColType::Bool);
        let mut any = Column::any();
        any.push_value(Value::str("force-any"));
        // Row 0 of every column (the `any` column got its row above).
        ints.push_null();
        floats.push_null();
        strs.push_null();
        bools.push_null();
        for i in 0..40i64 {
            if i % 7 == 0 {
                ints.push_null();
                floats.push_null();
                strs.push_null();
                bools.push_null();
                any.push_value(Value::Null);
            } else {
                ints.push_value(Value::Int(i - 20));
                floats.push_value(Value::float((i as f64) / 4.0 - 5.0));
                strs.push_value(Value::Str(format!("s{:02}", i % 10)));
                bools.push_value(Value::Bool(i % 2 == 0));
                if i % 3 == 0 {
                    any.push_value(Value::Int(i));
                } else {
                    any.push_value(Value::Str(format!("v{i}")));
                }
            }
        }
        let mut head = Column::any();
        head.push_value(Value::Null); // column 0 placeholder, unused
        for _ in 1..41 {
            head.push_value(Value::Null);
        }
        b.columns = vec![head, ints, floats, strs, bools, any];
        b.set_physical_rows(41);
        b
    }

    #[test]
    fn fused_matches_batch_kernel_on_every_shape() {
        let cases: Vec<(usize, Value)> = vec![
            (1, Value::Int(3)),
            (1, Value::float(2.5)),
            (2, Value::float(-1.25)),
            (2, Value::Int(0)),
            (3, Value::str("s04")),
            (4, Value::Bool(true)),
            (5, Value::Int(9)),
            (5, Value::str("v11")),
            (1, Value::Null),
        ];
        for (pos, lit) in cases {
            for &op in &OPS {
                let pred = CompiledPred::new(vec![(pos, op, lit.clone())]);
                let fused = FusedPred::compile(&pred);
                let mut expect = mixed_batch();
                let mut got = mixed_batch();
                let mut s1 = Vec::new();
                let mut s2 = Vec::new();
                let n_expect = apply_pred(&pred, &mut expect, &mut s1);
                let n_got = fused.apply(&mut got, &mut s2);
                assert_eq!(n_got, n_expect, "pos={pos} op={op:?} lit={lit:?}");
                assert_eq!(got.sel, expect.sel, "pos={pos} op={op:?} lit={lit:?}");
            }
        }
    }

    #[test]
    fn conjunction_narrows_in_order_and_matches_batch_kernel() {
        let pred = CompiledPred::new(vec![
            (1, CmpOp::Gt, Value::Int(-10)),
            (2, CmpOp::Lt, Value::float(3.0)),
            (4, CmpOp::Eq, Value::Bool(true)),
        ]);
        let fused = FusedPred::compile(&pred);
        let mut expect = mixed_batch();
        let mut got = mixed_batch();
        let mut s = Vec::new();
        apply_pred(&pred, &mut expect, &mut s);
        s.clear();
        fused.apply(&mut got, &mut s);
        assert_eq!(got.sel, expect.sel);
        assert!(got.live_rows() > 0, "test predicate should keep some rows");
    }

    #[test]
    fn respects_existing_selection_vector() {
        let pred = CompiledPred::new(vec![(1, CmpOp::Ge, Value::Int(0))]);
        let fused = FusedPred::compile(&pred);
        let mut b = mixed_batch();
        b.sel = Some((0..41).step_by(2).collect());
        let mut expect = b.clone();
        let mut s = Vec::new();
        apply_pred(&pred, &mut expect, &mut s);
        s.clear();
        fused.apply(&mut b, &mut s);
        assert_eq!(b.sel, expect.sel);
    }
}
