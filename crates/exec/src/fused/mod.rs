//! The pipeline-fused execution engine (the third engine).
//!
//! Where the tuple engine interprets the plan one `next()` call per row
//! and the batch engine one `next_batch()` call per operator, the fused
//! engine compiles each maximal fusable plan segment — scans, filters,
//! projections, hash joins — into a single [`FusedRegion`] operator at
//! plan-compile time. Inside a region there is no virtual dispatch and
//! no adapter: each pipeline is one loop per batch that decodes only
//! the columns it touches, evaluates predicate conjuncts through
//! kernels monomorphized over the column types ([`FusedPred`]), and
//! probes join hash tables directly. Non-fusable operators (sort,
//! aggregate, set ops, merge/nested/multiway joins) fall back to the
//! existing operators, with at most one adapter per genuine engine
//! boundary.
//!
//! Semantics are identical to the other two engines by construction:
//! the kernels defer to the batch engine's on any unexpected column
//! shape, and probe output replicates the serial hash join's order
//! contract. The differential suite (`tests/fused_differential.rs`)
//! pins this across engines, batch sizes, and parallel degrees.

mod compile;
mod pred;
mod region;

pub use compile::{compile_fused, CompiledFused, FusedReport, PipelineInfo};
pub(crate) use compile::{compile_fused_at, compile_fused_with};
pub use pred::FusedPred;
pub use region::{FusedRegion, PipelineStats};
