//! Lowering a physical plan to fused pipelines.
//!
//! The fused engine breaks the plan into maximal *regions* of fusable
//! operators — scans, filters, projections, hash joins — and compiles
//! each region into one [`FusedRegion`] operator whose pipelines run as
//! single loops with monomorphized kernels. A hash aggregate above a
//! fusable chain terminates the region's output pipeline in an
//! aggregation sink, so `scan→filter→project→aggregate` runs as one
//! loop (an aggregate over a non-fusable child runs batch-native
//! instead — never through a tuple adapter). Other non-fusable
//! operators (sorts, set ops, merge/nested/multiway joins, index
//! scans) fall back to the existing tuple operators exactly as in the
//! batch engine, with at most one adapter per genuine engine boundary;
//! a fusable chain *above* such an operator still fuses, treating the
//! fallback subtree as an opaque batch input.
//!
//! Three plan-time rewrites distinguish this lowering from the batch
//! engine's operator-per-node compilation:
//!
//! 1. **Filter absorption** — leading filter stages merge into the scan
//!    predicate, so selection happens during page decode.
//! 2. **Scan projection pushdown** — when only filters precede the
//!    first projection, the scan decodes exactly the columns the
//!    pipeline touches (via `decode_record_projected`); skipped string
//!    payloads are never UTF-8 validated or copied.
//! 3. **Probe/project fusion** — a projection directly above a hash
//!    probe folds into the probe's output map, so join results gather
//!    only the columns the query keeps, never the full build ++ probe
//!    concatenation.
//!
//! `Gather(n)` nodes compile to the morsel-parallel executor (whose
//! stage loops share the fused predicate kernels), so fused pipelines
//! compose with work stealing unchanged.

use std::sync::Arc;

use volcano_rel::catalog::ColType;
use volcano_rel::{AggSpec, AttrId, JoinPred, Pred, RelAlg, RelPlan};
use volcano_store::HeapFile;

use crate::batch::BoxedBatchOperator;
use crate::compile::{
    compile_agg_spec, compile_node_at, compile_pred, partial_layout_aggs, position, schema_of_at,
    table_col_types, table_schema, BatchConfig, Built,
};
use crate::database::{Database, SchemaSnapshot};
use crate::fused::pred::FusedPred;
use crate::fused::region::{
    AggSink, FusedPipeline, FusedRegion, FusedScan, FusedSource, FusedStage, PipelineStats,
    ProbeCol,
};
use crate::kernels::agg::AggMode;
use crate::ops::{BatchHashAggregate, CompiledPred};

/// Compile-time intermediate form of a pipeline source.
enum SourceIR {
    /// Heap scan (predicate positions index the full table schema).
    Scan {
        heap: Arc<HeapFile>,
        col_types: Vec<ColType>,
        pred: Option<CompiledPred>,
        /// The relational-level scan predicate, kept alongside the
        /// compiled one so the feedback harvest can key observed
        /// selectivities by term (see [`PipelineInfo::scan_pred`]).
        rel_pred: Option<Pred>,
    },
    /// Opaque batch subtree of the given arity.
    Input {
        op: BoxedBatchOperator,
        arity: usize,
    },
}

/// Compile-time intermediate form of a pipeline stage. Rewrites operate
/// on this level — positions are plain `usize`s — before kernels are
/// monomorphized. Filters and probes carry their relational-level
/// predicate for the feedback harvest hints.
enum StageIR {
    Filter(CompiledPred, Pred),
    Project(Vec<usize>),
    Probe {
        table: usize,
        keys: Vec<usize>,
        build_ncols: usize,
        join: JoinPred,
    },
}

/// A hash-join build side awaiting lowering; its slot index is its
/// position in the region's build list.
struct BuildIR {
    source: SourceIR,
    stages: Vec<StageIR>,
    keys: Vec<usize>,
    ncols: usize,
}

/// What the fused compiler did to one pipeline, with live counters.
#[derive(Debug)]
pub struct PipelineInfo {
    /// Human-readable shape, e.g. `scan+filter→probe+project`.
    pub label: String,
    /// Plan operators fused into this pipeline (source + stages + build
    /// sink), counted before rewrites merge them.
    pub operators: usize,
    /// Does this pipeline feed a hash-table build?
    pub build: bool,
    /// Execution counters, shared with the running region.
    pub stats: Arc<PipelineStats>,
    /// The relational predicate the pipeline's source scan applies
    /// (original scan predicate plus any absorbed leading filters).
    /// Observed scan selectivity is `stats.source_out / stats.source_rows`.
    pub scan_pred: Option<Pred>,
    /// When the pipeline has exactly one probe stage: its join predicate
    /// and the report index of the build pipeline it probes. Observed
    /// join selectivity is `probe_out / (probe_in × build.stats.rows)`.
    pub probe_join: Option<(JoinPred, usize)>,
}

/// Compile-time report of the whole fused plan: what fused, what fell
/// back, where the engine boundaries are.
#[derive(Debug, Default)]
pub struct FusedReport {
    /// Every fused pipeline, across all regions of the plan.
    pub pipelines: Vec<PipelineInfo>,
    /// Names of plan operators that fell back to the tuple engine.
    pub fallback_ops: Vec<&'static str>,
    /// Adapter hops inserted at engine boundaries.
    pub adapters: usize,
    /// Morsel-parallel gather regions in the plan.
    pub parallel_regions: usize,
    /// Terminal aggregation sinks fused into region output pipelines.
    pub agg_sinks: usize,
}

impl FusedReport {
    /// Number of fused pipelines in the plan.
    pub fn pipelines_fused(&self) -> usize {
        self.pipelines.len()
    }

    /// Harvest selectivity observations from the per-pipeline counters
    /// (meaningful after the plan executed): scan predicates from the
    /// pre-/post-predicate source counts, single-probe joins from the
    /// probe in/out counts against the build pipeline's inserted rows.
    /// Pipelines without harvest hints contribute nothing.
    pub fn observations(&self) -> Vec<volcano_rel::Observation> {
        let mut out = Vec::new();
        for p in &self.pipelines {
            if let Some(pred) = &p.scan_pred {
                volcano_rel::pred_observations(
                    pred,
                    p.stats.source_out(),
                    p.stats.source_rows(),
                    &mut out,
                );
            }
            if let Some((join, build_idx)) = &p.probe_join {
                if let Some(b) = self.pipelines.get(*build_idx) {
                    volcano_rel::join_observations(
                        join,
                        p.stats.probe_out(),
                        b.stats.rows(),
                        p.stats.probe_in(),
                        &mut out,
                    );
                }
            }
        }
        out
    }

    /// Number of non-fusable plan segments (fallback operators).
    pub fn fallback_segments(&self) -> usize {
        self.fallback_ops.len()
    }

    /// Render the report (used by `EXPLAIN ANALYZE`). Timing lines are
    /// meaningful only after the plan has executed.
    pub fn lines(&self) -> Vec<String> {
        let mut out = vec![format!(
            "fused: {} pipeline(s), {} fallback segment(s), {} adapter(s), {} parallel region(s), {} agg sink(s)",
            self.pipelines.len(),
            self.fallback_ops.len(),
            self.adapters,
            self.parallel_regions,
            self.agg_sinks,
        )];
        if !self.fallback_ops.is_empty() {
            out.push(format!("  fallback ops: {}", self.fallback_ops.join(", ")));
        }
        for (i, p) in self.pipelines.iter().enumerate() {
            out.push(format!(
                "  pipeline {i}{}: {} · {} op(s) fused · {} rows · {} batches · {} ns",
                if p.build { " [build]" } else { "" },
                p.label,
                p.operators,
                p.stats.rows(),
                p.stats.batches(),
                p.stats.ns(),
            ));
        }
        out
    }
}

/// A plan compiled for the fused engine.
pub struct CompiledFused {
    /// The root batch operator.
    pub operator: BoxedBatchOperator,
    /// Output attribute ids, in column position order.
    pub schema: Vec<AttrId>,
    /// Morsel scheduling counters of each parallel region (as in
    /// [`crate::compile::CompiledBatch`]).
    pub gathers: Vec<Arc<crate::morsel::MorselStats>>,
    /// What fused, what fell back.
    pub report: FusedReport,
}

/// Compile a plan for the fused engine (the current schema snapshot).
pub fn compile_fused(db: &Database, plan: &RelPlan, cfg: BatchConfig) -> CompiledFused {
    compile_fused_at(db, &db.snapshot(), plan, cfg)
}

/// [`compile_fused`] against a pinned schema snapshot.
pub(crate) fn compile_fused_at(
    db: &Database,
    sch: &SchemaSnapshot,
    plan: &RelPlan,
    cfg: BatchConfig,
) -> CompiledFused {
    compile_fused_with(db, sch, plan, cfg, false)
}

/// Full-control entry point: `serial_gather` degrades every gather node
/// to a serial pass-through (the EXPLAIN ANALYZE path uses this so the
/// per-pipeline counters cover the whole input, not a worker's share).
pub(crate) fn compile_fused_with(
    db: &Database,
    sch: &SchemaSnapshot,
    plan: &RelPlan,
    cfg: BatchConfig,
    serial_gather: bool,
) -> CompiledFused {
    let schema = schema_of_at(sch, plan);
    let mut f = Fuser {
        db,
        sch,
        cfg,
        serial_gather,
        gathers: Vec::new(),
        report: FusedReport::default(),
    };
    let built = f.build_tree(plan);
    if matches!(built, Built::T(_)) {
        // Tuple root: the final coercion below is itself an adapter.
        f.report.adapters += 1;
    }
    let operator = built.into_batch(schema.len(), cfg.batch_size);
    CompiledFused {
        operator,
        schema,
        gathers: f.gathers,
        report: f.report,
    }
}

struct Fuser<'a> {
    db: &'a Database,
    sch: &'a SchemaSnapshot,
    cfg: BatchConfig,
    serial_gather: bool,
    gathers: Vec<Arc<crate::morsel::MorselStats>>,
    report: FusedReport,
}

impl Fuser<'_> {
    /// Compile `plan` into a [`Built`] subtree, fusing the maximal
    /// region rooted at each fusable node.
    fn build_tree(&mut self, plan: &RelPlan) -> Built {
        // Gathers lower to the morsel-parallel executor exactly as in
        // the batch engine; fused stages above or below compose with it
        // through the pipeline source.
        if let RelAlg::Gather(n) = &plan.alg {
            if *n > 1 && !self.serial_gather {
                if let Some(par) = crate::morsel::compile_parallel(self.sch, &plan.inputs[0]) {
                    let op =
                        crate::morsel::ParallelGather::new(Arc::new(par), *n as usize, self.cfg);
                    self.gathers.push(op.stats());
                    self.report.parallel_regions += 1;
                    return Built::B(Box::new(op));
                }
            }
            return self.build_tree(&plan.inputs[0]);
        }
        // Hash aggregates terminate a fused pipeline in an aggregation
        // sink (or run batch-native over a non-fusable child) — they
        // never fall back to the tuple engine.
        match &plan.alg {
            RelAlg::HashAggregate(spec) => {
                return self.build_aggregate(plan, spec, AggMode::Complete)
            }
            RelAlg::PartialHashAggregate(spec, _) => {
                return self.build_aggregate(plan, spec, AggMode::Partial)
            }
            RelAlg::FinalHashAggregate(spec) => {
                return self.build_aggregate(plan, spec, AggMode::Final)
            }
            _ => {}
        }
        let mut builds = Vec::new();
        if let Some((source, stages)) = self.fuse_node(plan, &mut builds) {
            return Built::B(self.lower_region(builds, source, stages, None));
        }
        // Non-fusable root: compile this node on the tuple engine over
        // recursively built children; each batch child costs exactly
        // one adapter at this genuine engine boundary.
        let children: Vec<Built> = plan.inputs.iter().map(|c| self.build_tree(c)).collect();
        self.report.adapters += children.iter().filter(|c| matches!(c, Built::B(_))).count();
        self.report.fallback_ops.push(fallback_name(&plan.alg));
        let tuple_children = children.into_iter().map(Built::into_tuple).collect();
        Built::T(compile_node_at(self.db, self.sch, plan, tuple_children))
    }

    /// Compile a hash aggregate. When the child subtree fuses, the
    /// aggregation becomes the region's terminal sink — the whole
    /// `scan→filter→project→aggregate` chain runs as one loop. When it
    /// does not (a gather, sort, or another aggregate below), the child
    /// compiles as a batch subtree and a batch-native
    /// [`BatchHashAggregate`] runs above it; either way no tuple adapter
    /// is inserted for the aggregate itself.
    fn build_aggregate(&mut self, plan: &RelPlan, spec: &AggSpec, mode: AggMode) -> Built {
        let child = &plan.inputs[0];
        let (group, aggs) = match mode {
            // A final aggregate consumes the partial row layout: group
            // keys lead, each aggregate's partial value follows.
            AggMode::Final => (
                (0..spec.group_by.len()).collect::<Vec<_>>(),
                partial_layout_aggs(spec),
            ),
            _ => compile_agg_spec(&schema_of_at(self.sch, child), spec),
        };
        let mut builds = Vec::new();
        if let Some((source, stages)) = self.fuse_node(child, &mut builds) {
            let sink = AggSink { group, aggs, mode };
            return Built::B(self.lower_region(builds, source, stages, Some(sink)));
        }
        let arity = schema_of_at(self.sch, child).len();
        let built = self.build_tree(child);
        if matches!(built, Built::T(_)) {
            self.report.adapters += 1;
        }
        let input = built.into_batch(arity, self.cfg.batch_size);
        Built::B(Box::new(BatchHashAggregate::new(
            input,
            group,
            aggs,
            mode,
            self.cfg.batch_size,
        )))
    }

    /// Decompose the fusable region rooted at `plan`, mirroring the
    /// morsel lowering: hash-join build sides become [`BuildIR`]s (slot
    /// = push index), the probe chain continues the current pipeline.
    /// `None` means `plan`'s *root* is not fusable — callers other than
    /// [`Fuser::fuse_input`] then fall back. Returns without side
    /// effects in the `None` case.
    fn fuse_node(
        &mut self,
        plan: &RelPlan,
        builds: &mut Vec<BuildIR>,
    ) -> Option<(SourceIR, Vec<StageIR>)> {
        match &plan.alg {
            RelAlg::FileScan(t) => Some((
                SourceIR::Scan {
                    heap: self.sch.table(*t).clone(),
                    col_types: table_col_types(self.sch, *t),
                    pred: None,
                    rel_pred: None,
                },
                Vec::new(),
            )),
            RelAlg::FilterScan(t, pred) => {
                let schema = table_schema(self.sch, *t);
                Some((
                    SourceIR::Scan {
                        heap: self.sch.table(*t).clone(),
                        col_types: table_col_types(self.sch, *t),
                        pred: Some(compile_pred(&schema, pred)),
                        rel_pred: Some(pred.clone()),
                    },
                    Vec::new(),
                ))
            }
            RelAlg::Filter(pred) => {
                let (src, mut stages) = self.fuse_input(&plan.inputs[0], builds);
                let schema = schema_of_at(self.sch, &plan.inputs[0]);
                stages.push(StageIR::Filter(compile_pred(&schema, pred), pred.clone()));
                Some((src, stages))
            }
            RelAlg::ProjectOp(attrs) => {
                let (src, mut stages) = self.fuse_input(&plan.inputs[0], builds);
                let schema = schema_of_at(self.sch, &plan.inputs[0]);
                stages.push(StageIR::Project(
                    attrs.iter().map(|&a| position(&schema, a)).collect(),
                ));
                Some((src, stages))
            }
            RelAlg::HybridHashJoin(p) if !p.pairs().is_empty() => {
                let bschema = schema_of_at(self.sch, &plan.inputs[0]);
                let (bsrc, bstages) = self.fuse_input(&plan.inputs[0], builds);
                let table = builds.len();
                builds.push(BuildIR {
                    source: bsrc,
                    stages: bstages,
                    keys: p
                        .pairs()
                        .iter()
                        .map(|&(la, _)| position(&bschema, la))
                        .collect(),
                    ncols: bschema.len(),
                });
                let pschema = schema_of_at(self.sch, &plan.inputs[1]);
                let (psrc, mut pstages) = self.fuse_input(&plan.inputs[1], builds);
                pstages.push(StageIR::Probe {
                    table,
                    keys: p
                        .pairs()
                        .iter()
                        .map(|&(_, ra)| position(&pschema, ra))
                        .collect(),
                    build_ncols: bschema.len(),
                    join: p.clone(),
                });
                Some((psrc, pstages))
            }
            // Gathers, sorts, aggregates, set ops, other joins: not
            // fusable at the root of a pipeline chain.
            _ => None,
        }
    }

    /// Fuse a pipeline *input*: a fusable subtree continues the chain;
    /// anything else compiles as an opaque batch source — the one
    /// genuine engine boundary below this pipeline.
    fn fuse_input(
        &mut self,
        plan: &RelPlan,
        builds: &mut Vec<BuildIR>,
    ) -> (SourceIR, Vec<StageIR>) {
        if let Some(fused) = self.fuse_node(plan, builds) {
            return fused;
        }
        let arity = schema_of_at(self.sch, plan).len();
        let built = self.build_tree(plan);
        if matches!(built, Built::T(_)) {
            self.report.adapters += 1;
        }
        let op = built.into_batch(arity, self.cfg.batch_size);
        (SourceIR::Input { op, arity }, Vec::new())
    }

    /// Lower a decomposed region to the runtime operator, registering
    /// every pipeline in the report.
    fn lower_region(
        &mut self,
        builds: Vec<BuildIR>,
        source: SourceIR,
        stages: Vec<StageIR>,
        agg: Option<AggSink>,
    ) -> BoxedBatchOperator {
        let table_shapes: Vec<(usize, Vec<usize>)> =
            builds.iter().map(|b| (b.ncols, b.keys.clone())).collect();
        // Build pipelines land in the report at `first + slot`, before
        // the output pipeline — harvest hints use those indices.
        let first = self.report.pipelines.len();
        let build_pipes: Vec<FusedPipeline> = builds
            .into_iter()
            .map(|b| {
                let hints = harvest_hints(&b.source, &b.stages, first);
                let pipe = self.lower_pipeline(b.source, b.stages, true);
                self.set_hints(hints);
                pipe
            })
            .collect();
        let hints = harvest_hints(&source, &stages, first);
        let output = self.lower_pipeline(source, stages, false);
        self.set_hints(hints);
        let mut region = FusedRegion::new(build_pipes, output, table_shapes, self.cfg.batch_size);
        if let Some(sink) = agg {
            let info = self.report.pipelines.last_mut().expect("output pipeline");
            info.label.push('→');
            info.label.push_str(match sink.mode {
                AggMode::Complete => "agg",
                AggMode::Partial => "partial_agg",
                AggMode::Final => "final_agg",
            });
            info.operators += 1;
            self.report.agg_sinks += 1;
            region = region.with_agg(sink);
        }
        Box::new(region)
    }

    /// Lower one pipeline: apply the rewrites (filter absorption, scan
    /// projection pushdown, probe/project fusion), monomorphize the
    /// kernels, and record the pipeline in the report.
    fn lower_pipeline(
        &mut self,
        source: SourceIR,
        mut stages: Vec<StageIR>,
        build: bool,
    ) -> FusedPipeline {
        // Plan operators this pipeline covers, before rewrites merge
        // them: the source, each stage, and the build sink if any.
        let operators = 1 + stages.len() + usize::from(build);
        let mut absorbed_filters = false;
        let (src, mut width) = match source {
            SourceIR::Scan {
                heap,
                mut col_types,
                mut pred,
                rel_pred: _,
            } => {
                // Rewrite 1: absorb leading filters into the scan
                // predicate (conjunct order is preserved, so the
                // narrowing matches the batch engine exactly).
                let absorb = stages
                    .iter()
                    .take_while(|s| matches!(s, StageIR::Filter(..)))
                    .count();
                for stage in stages.drain(..absorb) {
                    let StageIR::Filter(cp, _) = stage else {
                        unreachable!()
                    };
                    absorbed_filters = true;
                    let mut terms = pred.map(|p| p.terms().to_vec()).unwrap_or_default();
                    terms.extend(cp.terms().iter().cloned());
                    pred = Some(CompiledPred::new(terms));
                }
                // Rewrite 2: when a projection is the first non-filter
                // stage, decode only the columns the pipeline touches.
                let keep = prune_scan(&mut col_types, &mut pred, &mut stages);
                let w = col_types.len();
                (
                    FusedSource::Scan(FusedScan::new(
                        heap,
                        col_types,
                        keep,
                        pred.map(|p| FusedPred::compile(&p)),
                    )),
                    w,
                )
            }
            SourceIR::Input { op, arity } => (FusedSource::Input(op), arity),
        };
        // Lower the remaining stages, fusing `probe → project` pairs
        // into the probe's output map (rewrite 3).
        let mut lowered: Vec<FusedStage> = Vec::new();
        let mut labels: Vec<&'static str> = Vec::new();
        let mut i = 0;
        while i < stages.len() {
            match &stages[i] {
                StageIR::Filter(cp, _) => {
                    lowered.push(FusedStage::Filter(FusedPred::compile(cp)));
                    labels.push("filter");
                }
                StageIR::Project(cols) => {
                    width = cols.len();
                    lowered.push(FusedStage::Project(cols.clone()));
                    labels.push("project");
                }
                StageIR::Probe {
                    table,
                    keys,
                    build_ncols,
                    join: _,
                } => {
                    let (out, label) = match stages.get(i + 1) {
                        Some(StageIR::Project(cols)) => {
                            let map = cols
                                .iter()
                                .map(|&c| {
                                    if c < *build_ncols {
                                        ProbeCol::Build(c)
                                    } else {
                                        ProbeCol::Probe(c - build_ncols)
                                    }
                                })
                                .collect::<Vec<_>>();
                            width = map.len();
                            i += 1; // consume the project
                            (map, "probe+project")
                        }
                        _ => {
                            let map = (0..*build_ncols)
                                .map(ProbeCol::Build)
                                .chain((0..width).map(ProbeCol::Probe))
                                .collect::<Vec<_>>();
                            width = map.len();
                            (map, "probe")
                        }
                    };
                    lowered.push(FusedStage::Probe {
                        table: *table,
                        keys: keys.clone(),
                        out,
                    });
                    labels.push(label);
                }
            }
            i += 1;
        }
        let _ = width;
        let mut label = String::new();
        label.push_str(match &src {
            FusedSource::Scan(_) if absorbed_filters => "scan+filter",
            FusedSource::Scan(_) => "scan",
            FusedSource::Input(op) => op.name(),
        });
        for l in &labels {
            label.push('→');
            label.push_str(l);
        }
        if build {
            label.push_str("→build");
        }
        let stats = Arc::new(PipelineStats::default());
        self.report.pipelines.push(PipelineInfo {
            label,
            operators,
            build,
            stats: stats.clone(),
            scan_pred: None,
            probe_join: None,
        });
        FusedPipeline {
            source: src,
            stages: lowered,
            stats,
        }
    }

    /// Attach harvest hints to the pipeline most recently registered by
    /// [`Fuser::lower_pipeline`].
    fn set_hints(&mut self, hints: (Option<Pred>, Option<(JoinPred, usize)>)) {
        let info = self.report.pipelines.last_mut().expect("pipeline pushed");
        info.scan_pred = hints.0;
        info.probe_join = hints.1;
    }
}

/// Compute a pipeline's feedback-harvest hints from its compile-time IR,
/// before lowering consumes it. Mirrors the filter-absorption rule of
/// [`Fuser::lower_pipeline`]: every leading filter of a scan-sourced
/// pipeline merges into the scan predicate, so the observed
/// `source_out / source_rows` ratio covers the original scan predicate
/// plus those filters. The probe hint is set only when the pipeline has
/// exactly one probe stage — with several, the shared in/out counters
/// would conflate the joins. `first` is the report index of the region's
/// first build pipeline; table slot `t` lands at `first + t`.
fn harvest_hints(
    source: &SourceIR,
    stages: &[StageIR],
    first: usize,
) -> (Option<Pred>, Option<(JoinPred, usize)>) {
    let scan_pred = match source {
        SourceIR::Scan { rel_pred, .. } => {
            let mut terms = rel_pred
                .as_ref()
                .map(|p| p.terms().to_vec())
                .unwrap_or_default();
            for s in stages {
                let StageIR::Filter(_, p) = s else { break };
                terms.extend(p.terms().iter().cloned());
            }
            if terms.is_empty() {
                None
            } else {
                Some(Pred::conj(terms))
            }
        }
        SourceIR::Input { .. } => None,
    };
    let mut probes = stages.iter().filter_map(|s| match s {
        StageIR::Probe { table, join, .. } => Some((join.clone(), first + table)),
        _ => None,
    });
    let probe_join = match (probes.next(), probes.next()) {
        (Some(j), None) => Some(j),
        _ => None,
    };
    (scan_pred, probe_join)
}

/// Scan projection pushdown: when every stage before the first
/// projection is a filter, restrict the scan to the union of the
/// columns used by the scan predicate, those filters, and the
/// projection — remapping all their positions into the pruned space —
/// and return the full-width keep mask for the projected decoder.
/// `None` leaves the scan untouched (no projection to push down, a
/// probe intervenes, or nothing prunable).
fn prune_scan(
    col_types: &mut Vec<ColType>,
    pred: &mut Option<CompiledPred>,
    stages: &mut Vec<StageIR>,
) -> Option<Vec<bool>> {
    let first_non_filter = stages
        .iter()
        .position(|s| !matches!(s, StageIR::Filter(..)))
        .unwrap_or(stages.len());
    let Some(StageIR::Project(project)) = stages.get(first_non_filter) else {
        return None;
    };
    let n = col_types.len();
    let mut keep = vec![false; n];
    if let Some(p) = pred {
        for &(pos, _, _) in p.terms() {
            keep[pos] = true;
        }
    }
    for s in &stages[..first_non_filter] {
        let StageIR::Filter(cp, _) = s else {
            unreachable!()
        };
        for &(pos, _, _) in cp.terms() {
            keep[pos] = true;
        }
    }
    for &c in project {
        keep[c] = true;
    }
    let kept = keep.iter().filter(|&&k| k).count();
    if kept == n {
        return None;
    }
    // Old position → pruned position.
    let mut remap = vec![usize::MAX; n];
    let mut next = 0;
    for (old, &k) in keep.iter().enumerate() {
        if k {
            remap[old] = next;
            next += 1;
        }
    }
    *col_types = col_types
        .iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(&t, _)| t)
        .collect();
    if let Some(p) = pred.take() {
        *pred = Some(CompiledPred::new(
            p.terms()
                .iter()
                .map(|&(pos, op, ref lit)| (remap[pos], op, lit.clone()))
                .collect(),
        ));
    }
    for s in stages[..first_non_filter].iter_mut() {
        let StageIR::Filter(cp, _) = s else {
            unreachable!()
        };
        *cp = CompiledPred::new(
            cp.terms()
                .iter()
                .map(|&(pos, op, ref lit)| (remap[pos], op, lit.clone()))
                .collect(),
        );
    }
    let StageIR::Project(project) = &mut stages[first_non_filter] else {
        unreachable!()
    };
    for c in project.iter_mut() {
        *c = remap[*c];
    }
    // An identity projection over the pruned scan is a no-op: the scan
    // now *produces* the projected schema.
    if project.len() == kept && project.iter().enumerate().all(|(i, &c)| i == c) {
        stages.remove(first_non_filter);
    }
    Some(keep)
}

/// Display name of a plan operator the fused engine does not fuse.
fn fallback_name(alg: &RelAlg) -> &'static str {
    match alg {
        RelAlg::FileScan(_) => "file_scan",
        RelAlg::IndexScan(..) => "index_scan",
        RelAlg::FilterScan(..) => "filter_scan",
        RelAlg::Filter(_) => "filter",
        RelAlg::ProjectOp(_) => "project",
        RelAlg::Gather(_) => "gather",
        RelAlg::Sort(_) => "sort",
        RelAlg::MergeJoin(_) => "merge_join",
        RelAlg::HybridHashJoin(_) => "cross_hash_join",
        RelAlg::MultiWayHashJoin { .. } => "multiway_hash_join",
        RelAlg::NestedLoops(_) => "nested_loops",
        RelAlg::HashUnion => "hash_union",
        RelAlg::HashIntersect => "hash_intersect",
        RelAlg::HashDifference => "hash_difference",
        RelAlg::MergeUnion => "merge_union",
        RelAlg::MergeIntersect => "merge_intersect",
        RelAlg::MergeDifference => "merge_difference",
        RelAlg::HashAggregate(_) => "hash_aggregate",
        RelAlg::StreamAggregate(_) => "stream_aggregate",
        RelAlg::PartialHashAggregate(..) => "partial_hash_aggregate",
        RelAlg::FinalHashAggregate(_) => "final_hash_aggregate",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_rel::{CmpOp, Value};

    fn int_types(n: usize) -> Vec<ColType> {
        vec![ColType::Int; n]
    }

    /// Placeholder relational predicate for stage IR under test —
    /// `prune_scan` only looks at the compiled positions.
    fn rel_true() -> Pred {
        Pred::conj(Vec::new())
    }

    #[test]
    fn prune_keeps_pred_filter_and_project_columns() {
        // Table of 6 columns; scan pred on 0, filter on 2, project 4.
        let mut types = int_types(6);
        let mut pred = Some(CompiledPred::new(vec![(0, CmpOp::Gt, Value::Int(1))]));
        let mut stages = vec![
            StageIR::Filter(
                CompiledPred::new(vec![(2, CmpOp::Lt, Value::Int(9))]),
                rel_true(),
            ),
            StageIR::Project(vec![4]),
        ];
        let keep = prune_scan(&mut types, &mut pred, &mut stages).expect("prunable");
        assert_eq!(keep, vec![true, false, true, false, true, false]);
        assert_eq!(types.len(), 3);
        assert_eq!(
            pred.as_ref().unwrap().terms(),
            &[(0, CmpOp::Gt, Value::Int(1))]
        );
        let StageIR::Filter(f, _) = &stages[0] else {
            panic!("filter survives")
        };
        assert_eq!(f.terms(), &[(1, CmpOp::Lt, Value::Int(9))]);
        let StageIR::Project(p) = &stages[1] else {
            panic!("project survives")
        };
        assert_eq!(p, &[2]);
    }

    #[test]
    fn prune_drops_identity_projection() {
        // Project [0, 2] over 4 columns, no predicates: the pruned scan
        // produces exactly the projected schema, so the stage vanishes.
        let mut types = int_types(4);
        let mut pred = None;
        let mut stages = vec![StageIR::Project(vec![0, 2])];
        let keep = prune_scan(&mut types, &mut pred, &mut stages).expect("prunable");
        assert_eq!(keep, vec![true, false, true, false]);
        assert_eq!(types.len(), 2);
        assert!(stages.is_empty(), "identity projection dropped");
    }

    #[test]
    fn prune_preserves_permuting_projection() {
        let mut types = int_types(4);
        let mut pred = None;
        let mut stages = vec![StageIR::Project(vec![3, 1])];
        prune_scan(&mut types, &mut pred, &mut stages).expect("prunable");
        let StageIR::Project(p) = &stages[0] else {
            panic!("permutation survives")
        };
        assert_eq!(p, &[1, 0], "positions remapped into pruned space");
    }

    #[test]
    fn prune_bails_without_projection_or_with_probe_first() {
        let mut types = int_types(3);
        let mut pred = None;
        let mut stages = vec![StageIR::Filter(
            CompiledPred::new(vec![(0, CmpOp::Eq, Value::Int(1))]),
            rel_true(),
        )];
        assert!(prune_scan(&mut types, &mut pred, &mut stages).is_none());
        let mut stages = vec![
            StageIR::Probe {
                table: 0,
                keys: vec![0],
                build_ncols: 2,
                join: JoinPred::eq(AttrId(0), AttrId(2)),
            },
            StageIR::Project(vec![0]),
        ];
        assert!(prune_scan(&mut types, &mut pred, &mut stages).is_none());
        assert_eq!(types.len(), 3, "untouched on bail");
    }

    #[test]
    fn prune_bails_when_everything_is_needed() {
        let mut types = int_types(2);
        let mut pred = Some(CompiledPred::new(vec![(1, CmpOp::Ne, Value::Int(0))]));
        let mut stages = vec![StageIR::Project(vec![0, 1])];
        assert!(prune_scan(&mut types, &mut pred, &mut stages).is_none());
    }
}
