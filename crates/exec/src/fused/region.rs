//! The fused-pipeline runtime: one [`FusedRegion`] operator executes a
//! whole fusable plan segment as a handful of tight loops.
//!
//! A region holds *build pipelines* (each ending in a serial hash-table
//! build, mirroring [`crate::ops::BatchHashJoin`]'s build phase) and one
//! *output pipeline*. Each pipeline is a source — a projected page scan
//! or an opaque batch subtree — followed by a chain of [`FusedStage`]s
//! applied batch-at-a-time with plain enum dispatch: there is no
//! `next_batch` virtual call and no adapter hop between fused operators,
//! and the scan decodes only the columns the pipeline actually touches
//! (via [`decode_record_projected`]).
//!
//! Semantics are bit-compatible with the batch engine: predicate
//! narrowing matches [`crate::kernels::apply_pred`], and probe output is
//! build columns ++ probe columns in probe order with per-key
//! build-insertion order, exactly as the serial hash joins document.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use volcano_core::fxhash::FxHashMap;
use volcano_rel::catalog::ColType;
use volcano_rel::Value;
use volcano_store::record::{decode_record_fields, decode_record_projected};
use volcano_store::{HeapFile, PageId};

use crate::batch::{Batch, BatchOperator, BoxedBatchOperator, Column};
use crate::fused::pred::FusedPred;
use crate::kernels::agg::{AggMode, CompiledAgg, GroupScratch, GroupTable};
use crate::kernels::hash_join_keys;

/// A terminal aggregation sink: instead of streaming rows out, the
/// output pipeline folds them into a [`GroupTable`] inside the fused
/// loop — `scan→filter→project→aggregate` runs as one loop with zero
/// intermediate operator dispatch — and the region then streams the
/// group results.
pub(crate) struct AggSink {
    /// Group-by column positions in the pipeline's row shape (for the
    /// `Final` phase these are the leading partial-layout columns).
    pub(crate) group: Vec<usize>,
    /// The aggregates, resolved to input column positions.
    pub(crate) aggs: Vec<CompiledAgg>,
    /// Phase: one-shot, per-worker partial, or partial-merging final.
    pub(crate) mode: AggMode,
}

/// Counters of one fused pipeline, shared with the compile-time report
/// so `EXPLAIN ANALYZE` can read them after the region has executed.
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Rows the pipeline delivered to its sink.
    rows: AtomicU64,
    /// Source batches processed.
    batches: AtomicU64,
    /// Wall nanoseconds inside the pipeline's loop.
    ns: AtomicU64,
    /// Physical rows the source scan decoded, before its predicate.
    source_rows: AtomicU64,
    /// Rows that survived the scan predicate (equals [`Self::source_rows`]
    /// for an unpredicated scan).
    source_out: AtomicU64,
    /// Rows that entered a probe stage.
    probe_in: AtomicU64,
    /// Join pairs a probe stage produced.
    probe_out: AtomicU64,
}

impl PipelineStats {
    /// Rows delivered to the pipeline's sink.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Source batches processed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Wall nanoseconds spent inside the pipeline.
    pub fn ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Physical rows the source scan decoded, before its predicate.
    pub fn source_rows(&self) -> u64 {
        self.source_rows.load(Ordering::Relaxed)
    }

    /// Rows that survived the scan predicate.
    pub fn source_out(&self) -> u64 {
        self.source_out.load(Ordering::Relaxed)
    }

    /// Rows that entered a probe stage.
    pub fn probe_in(&self) -> u64 {
        self.probe_in.load(Ordering::Relaxed)
    }

    /// Join pairs a probe stage produced.
    pub fn probe_out(&self) -> u64 {
        self.probe_out.load(Ordering::Relaxed)
    }
}

/// A page scan that decodes only the kept columns, straight from pinned
/// page memory (no staging copy of the record bytes).
pub(crate) struct FusedScan {
    heap: Arc<HeapFile>,
    /// Types of the columns the scan *produces* (post-pruning).
    col_types: Vec<ColType>,
    /// Full-width keep mask; `None` decodes every column.
    keep: Option<Vec<bool>>,
    /// All produced columns are `Int`: rows take the monomorphized
    /// integer decode loop (no `Field` staging, no per-field dispatch).
    all_int: bool,
    /// Scan-level predicate, positions in the produced (pruned) space.
    pred: Option<FusedPred>,
    pages: Vec<PageId>,
    page_idx: usize,
    scratch: Vec<u32>,
    pages_read: u64,
    rows_scanned: u64,
}

impl FusedScan {
    pub(crate) fn new(
        heap: Arc<HeapFile>,
        col_types: Vec<ColType>,
        keep: Option<Vec<bool>>,
        pred: Option<FusedPred>,
    ) -> Self {
        let all_int = col_types.iter().all(|t| matches!(t, ColType::Int));
        FusedScan {
            heap,
            col_types,
            keep,
            all_int,
            pred,
            pages: Vec::new(),
            page_idx: 0,
            scratch: Vec::new(),
            pages_read: 0,
            rows_scanned: 0,
        }
    }

    fn open(&mut self) {
        self.pages = self.heap.pages();
        self.page_idx = 0;
    }

    /// Decode whole pages into `out` until at least `batch_size` rows
    /// are staged, and apply the scan predicate; `false` when the heap
    /// is exhausted. The page is the atomic decode unit — it stays
    /// pinned for exactly one pass — so a batch may exceed `batch_size`
    /// by up to one page of rows. `stats` receives the pre-/post-
    /// predicate row counts the feedback harvest reads.
    fn fill(&mut self, out: &mut Batch, batch_size: usize, stats: &PipelineStats) -> bool {
        out.clear();
        if out.columns.len() != self.col_types.len() {
            *out = Batch::for_types(&self.col_types);
        }
        let mut rows = 0usize;
        while rows < batch_size && self.page_idx < self.pages.len() {
            let page = self.pages[self.page_idx];
            self.page_idx += 1;
            self.pages_read += 1;
            let cols = &mut out.columns;
            let keep = self.keep.as_deref();
            let all_int = self.all_int;
            self.heap.for_page_records(page, |bytes| {
                if all_int && decode_int_row(bytes, keep, cols) {
                    rows += 1;
                    return;
                }
                let mut col = 0usize;
                match keep {
                    Some(mask) => decode_record_projected(bytes, mask, |f| {
                        cols[col].push_field(f);
                        col += 1;
                    }),
                    None => decode_record_fields(bytes, |f| {
                        cols[col].push_field(f);
                        col += 1;
                    }),
                }
                .expect("stored rows are well-formed");
                debug_assert_eq!(col, cols.len());
                rows += 1;
            });
        }
        if rows == 0 {
            return false;
        }
        self.rows_scanned += rows as u64;
        out.set_physical_rows(rows);
        stats.source_rows.fetch_add(rows as u64, Ordering::Relaxed);
        if let Some(pred) = &self.pred {
            pred.apply(out, &mut self.scratch);
        }
        stats
            .source_out
            .fetch_add(out.live_rows() as u64, Ordering::Relaxed);
        true
    }

    fn close(&mut self) {
        self.pages.clear();
    }
}

/// Monomorphized decode of one record whose kept fields are all
/// `Int`-typed: bytes go straight into the typed column vectors — no
/// `Field` staging, no per-field closure dispatch. Returns `false`
/// (with any partial pushes rolled back) when the record holds a
/// non-`{Int, NULL}` field among those *kept* or does not line up with
/// the columns; unkept fields of any type are skipped by payload
/// width. The caller decodes rejected records generically.
fn decode_int_row(bytes: &[u8], keep: Option<&[bool]>, cols: &mut [Column]) -> bool {
    let base = match cols.first() {
        Some(c) => c.len(),
        None => return false,
    };
    if decode_int_row_inner(bytes, keep, cols) {
        return true;
    }
    for c in cols.iter_mut() {
        c.truncate(base);
    }
    false
}

fn decode_int_row_inner(bytes: &[u8], keep: Option<&[bool]>, cols: &mut [Column]) -> bool {
    if bytes.len() < 2 {
        return false;
    }
    let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    // Fields past the last kept position are never walked, mirroring
    // `decode_record_projected`.
    let last = match keep {
        Some(mask) => match mask.iter().rposition(|&k| k) {
            Some(l) => l,
            None => return false,
        },
        None => n.saturating_sub(1),
    };
    let mut p = 2usize;
    let mut col = 0usize;
    for pos in 0..n.min(last + 1) {
        let Some(&tag) = bytes.get(p) else {
            return false;
        };
        p += 1;
        let kept = keep.is_none_or(|m| m.get(pos).copied().unwrap_or(false));
        match tag {
            2 => {
                let Some(raw) = bytes.get(p..p + 8) else {
                    return false;
                };
                p += 8;
                if kept {
                    let Some(Column::Int { data, valid }) = cols.get_mut(col) else {
                        return false;
                    };
                    data.push(i64::from_le_bytes(raw.try_into().unwrap()));
                    valid.push(true);
                    col += 1;
                }
            }
            0 => {
                if kept {
                    let Some(c @ Column::Int { .. }) = cols.get_mut(col) else {
                        return false;
                    };
                    c.push_null();
                    col += 1;
                }
            }
            1 if !kept => p += 1,
            3 if !kept => p += 8,
            4 if !kept => {
                let Some(raw) = bytes.get(p..p + 4) else {
                    return false;
                };
                let len = u32::from_le_bytes(raw.try_into().unwrap()) as usize;
                p += 4;
                if bytes.len() < p + len {
                    return false;
                }
                p += len;
            }
            _ => return false,
        }
    }
    col == cols.len()
}

/// A pipeline's input.
pub(crate) enum FusedSource {
    /// Projected page scan.
    Scan(FusedScan),
    /// Opaque batch subtree (a non-fusable segment feeding this
    /// pipeline — the single genuine engine boundary below it).
    Input(BoxedBatchOperator),
}

/// Where a probe output column comes from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ProbeCol {
    /// Column `i` of the build table.
    Build(usize),
    /// Column `j` of the probe-side batch.
    Probe(usize),
}

/// One fused step, applied to the pipeline's current batch in place.
pub(crate) enum FusedStage {
    /// Narrow the selection vector with monomorphized kernels.
    Filter(FusedPred),
    /// Gather a subset/permutation of columns.
    Project(Vec<usize>),
    /// Probe a built hash table; `out` maps output columns to their
    /// side, so a projection above the probe gathers nothing extra.
    Probe {
        table: usize,
        keys: Vec<usize>,
        out: Vec<ProbeCol>,
    },
}

/// One fused pipeline: source and stage chain. Its sink is positional —
/// a pipeline in [`FusedRegion::builds`] feeds the hash table of its own
/// slot index, the output pipeline streams the region's result.
pub(crate) struct FusedPipeline {
    pub(crate) source: FusedSource,
    pub(crate) stages: Vec<FusedStage>,
    pub(crate) stats: Arc<PipelineStats>,
}

/// Sentinel for "no row" in [`IntIndex`] slot heads and chain links.
const NO_ROW: u32 = u32::MAX;

/// Open-addressed hash index monomorphized for a single `Int` join key:
/// slots hold exact `i64` keys (no hash-then-verify pass), and rows
/// sharing a key chain through a flat `next` array in build-insertion
/// order. This is the fused engine's fast path for the overwhelmingly
/// common equi-join shape; any other key shape uses the generic
/// value-hash index.
struct IntIndex {
    /// Power-of-two slot array; `head == NO_ROW` marks a free slot.
    slots: Vec<IntSlot>,
    mask: u64,
    /// Occupied slots (distinct keys), for the load-factor check.
    keys_len: usize,
    /// `next[row]`: the next build row with the same key, or [`NO_ROW`].
    next: Vec<u32>,
}

#[derive(Clone, Copy)]
struct IntSlot {
    key: i64,
    /// First build row with this key ([`NO_ROW`] = slot free).
    head: u32,
    /// Last build row with this key (chain append point).
    tail: u32,
}

const FREE: IntSlot = IntSlot {
    key: 0,
    head: NO_ROW,
    tail: NO_ROW,
};

/// Fibonacci spread of the key over the full word, folded so the low
/// bits (the slot mask) see the high-entropy half.
#[inline]
fn spread(key: i64) -> u64 {
    let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

impl IntIndex {
    fn new() -> Self {
        IntIndex {
            slots: vec![FREE; 16],
            mask: 15,
            keys_len: 0,
            next: Vec::new(),
        }
    }

    /// Append build row `row` (must equal the insertion count so far)
    /// under `key`, preserving per-key insertion order.
    fn insert(&mut self, key: i64, row: u32) {
        debug_assert_eq!(row as usize, self.next.len());
        self.next.push(NO_ROW);
        if (self.keys_len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = (spread(key) & self.mask) as usize;
        loop {
            let s = &mut self.slots[i];
            if s.head == NO_ROW {
                *s = IntSlot {
                    key,
                    head: row,
                    tail: row,
                };
                self.keys_len += 1;
                return;
            }
            if s.key == key {
                self.next[s.tail as usize] = row;
                s.tail = row;
                return;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// First build row with `key`, or [`NO_ROW`]; follow [`Self::next`]
    /// for the rest of the chain.
    #[inline]
    fn head(&self, key: i64) -> u32 {
        let mut i = (spread(key) & self.mask) as usize;
        loop {
            let s = &self.slots[i];
            if s.head == NO_ROW {
                return NO_ROW;
            }
            if s.key == key {
                return s.head;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![FREE; 0]);
        self.slots = vec![FREE; old.len() * 2];
        self.mask = (self.slots.len() - 1) as u64;
        for s in old {
            if s.head == NO_ROW {
                continue;
            }
            let mut i = (spread(s.key) & self.mask) as usize;
            while self.slots[i].head != NO_ROW {
                i = (i + 1) & self.mask as usize;
            }
            self.slots[i] = s;
        }
    }
}

/// The key index of a [`FusedTable`].
enum TableIndex {
    /// Value-hash buckets with per-pair key verification — correct for
    /// every key shape (multi-column, demoted, cross-typed).
    Generic(FxHashMap<u64, Vec<u32>>),
    /// Monomorphized single-`Int`-key index; chosen when every inserted
    /// key column arrives as a typed `Int` column.
    Int(IntIndex),
}

/// A serial hash table built by one pipeline and probed by later ones.
/// Build/probe semantics mirror [`crate::ops::BatchHashJoin`]: NULL keys
/// never enter or match, equality is `Value` equality, bucket order is
/// build-insertion order.
pub(crate) struct FusedTable {
    cols: Vec<Column>,
    keys: Vec<usize>,
    index: TableIndex,
    rows: u32,
}

impl FusedTable {
    fn new(ncols: usize, keys: Vec<usize>) -> Self {
        let index = if keys.len() == 1 {
            TableIndex::Int(IntIndex::new())
        } else {
            TableIndex::Generic(FxHashMap::default())
        };
        FusedTable {
            cols: (0..ncols).map(|_| Column::any()).collect(),
            keys,
            index,
            rows: 0,
        }
    }

    /// Append the non-NULL-keyed live rows of `batch`, preserving order.
    fn insert_batch(&mut self, batch: &Batch, s: &mut Scratch) -> u64 {
        if batch.live_rows() == 0 {
            return 0;
        }
        if matches!(self.index, TableIndex::Int(_))
            && !matches!(batch.columns[self.keys[0]], Column::Int { .. })
        {
            // The key column stopped arriving typed (demoted data):
            // re-index what was built so far under value hashing.
            self.migrate_to_generic();
        }
        match &mut self.index {
            TableIndex::Int(idx) => {
                let Column::Int { data, valid } = &batch.columns[self.keys[0]] else {
                    unreachable!("migrated above")
                };
                s.keep.clear();
                let mut row = self.rows;
                for &i in batch.live_indices(&mut s.sel) {
                    if valid[i as usize] {
                        idx.insert(data[i as usize], row);
                        s.keep.push(i);
                        row += 1;
                    }
                }
            }
            TableIndex::Generic(buckets) => {
                hash_join_keys(batch, &self.keys, &mut s.hashes, &mut s.sel);
                s.live.clear();
                s.live.extend_from_slice(batch.live_indices(&mut s.sel));
                s.keep.clear();
                for (pos, h) in s.hashes.iter().enumerate() {
                    if let Some(h) = *h {
                        s.keep.push(s.live[pos]);
                        buckets
                            .entry(h)
                            .or_default()
                            .push(self.rows + s.keep.len() as u32 - 1);
                    }
                }
            }
        }
        for (dst, src) in self.cols.iter_mut().zip(&batch.columns) {
            dst.gather_from(src, Some(&s.keep));
        }
        self.rows += s.keep.len() as u32;
        s.keep.len() as u64
    }

    /// Rebuild the index under value hashing (every stored row already
    /// has a non-NULL key, in insertion order, so re-inserting rows
    /// `0..self.rows` reproduces the generic index exactly).
    fn migrate_to_generic(&mut self) {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for row in 0..self.rows {
            if let Some(h) =
                crate::kernels::hash::fold_value(0, &self.cols[self.keys[0]], row as usize)
            {
                buckets.entry(h).or_default().push(row);
            }
        }
        self.index = TableIndex::Generic(buckets);
    }

    /// Does build row `b` share exactly the key of probe row `p`?
    fn keys_match(&self, b: u32, probe: &Batch, probe_keys: &[usize], p: u32) -> bool {
        self.keys
            .iter()
            .zip(probe_keys)
            .all(|(&bk, &pk)| self.cols[bk].rows_eq(b as usize, &probe.columns[pk], p as usize))
    }
}

/// Reusable scratch space shared by every pipeline of a region.
#[derive(Default)]
struct Scratch {
    sel: Vec<u32>,
    live: Vec<u32>,
    keep: Vec<u32>,
    hashes: Vec<Option<u64>>,
    pairs_build: Vec<u32>,
    pairs_probe: Vec<u32>,
}

/// Run the stage chain over `cur` in place (`tmp` is swap space).
/// `stats` collects the probe in/out row counts the feedback harvest
/// reads (meaningful when the pipeline has exactly one probe stage).
fn run_stages(
    stages: &[FusedStage],
    tables: &[FusedTable],
    cur: &mut Batch,
    tmp: &mut Batch,
    s: &mut Scratch,
    stats: &PipelineStats,
) {
    for stage in stages {
        match stage {
            FusedStage::Filter(pred) => {
                pred.apply(cur, &mut s.sel);
            }
            FusedStage::Project(cols) => {
                tmp.reset_columns(cols.len());
                let sel = cur.sel.as_deref();
                for (o, &c) in cols.iter().enumerate() {
                    tmp.columns[o].gather_from(&cur.columns[c], sel);
                }
                tmp.set_physical_rows(cur.live_rows());
                std::mem::swap(cur, tmp);
            }
            FusedStage::Probe { table, keys, out } => {
                let t = &tables[*table];
                stats
                    .probe_in
                    .fetch_add(cur.live_rows() as u64, Ordering::Relaxed);
                s.pairs_build.clear();
                s.pairs_probe.clear();
                match &t.index {
                    // Monomorphized probe: exact i64 lookup, no staged
                    // hash vector, no per-pair key verification.
                    TableIndex::Int(idx) => match &cur.columns[keys[0]] {
                        Column::Int { data, valid } => {
                            for &i in cur.live_indices(&mut s.sel) {
                                let j = i as usize;
                                if !valid[j] {
                                    continue;
                                }
                                let mut b = idx.head(data[j]);
                                while b != NO_ROW {
                                    s.pairs_build.push(b);
                                    s.pairs_probe.push(i);
                                    b = idx.next[b as usize];
                                }
                            }
                        }
                        // A demoted probe column may still hold Int
                        // values; anything else can never equal an Int
                        // build key.
                        col @ Column::Any(_) => {
                            for &i in cur.live_indices(&mut s.sel) {
                                let Value::Int(k) = col.value_at(i as usize) else {
                                    continue;
                                };
                                let mut b = idx.head(k);
                                while b != NO_ROW {
                                    s.pairs_build.push(b);
                                    s.pairs_probe.push(i);
                                    b = idx.next[b as usize];
                                }
                            }
                        }
                        _ => {}
                    },
                    TableIndex::Generic(buckets) => {
                        hash_join_keys(cur, keys, &mut s.hashes, &mut s.sel);
                        s.live.clear();
                        s.live.extend_from_slice(cur.live_indices(&mut s.sel));
                        for (pos, h) in s.hashes.iter().enumerate() {
                            let Some(h) = *h else { continue };
                            let phys = s.live[pos];
                            let Some(bucket) = buckets.get(&h) else {
                                continue;
                            };
                            for &b in bucket {
                                if t.keys_match(b, cur, keys, phys) {
                                    s.pairs_build.push(b);
                                    s.pairs_probe.push(phys);
                                }
                            }
                        }
                    }
                }
                stats
                    .probe_out
                    .fetch_add(s.pairs_build.len() as u64, Ordering::Relaxed);
                tmp.reset_columns(out.len());
                for (o, pc) in out.iter().enumerate() {
                    match pc {
                        ProbeCol::Build(i) => {
                            tmp.columns[o].gather_from(&t.cols[*i], Some(&s.pairs_build))
                        }
                        ProbeCol::Probe(j) => {
                            tmp.columns[o].gather_from(&cur.columns[*j], Some(&s.pairs_probe))
                        }
                    }
                }
                tmp.set_physical_rows(s.pairs_build.len());
                std::mem::swap(cur, tmp);
            }
        }
    }
}

/// The fused-region operator: executes its build pipelines on `open`,
/// then streams the output pipeline batch by batch.
pub struct FusedRegion {
    /// Build pipelines, in table-slot order (a pipeline may probe any
    /// earlier slot, never a later one).
    builds: Vec<FusedPipeline>,
    output: FusedPipeline,
    /// Table shapes: `(ncols, keys)` per build slot.
    table_shapes: Vec<(usize, Vec<usize>)>,
    tables: Vec<FusedTable>,
    batch_size: usize,
    tmp: Batch,
    scratch: Scratch,
    opened: bool,
    build_rows: u64,
    rows_out: u64,
    batches_out: u64,
    /// Terminal aggregation sink, if the region ends in an aggregate.
    agg: Option<AggSink>,
    agg_scratch: GroupScratch,
    /// Group table filled on the first `next_batch` of an agg region.
    agg_table: Option<GroupTable>,
    /// Groups already streamed out of [`Self::agg_table`].
    agg_emitted: usize,
    /// Rows the output pipeline delivered to the aggregation sink.
    agg_rows_in: u64,
    /// Partial groups merged (Final-phase sink only).
    agg_groups_in: u64,
}

impl FusedRegion {
    pub(crate) fn new(
        builds: Vec<FusedPipeline>,
        output: FusedPipeline,
        table_shapes: Vec<(usize, Vec<usize>)>,
        batch_size: usize,
    ) -> Self {
        debug_assert_eq!(builds.len(), table_shapes.len());
        FusedRegion {
            builds,
            output,
            table_shapes,
            tables: Vec::new(),
            batch_size: batch_size.max(1),
            tmp: Batch::default(),
            scratch: Scratch::default(),
            opened: false,
            build_rows: 0,
            rows_out: 0,
            batches_out: 0,
            agg: None,
            agg_scratch: GroupScratch::default(),
            agg_table: None,
            agg_emitted: 0,
            agg_rows_in: 0,
            agg_groups_in: 0,
        }
    }

    /// Terminate the region's output pipeline in an aggregation sink.
    pub(crate) fn with_agg(mut self, sink: AggSink) -> Self {
        self.agg = Some(sink);
        self
    }

    /// Number of pipelines (builds + output).
    pub fn pipeline_count(&self) -> usize {
        self.builds.len() + 1
    }

    /// Drain the output pipeline into the sink's group table (the
    /// aggregation is a full-input barrier, like the hash-table builds).
    fn drain_into_groups(&mut self) {
        let sink = self.agg.take().expect("agg sink present");
        let mut table = GroupTable::new(sink.group.len(), &sink.aggs);
        let mut work = Batch::default();
        let t0 = Instant::now();
        loop {
            let more = match &mut self.output.source {
                FusedSource::Scan(s) => s.fill(&mut work, self.batch_size, &self.output.stats),
                FusedSource::Input(op) => op.next_batch(&mut work),
            };
            if !more {
                break;
            }
            run_stages(
                &self.output.stages,
                &self.tables,
                &mut work,
                &mut self.tmp,
                &mut self.scratch,
                &self.output.stats,
            );
            let consumed = match sink.mode {
                AggMode::Complete | AggMode::Partial => {
                    table.accumulate(&work, &sink.group, &sink.aggs, &mut self.agg_scratch)
                }
                AggMode::Final => {
                    let n = table.merge_partial(&work, &sink.aggs, &mut self.agg_scratch);
                    self.agg_groups_in += n as u64;
                    n
                }
            };
            self.agg_rows_in += consumed as u64;
            self.output.stats.batches.fetch_add(1, Ordering::Relaxed);
            self.output
                .stats
                .rows
                .fetch_add(consumed as u64, Ordering::Relaxed);
        }
        // Grand total over an empty input still yields one row — from
        // the Complete or Final phase, never the per-worker Partial.
        if sink.group.is_empty() && sink.mode != AggMode::Partial {
            table.ensure_grand_total();
        }
        self.output
            .stats
            .ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.agg_table = Some(table);
        self.agg_emitted = 0;
        self.agg = Some(sink);
    }

    /// Stream the next batch of aggregated groups.
    fn next_agg_batch(&mut self, out: &mut Batch) -> bool {
        if self.agg_table.is_none() {
            self.drain_into_groups();
        }
        let sink = self.agg.as_ref().expect("agg sink present");
        let table = self.agg_table.as_ref().expect("drained above");
        if self.agg_emitted >= table.len() {
            return false;
        }
        let to = (self.agg_emitted + self.batch_size).min(table.len());
        table.emit(
            self.agg_emitted..to,
            &sink.aggs,
            sink.mode == AggMode::Partial,
            out,
        );
        self.agg_emitted = to;
        self.rows_out += out.live_rows() as u64;
        self.batches_out += 1;
        true
    }
}

impl BatchOperator for FusedRegion {
    fn open(&mut self) {
        self.tables = self
            .table_shapes
            .iter()
            .map(|(ncols, keys)| FusedTable::new(*ncols, keys.clone()))
            .collect();
        let mut work = Batch::default();
        for (slot, pipe) in self.builds.iter_mut().enumerate() {
            let t0 = Instant::now();
            // A build pipeline may probe earlier tables while feeding
            // its own slot; split so both borrows coexist.
            let (earlier, rest) = self.tables.split_at_mut(slot);
            let own = &mut rest[0];
            match &mut pipe.source {
                FusedSource::Scan(s) => s.open(),
                FusedSource::Input(op) => op.open(),
            }
            loop {
                let more = match &mut pipe.source {
                    FusedSource::Scan(s) => s.fill(&mut work, self.batch_size, &pipe.stats),
                    FusedSource::Input(op) => op.next_batch(&mut work),
                };
                if !more {
                    break;
                }
                pipe.stats.batches.fetch_add(1, Ordering::Relaxed);
                run_stages(
                    &pipe.stages,
                    earlier,
                    &mut work,
                    &mut self.tmp,
                    &mut self.scratch,
                    &pipe.stats,
                );
                let inserted = own.insert_batch(&work, &mut self.scratch);
                pipe.stats.rows.fetch_add(inserted, Ordering::Relaxed);
                self.build_rows += inserted;
            }
            match &mut pipe.source {
                FusedSource::Scan(s) => s.close(),
                FusedSource::Input(op) => op.close(),
            }
            pipe.stats
                .ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        match &mut self.output.source {
            FusedSource::Scan(s) => s.open(),
            FusedSource::Input(op) => op.open(),
        }
        self.agg_table = None;
        self.agg_emitted = 0;
        self.opened = true;
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        assert!(self.opened, "next_batch() before open()");
        if self.agg.is_some() {
            return self.next_agg_batch(out);
        }
        let t0 = Instant::now();
        let more = match &mut self.output.source {
            FusedSource::Scan(s) => s.fill(out, self.batch_size, &self.output.stats),
            FusedSource::Input(op) => op.next_batch(out),
        };
        if !more {
            self.output
                .stats
                .ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return false;
        }
        run_stages(
            &self.output.stages,
            &self.tables,
            out,
            &mut self.tmp,
            &mut self.scratch,
            &self.output.stats,
        );
        self.output.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.output
            .stats
            .rows
            .fetch_add(out.live_rows() as u64, Ordering::Relaxed);
        self.output
            .stats
            .ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.rows_out += out.live_rows() as u64;
        self.batches_out += 1;
        true
    }

    fn close(&mut self) {
        match &mut self.output.source {
            FusedSource::Scan(s) => s.close(),
            FusedSource::Input(op) => op.close(),
        }
        self.tables.clear();
        self.agg_table = None;
        self.opened = false;
    }

    fn name(&self) -> &'static str {
        "fused_region"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        let mut m = vec![
            ("pipelines", self.pipeline_count() as u64),
            ("build_rows", self.build_rows),
            ("batches", self.batches_out),
            ("rows", self.rows_out),
        ];
        if let Some(sink) = &self.agg {
            m.push(("rows_in", self.agg_rows_in));
            if sink.mode == AggMode::Final {
                m.push(("groups_in", self.agg_groups_in));
            }
            m.push((
                "groups_out",
                self.agg_table.as_ref().map_or(0, |t| t.len()) as u64,
            ));
        }
        if let FusedSource::Scan(s) = &self.output.source {
            m.push(("pages_read", s.pages_read));
            m.push(("rows_scanned", s.rows_scanned));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_index_chains_duplicates_in_insertion_order_across_growth() {
        let mut idx = IntIndex::new();
        // 1000 inserts over 50 distinct keys force several rehashes;
        // chains must survive them untouched.
        for row in 0..1000u32 {
            idx.insert((row % 50) as i64, row);
        }
        for key in 0..50i64 {
            let mut rows = Vec::new();
            let mut r = idx.head(key);
            while r != NO_ROW {
                rows.push(r);
                r = idx.next[r as usize];
            }
            let expect: Vec<u32> = (0..1000).filter(|r| (r % 50) as i64 == key).collect();
            assert_eq!(rows, expect, "key {key}");
        }
        assert_eq!(idx.head(50), NO_ROW);
        assert_eq!(idx.head(-1), NO_ROW);
    }

    #[test]
    fn int_index_survives_colliding_and_extreme_keys() {
        let mut idx = IntIndex::new();
        // Keys congruent modulo a small power of two collide under any
        // masked hash of the low bits; linear probing must keep them
        // distinct.
        let keys = [0i64, 16, 32, 48, 64, i64::MAX, i64::MIN, -16];
        for (row, &k) in keys.iter().enumerate() {
            idx.insert(k, row as u32);
        }
        for (row, &k) in keys.iter().enumerate() {
            assert_eq!(idx.head(k), row as u32, "key {k}");
            assert_eq!(idx.next[row], NO_ROW);
        }
        assert_eq!(idx.head(17), NO_ROW);
    }

    #[test]
    fn decode_int_row_matches_generic_and_rolls_back_on_mismatch() {
        use volcano_store::record::{encode_record, Field};
        let mut cols = vec![
            Column::with_type(ColType::Int),
            Column::with_type(ColType::Int),
        ];
        let bytes = encode_record(&[Field::Int(7), Field::Null, Field::Int(-3), Field::Int(9)]);
        // Keep fields 0 and 2: Int(7), Int(-3); field 3 is never walked.
        assert!(decode_int_row(
            &bytes,
            Some(&[true, false, true, false]),
            &mut cols
        ));
        // A NULL in a kept position lands as an invalid row.
        let bytes = encode_record(&[Field::Null, Field::Bool(true), Field::Int(5), Field::Int(0)]);
        assert!(decode_int_row(
            &bytes,
            Some(&[true, false, true, false]),
            &mut cols
        ));
        let Column::Int { data, valid } = &cols[0] else {
            panic!("typed column")
        };
        assert_eq!(
            (data.as_slice(), valid.as_slice()),
            (&[7, 0][..], &[true, false][..])
        );
        let Column::Int { data, valid } = &cols[1] else {
            panic!("typed column")
        };
        assert_eq!(
            (data.as_slice(), valid.as_slice()),
            (&[-3, 5][..], &[true, true][..])
        );
        // A kept non-Int field rejects the row and rolls back the Int
        // pushed before it, leaving the columns as they were.
        let bytes = encode_record(&[Field::Int(1), Field::Str("x".into())]);
        assert!(!decode_int_row(&bytes, Some(&[true, true]), &mut cols));
        assert_eq!(cols[0].len(), 2, "partial push rolled back");
        assert_eq!(cols[1].len(), 2);
        // A record narrower than the column set is a mismatch too.
        let bytes = encode_record(&[Field::Int(1)]);
        assert!(!decode_int_row(&bytes, None, &mut cols));
        assert_eq!(cols[0].len(), 2);
    }
}
