//! Tables as heap files behind a buffer pool.

use std::collections::HashMap;
use std::sync::Arc;

use volcano_rel::catalog::ColType;
use volcano_rel::value::Tuple;
use volcano_rel::{AttrId, Catalog, RelPlan, TableId, Value};
use volcano_store::record::{decode_record, encode_record, Field};
use volcano_store::{BTree, BufferPool, DiskManager, FileDisk, HeapFile, MemDisk};

use crate::batch::collect_batches;
use crate::compile::{compile, compile_batch, BatchConfig};
use crate::iterator::collect;

fn value_to_field(v: &Value) -> Field {
    match v {
        Value::Null => Field::Null,
        Value::Bool(b) => Field::Bool(*b),
        Value::Int(i) => Field::Int(*i),
        Value::Float(x) => Field::Float(x.get()),
        Value::Str(s) => Field::Str(s.clone()),
    }
}

fn field_to_value(f: Field) -> Value {
    match f {
        Field::Null => Value::Null,
        Field::Bool(b) => Value::Bool(b),
        Field::Int(i) => Value::Int(i),
        Field::Float(x) => Value::float(x),
        Field::Str(s) => Value::Str(s),
    }
}

/// Encode a row of values for storage.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let fields: Vec<Field> = row.iter().map(value_to_field).collect();
    encode_record(&fields)
}

/// Decode a stored row.
pub fn decode_row(bytes: &[u8]) -> Tuple {
    decode_record(bytes)
        .expect("stored rows are well-formed")
        .into_iter()
        .map(field_to_value)
        .collect()
}

/// A database instance: a catalog plus stored tables and their indexes.
pub struct Database {
    catalog: Catalog,
    pool: Arc<BufferPool>,
    tables: HashMap<TableId, Arc<HeapFile>>,
    /// B+tree per indexed (table, column).
    indexes: HashMap<(TableId, AttrId), Arc<BTree>>,
    /// Tuples an external sort may hold in memory before spilling runs.
    sort_memory_rows: usize,
}

impl Database {
    /// Create an in-memory database for a catalog (empty tables).
    pub fn in_memory(catalog: Catalog) -> Self {
        Self::with_pool_size(catalog, 4096)
    }

    /// Create a file-backed database (a single page file on disk).
    /// Table placement is not persisted across re-opens in this build;
    /// the on-disk variant exists to exercise real file I/O.
    pub fn on_disk(
        catalog: Catalog,
        path: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> std::io::Result<Self> {
        let disk: Arc<dyn DiskManager> = Arc::new(FileDisk::open(path)?);
        Ok(Self::with_disk(catalog, disk, pool_pages))
    }

    /// Create an in-memory database with a specific buffer-pool capacity
    /// (pages).
    pub fn with_pool_size(catalog: Catalog, pool_pages: usize) -> Self {
        let disk: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        Self::with_disk(catalog, disk, pool_pages)
    }

    /// Create a database over an arbitrary disk manager.
    pub fn with_disk(catalog: Catalog, disk: Arc<dyn DiskManager>, pool_pages: usize) -> Self {
        let pool = Arc::new(BufferPool::new(disk, pool_pages));
        let tables: HashMap<TableId, Arc<HeapFile>> = catalog
            .tables()
            .iter()
            .map(|t| (t.id, Arc::new(HeapFile::create(pool.clone()))))
            .collect();
        let mut indexes = HashMap::new();
        for t in catalog.tables() {
            for c in &t.columns {
                if c.indexed {
                    indexes.insert((t.id, c.attr), Arc::new(BTree::create(pool.clone())));
                }
            }
        }
        Database {
            catalog,
            pool,
            tables,
            indexes,
            sort_memory_rows: 1 << 20,
        }
    }

    /// Restrict external sorts to `rows` in-memory tuples (forces run
    /// spilling for larger inputs).
    pub fn set_sort_memory_rows(&mut self, rows: usize) {
        self.sort_memory_rows = rows.max(2);
    }

    /// The external-sort in-memory budget, in tuples.
    pub fn sort_memory_rows(&self) -> usize {
        self.sort_memory_rows
    }

    /// The buffer pool (run files of external sorts allocate here).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The B+tree index on `(table, attr)`, if one exists.
    pub fn index(&self, table: TableId, attr: AttrId) -> Option<&Arc<BTree>> {
        self.indexes.get(&(table, attr))
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The heap file backing a table.
    pub fn table(&self, id: TableId) -> &Arc<HeapFile> {
        &self.tables[&id]
    }

    /// Insert a row (typed per the table's schema; not validated beyond
    /// field count). Indexed columns must hold integers.
    pub fn insert(&self, table: TableId, row: Vec<Value>) {
        let meta = self.catalog.table(table);
        assert_eq!(
            row.len(),
            meta.columns.len(),
            "row arity mismatch for table {:?}",
            table
        );
        let rid = self.tables[&table].insert(&encode_row(&row));
        for (pos, c) in meta.columns.iter().enumerate() {
            if c.indexed {
                let Value::Int(key) = row[pos] else {
                    panic!("indexed column {} must be an integer", c.name)
                };
                self.indexes[&(table, c.attr)].insert(key, rid);
            }
        }
    }

    /// Populate every table with synthetic rows honouring its statistics:
    /// `card` rows; integer columns uniform in `0..distinct`; strings
    /// cycling over `distinct` values. Deterministic per `seed`.
    pub fn generate(&self, seed: u64) {
        use rand_like::Lcg;
        for t in self.catalog.tables() {
            let mut rng = Lcg::new(seed ^ (t.id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for _ in 0..t.card as u64 {
                let row: Vec<Value> = t
                    .columns
                    .iter()
                    .map(|c| {
                        let d = c.distinct.max(1.0) as u64;
                        match c.ty {
                            ColType::Int => Value::Int((rng.next() % d) as i64),
                            ColType::Float => Value::float((rng.next() % d) as f64),
                            ColType::Bool => Value::Bool(rng.next().is_multiple_of(2)),
                            ColType::Str => {
                                // Honour the declared average width so
                                // on-page sizes match the statistics the
                                // cost model sees.
                                let mut v = format!("v{}", rng.next() % d);
                                while v.len() < c.width as usize {
                                    v.push('_');
                                }
                                Value::Str(v)
                            }
                        }
                    })
                    .collect();
                self.insert(t.id, row);
            }
        }
    }

    /// Execute an optimized physical plan, returning all result tuples.
    pub fn execute(&self, plan: &RelPlan) -> Vec<Tuple> {
        let mut op = compile(self, plan).operator;
        collect(op.as_mut())
    }

    /// Execute a plan on the vectorized batch engine. Produces the same
    /// rows in the same order as [`Database::execute`] (the differential
    /// suite enforces this).
    pub fn execute_batch(&self, plan: &RelPlan, cfg: BatchConfig) -> Vec<Tuple> {
        let mut op = compile_batch(self, plan, cfg).operator;
        collect_batches(op.as_mut())
    }

    /// Physical page reads/writes observed so far.
    pub fn io_stats(&self) -> (u64, u64) {
        let s = self.pool.disk().stats();
        (s.reads(), s.writes())
    }

    /// Reset the physical I/O counters (e.g. after loading data).
    pub fn reset_io_stats(&self) {
        self.pool.disk().stats().reset();
    }

    /// Write all dirty buffered pages back to the disk manager.
    pub fn flush(&self) {
        self.pool.flush_all();
    }
}

/// A tiny deterministic generator so data generation does not depend on
/// the `rand` crate from a library crate.
mod rand_like {
    /// 64-bit LCG (Knuth constants).
    pub struct Lcg(u64);

    impl Lcg {
        pub fn new(seed: u64) -> Self {
            Lcg(seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
        }

        pub fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_rel::ColumnDef;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            100.0,
            vec![ColumnDef::int("a", 10.0), ColumnDef::str("s", 8, 5.0)],
        );
        c
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![Value::Int(3), Value::Str("x".into())];
        assert_eq!(decode_row(&encode_row(&row)), row);
    }

    #[test]
    fn generate_honours_stats() {
        let c = catalog();
        let id = c.table_by_name("t").unwrap().id;
        let db = Database::in_memory(c);
        db.generate(7);
        let rows: Vec<Tuple> = db
            .table(id)
            .scan_all()
            .iter()
            .map(|b| decode_row(b))
            .collect();
        assert_eq!(rows.len(), 100);
        for r in &rows {
            match &r[0] {
                Value::Int(i) => assert!((0..10).contains(i)),
                other => panic!("expected int, got {other:?}"),
            }
        }
        // Generation is deterministic.
        let db2 = Database::in_memory(catalog());
        db2.generate(7);
        let rows2: Vec<Tuple> = db2
            .table(id)
            .scan_all()
            .iter()
            .map(|b| decode_row(b))
            .collect();
        assert_eq!(rows, rows2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let c = catalog();
        let id = c.table_by_name("t").unwrap().id;
        let db = Database::in_memory(c);
        db.insert(id, vec![Value::Int(1)]);
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;
    use volcano_rel::ColumnDef;

    #[test]
    fn file_backed_database_round_trips() {
        let dir = std::env::temp_dir().join(format!("volcano_db_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut c = Catalog::new();
        c.add_table("t", 50.0, vec![ColumnDef::int("x", 10.0)]);
        let id = c.table_by_name("t").unwrap().id;
        let db = Database::on_disk(c, dir.join("db.pages"), 4).unwrap();
        db.generate(3);
        let rows: Vec<Tuple> = db
            .table(id)
            .scan_all()
            .iter()
            .map(|b| decode_row(b))
            .collect();
        assert_eq!(rows.len(), 50);
        db.flush();
        let (_, writes) = db.io_stats();
        assert!(writes > 0, "flush must write dirty pages to the file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
