//! Tables as heap files behind a buffer pool.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use volcano_core::trace::{TraceEvent, Tracer};
use volcano_core::{SearchOptions, SearchStats};
use volcano_rel::catalog::ColType;
use volcano_rel::value::Tuple;
use volcano_rel::{
    AttrId, Catalog, Observation, ObservationKey, RelCost, RelModel, RelModelOptions, RelOptimizer,
    RelPlan, RelProps, TableId, Value,
};
use volcano_sql::{
    lower_with_params, parameterize, parse, shape_key, AstQuery, BindError, LowerError, ParamQuery,
    ParseError,
};
use volcano_store::record::{decode_record, encode_record, Field};
use volcano_store::{BTree, BufferPool, DiskManager, FileDisk, HeapFile, MemDisk, MetaEntry};

use crate::batch::collect_batches;
use crate::compile::{BatchConfig, Engine};
use crate::iterator::collect;
use crate::plan_cache::{drift_validation, rebind_plan, CacheEntry, CacheOutcome, PlanCache};

fn value_to_field(v: &Value) -> Field {
    match v {
        Value::Null => Field::Null,
        Value::Bool(b) => Field::Bool(*b),
        Value::Int(i) => Field::Int(*i),
        Value::Float(x) => Field::Float(x.get()),
        Value::Str(s) => Field::Str(s.clone()),
    }
}

fn field_to_value(f: Field) -> Value {
    match f {
        Field::Null => Value::Null,
        Field::Bool(b) => Value::Bool(b),
        Field::Int(i) => Value::Int(i),
        Field::Float(x) => Value::float(x),
        Field::Str(s) => Value::Str(s),
    }
}

/// Encode a row of values for storage.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let fields: Vec<Field> = row.iter().map(value_to_field).collect();
    encode_record(&fields)
}

/// Decode a stored row.
pub fn decode_row(bytes: &[u8]) -> Tuple {
    decode_record(bytes)
        .expect("stored rows are well-formed")
        .into_iter()
        .map(field_to_value)
        .collect()
}

/// Default plan-cache entry capacity.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Default cost-drift tolerance: a stale entry whose re-estimated cost
/// exceeds its recorded cost by more than this factor is re-optimized.
pub const DEFAULT_DRIFT_FACTOR: f64 = 2.0;

/// Materiality threshold for feedback-triggered epoch bumps: merging an
/// execution's observations bumps the stats epoch (forcing cached plans
/// to re-justify themselves under the observed statistics) only when
/// some memory cell moved by at least this ratio. Immaterial drift —
/// re-observing what the memory already says — must not invalidate
/// anything, or every execution would de-cache its own plan.
pub const FEEDBACK_MATERIAL_RATIO: f64 = 1.5;

/// Counters of the adaptive-feedback loop (see
/// [`Database::feedback_stats`]); rendered in `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackStats {
    /// Whether database-wide feedback is enabled.
    pub enabled: bool,
    /// Selectivity observations merged into the memory so far.
    pub observations: u64,
    /// Executions that harvested at least one observation.
    pub applications: u64,
    /// Stats-epoch bumps triggered by material memory movement.
    pub epoch_bumps: u64,
    /// Memory cells currently populated in the catalog.
    pub cells: u64,
}

impl FeedbackStats {
    /// Render as a JSON object (the CLI's `EXPLAIN ANALYZE` embeds it).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"enabled\":{},\"observations\":{},\"applications\":{},\
             \"epoch_bumps\":{},\"cells\":{}}}",
            self.enabled, self.observations, self.applications, self.epoch_bumps, self.cells
        )
    }
}

/// A statement prepared against a [`Database`]: the parameterized query
/// shape plus the constants extracted from its text. Cheap to clone;
/// holds no plan — plans live in the shared [`PlanCache`].
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    param: ParamQuery,
}

impl PreparedStatement {
    /// Number of `$n` values the caller must supply per execution.
    pub fn param_count(&self) -> usize {
        self.param.auto_base as usize
    }
}

/// Why preparing or executing a prepared statement failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PrepareError {
    /// The statement text did not parse.
    Parse(ParseError),
    /// The statement did not lower against the current catalog (unknown
    /// table/column — including tables dropped since `prepare`).
    Lower(LowerError),
    /// The parameter vector had the wrong arity.
    Bind(BindError),
    /// Optimization found no plan (cost limit, empty search space).
    Plan(String),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Parse(e) => write!(f, "{e}"),
            PrepareError::Lower(e) => write!(f, "{e}"),
            PrepareError::Bind(e) => write!(f, "{e}"),
            PrepareError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PrepareError {}

/// The result of one prepared execution, with enough evidence to audit
/// the cache's behaviour: whether the plan came from the cache, and the
/// search statistics when (and only when) an optimization actually ran.
#[derive(Debug)]
pub struct PreparedOutcome {
    /// Result rows.
    pub rows: Vec<Tuple>,
    /// `hit`, `miss`, `invalidated`, or `bypass` (cache disabled).
    pub cache: &'static str,
    /// Search statistics of the optimization this execution ran;
    /// `None` exactly when the plan was served from the cache.
    pub search: Option<SearchStats>,
    /// Estimated cost of the executed plan.
    pub cost: RelCost,
    /// The physical plan this execution ran (re-bound to this
    /// execution's parameters when served from the cache) — the
    /// convergence harness compares plan identity across executions.
    pub plan: RelPlan,
}

/// Per-execution controls for prepared execution — what a serving-tier
/// session varies call by call without touching database-wide state.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Which engine executes the plan (tuple, batch, or fused).
    pub engine: Engine,
    /// Search budget applied when this execution has to optimize
    /// (admission control degrades overloaded traffic to anytime
    /// search). `None` = unlimited. A *degraded* optimization's plan is
    /// never inserted into the plan cache: it is an upper bound chosen
    /// under pressure, and caching it would serve the pessimized plan
    /// to unpressured executions too.
    pub budget: Option<volcano_core::SearchBudget>,
    /// Bypass the plan cache for this execution only (a session-level
    /// `SET PLAN_CACHE OFF`); the database-wide switch stays untouched
    /// and nothing is cleared.
    pub bypass_cache: bool,
    /// Harvest observed selectivities from this execution and merge them
    /// into the catalog's memory (a session-level `SET FEEDBACK ON`).
    /// Feedback also applies when the database-wide switch is on.
    pub feedback: bool,
}

impl ExecOptions {
    /// Tuple-engine execution, unlimited search, cache on — the
    /// defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Skip the plan cache for this execution.
    pub fn with_cache_bypass(mut self, bypass: bool) -> Self {
        self.bypass_cache = bypass;
        self
    }

    /// Use the batch engine with `cfg` (`None` = tuple engine). The
    /// pre-fused signature, kept for the common two-engine call sites;
    /// see [`ExecOptions::with_executor`] for the general form.
    pub fn with_engine(mut self, cfg: Option<BatchConfig>) -> Self {
        self.engine = cfg.into();
        self
    }

    /// Execute on `engine` (tuple, batch, or fused).
    pub fn with_executor(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Bound optimization by `budget`.
    pub fn with_budget(mut self, budget: volcano_core::SearchBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Harvest and merge observed selectivities from this execution.
    pub fn with_feedback(mut self, on: bool) -> Self {
        self.feedback = on;
        self
    }
}

/// An immutable snapshot of the database's schema objects: the catalog
/// plus the heap files and indexes backing each table.
///
/// The [`Database`] keeps the current snapshot behind a readers–writer
/// lock and replaces it wholesale on DDL (copy-on-write). A query pins
/// one snapshot for its entire lower → plan → compile → execute flow,
/// so it never observes a half-applied schema change: queries never
/// block each other, DDL excludes only the instant of the swap, and a
/// table dropped mid-query stays alive (via the `Arc`s below) until the
/// last query over it finishes — MVCC-lite for metadata.
pub struct SchemaSnapshot {
    catalog: Arc<Catalog>,
    tables: HashMap<TableId, Arc<HeapFile>>,
    /// B+tree per indexed (table, column).
    indexes: HashMap<(TableId, AttrId), Arc<BTree>>,
}

impl SchemaSnapshot {
    /// The catalog as of this snapshot.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Shared handle to the snapshot's catalog.
    pub fn catalog_arc(&self) -> Arc<Catalog> {
        self.catalog.clone()
    }

    /// The heap file backing a table. Panics if the table was dropped
    /// as of this snapshot (plans are compiled against the same
    /// snapshot they were lowered on, so a well-formed plan never hits
    /// this).
    pub fn table(&self, id: TableId) -> &Arc<HeapFile> {
        self.tables.get(&id).unwrap_or_else(|| {
            panic!(
                "table {:?} ({}) was dropped",
                id,
                self.catalog.table(id).name
            )
        })
    }

    /// Whether the table still has storage (not dropped).
    pub fn has_table(&self, id: TableId) -> bool {
        self.tables.contains_key(&id)
    }

    /// The B+tree index on `(table, attr)`, if one exists.
    pub fn index(&self, table: TableId, attr: AttrId) -> Option<&Arc<BTree>> {
        self.indexes.get(&(table, attr))
    }
}

/// A database instance: a catalog plus stored tables and their indexes.
///
/// `Database` is `Send + Sync`: any number of threads may plan and
/// execute queries concurrently. Schema state lives in a copy-on-write
/// [`SchemaSnapshot`] behind a readers–writer lock (queries read,
/// DDL swaps); everything else is atomics, the internally-sharded
/// [`PlanCache`], and the internally-locked storage layer.
pub struct Database {
    /// Current schema snapshot; see [`SchemaSnapshot`] for the
    /// concurrency contract. Lock order: this lock is never held while
    /// touching the buffer pool or plan cache — readers clone the `Arc`
    /// out and release immediately, writers swap a fully-built
    /// replacement.
    schema: RwLock<Arc<SchemaSnapshot>>,
    pool: Arc<BufferPool>,
    /// Tuples an external sort may hold in memory before spilling runs.
    sort_memory_rows: AtomicUsize,
    /// Monotone counter bumped by every statistics-relevant change:
    /// data loads, DDL, stats refreshes. Cached plans record the epoch
    /// they were optimized under.
    stats_epoch: AtomicU64,
    /// The cross-query plan cache.
    plan_cache: PlanCache,
    /// Whether prepared executions consult the cache at all.
    cache_enabled: AtomicBool,
    /// Cost-drift tolerance (see [`DEFAULT_DRIFT_FACTOR`]), stored as
    /// `f64` bits so it can sit in an atomic next to the epoch.
    drift_factor: AtomicU64,
    /// Worker-pool degree the optimizer's gather enforcer may offer
    /// (morsel-driven batch execution); `1` = serial planning.
    parallel_degree: AtomicU32,
    /// Database-wide adaptive-feedback switch (off by default: feedback
    /// changes plans, so it is strictly opt-in).
    feedback_enabled: AtomicBool,
    /// Selectivity observations merged into the memory.
    feedback_observations: AtomicU64,
    /// Executions that harvested at least one observation.
    feedback_applications: AtomicU64,
    /// Epoch bumps triggered by material feedback.
    feedback_epoch_bumps: AtomicU64,
}

impl Database {
    /// Create an in-memory database for a catalog (empty tables).
    pub fn in_memory(catalog: Catalog) -> Self {
        Self::with_pool_size(catalog, 4096)
    }

    /// Create a file-backed database (a single page file on disk).
    /// Table placement is not persisted across re-opens in this build;
    /// the on-disk variant exists to exercise real file I/O.
    pub fn on_disk(
        catalog: Catalog,
        path: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> std::io::Result<Self> {
        let disk: Arc<dyn DiskManager> = Arc::new(FileDisk::open(path)?);
        Ok(Self::with_disk(catalog, disk, pool_pages))
    }

    /// Create an in-memory database with a specific buffer-pool capacity
    /// (pages).
    pub fn with_pool_size(catalog: Catalog, pool_pages: usize) -> Self {
        let disk: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        Self::with_disk(catalog, disk, pool_pages)
    }

    /// Create a database over an arbitrary disk manager.
    pub fn with_disk(catalog: Catalog, disk: Arc<dyn DiskManager>, pool_pages: usize) -> Self {
        let pool = Arc::new(BufferPool::new(disk, pool_pages));
        let tables: HashMap<TableId, Arc<HeapFile>> = catalog
            .tables()
            .iter()
            .map(|t| (t.id, Arc::new(HeapFile::create(pool.clone()))))
            .collect();
        let mut indexes = HashMap::new();
        for t in catalog.tables() {
            for c in &t.columns {
                if c.indexed {
                    indexes.insert((t.id, c.attr), Arc::new(BTree::create(pool.clone())));
                }
            }
        }
        Database {
            schema: RwLock::new(Arc::new(SchemaSnapshot {
                catalog: Arc::new(catalog),
                tables,
                indexes,
            })),
            pool,
            sort_memory_rows: AtomicUsize::new(1 << 20),
            stats_epoch: AtomicU64::new(0),
            plan_cache: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
            cache_enabled: AtomicBool::new(true),
            drift_factor: AtomicU64::new(DEFAULT_DRIFT_FACTOR.to_bits()),
            parallel_degree: AtomicU32::new(1),
            feedback_enabled: AtomicBool::new(false),
            feedback_observations: AtomicU64::new(0),
            feedback_applications: AtomicU64::new(0),
            feedback_epoch_bumps: AtomicU64::new(0),
        }
    }

    /// The worker-pool degree offered to the optimizer (1 = serial).
    pub fn parallel_degree(&self) -> u32 {
        self.parallel_degree.load(Ordering::Acquire)
    }

    /// Set the parallel degree (clamped to ≥ 1). Clears the plan cache:
    /// cached plans embed gather placements decided under the old
    /// degree, and the cost model changes with it.
    pub fn set_parallel_degree(&self, degree: u32) {
        self.parallel_degree.store(degree.max(1), Ordering::Release);
        self.plan_cache.clear();
    }

    /// The model options this database optimizes under — the default
    /// configuration plus the current parallel degree. Every path that
    /// builds a [`RelModel`] (optimization, drift validation) must use
    /// this so cached-plan re-costing sees the same cost model that
    /// planned the entry.
    pub fn model_options(&self) -> RelModelOptions {
        RelModelOptions::default().with_parallel_degree(self.parallel_degree())
    }

    /// Restrict external sorts to `rows` in-memory tuples (forces run
    /// spilling for larger inputs).
    pub fn set_sort_memory_rows(&self, rows: usize) {
        self.sort_memory_rows.store(rows.max(2), Ordering::Release);
    }

    /// The external-sort in-memory budget, in tuples.
    pub fn sort_memory_rows(&self) -> usize {
        self.sort_memory_rows.load(Ordering::Acquire)
    }

    /// The buffer pool (run files of external sorts allocate here).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The current schema snapshot. Callers doing multi-step work
    /// (lower, compile, execute) should take one snapshot and use it
    /// throughout, so concurrent DDL cannot pull the schema out from
    /// under them.
    pub fn snapshot(&self) -> Arc<SchemaSnapshot> {
        self.schema.read().clone()
    }

    /// The B+tree index on `(table, attr)` in the current snapshot, if
    /// one exists.
    pub fn index(&self, table: TableId, attr: AttrId) -> Option<Arc<BTree>> {
        self.snapshot().index(table, attr).cloned()
    }

    /// The catalog as of the current snapshot.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.schema.read().catalog.clone()
    }

    /// The heap file backing a table in the current snapshot. Panics if
    /// the table was dropped; see [`SchemaSnapshot::table`].
    pub fn table(&self, id: TableId) -> Arc<HeapFile> {
        self.snapshot().table(id).clone()
    }

    /// Insert a row (typed per the table's schema; not validated beyond
    /// field count). Indexed columns must hold integers.
    pub fn insert(&self, table: TableId, row: Vec<Value>) {
        let snap = self.snapshot();
        let meta = snap.catalog.table(table);
        assert_eq!(
            row.len(),
            meta.columns.len(),
            "row arity mismatch for table {:?}",
            table
        );
        let rid = snap.table(table).insert(&encode_row(&row));
        for (pos, c) in meta.columns.iter().enumerate() {
            if c.indexed {
                let Value::Int(key) = row[pos] else {
                    panic!("indexed column {} must be an integer", c.name)
                };
                snap.index(table, c.attr)
                    .expect("declared index exists")
                    .insert(key, rid);
            }
        }
        // Data changed: cached plans must re-justify themselves.
        self.bump_epoch();
    }

    /// Populate every table with synthetic rows honouring its statistics:
    /// `card` rows; integer columns uniform in `0..distinct`; strings
    /// cycling over `distinct` values. Deterministic per `seed`.
    pub fn generate(&self, seed: u64) {
        use rand_like::Lcg;
        let snap = self.snapshot();
        for t in snap.catalog.tables() {
            // Dropped tables keep their catalog slot (ids are positional)
            // but have no heap file any more.
            if !snap.has_table(t.id) {
                continue;
            }
            let mut rng = Lcg::new(seed ^ (t.id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for _ in 0..t.card as u64 {
                let row: Vec<Value> = t
                    .columns
                    .iter()
                    .map(|c| {
                        let d = c.distinct.max(1.0) as u64;
                        match c.ty {
                            ColType::Int => Value::Int((rng.next() % d) as i64),
                            ColType::Float => Value::float((rng.next() % d) as f64),
                            ColType::Bool => Value::Bool(rng.next().is_multiple_of(2)),
                            ColType::Str => {
                                // Honour the declared average width so
                                // on-page sizes match the statistics the
                                // cost model sees.
                                let mut v = format!("v{}", rng.next() % d);
                                while v.len() < c.width as usize {
                                    v.push('_');
                                }
                                Value::Str(v)
                            }
                        }
                    })
                    .collect();
                self.insert(t.id, row);
            }
        }
    }

    /// Execute an optimized physical plan, returning all result tuples.
    pub fn execute(&self, plan: &RelPlan) -> Vec<Tuple> {
        let snap = self.snapshot();
        let mut op = crate::compile::compile_at(self, &snap, plan).operator;
        collect(op.as_mut())
    }

    /// Execute a plan on the vectorized batch engine. For serial plans
    /// this produces the same rows in the same order as
    /// [`Database::execute`]; a plan with `gather(n>1)` regions produces
    /// the same *multiset* of rows in a nondeterministic interleaving
    /// (the differential suite enforces both).
    pub fn execute_batch(&self, plan: &RelPlan, cfg: BatchConfig) -> Vec<Tuple> {
        self.execute_batch_traced(plan, cfg, None)
    }

    /// [`Database::execute_batch`], plus one
    /// [`TraceEvent::MorselPhase`] per morsel-parallel gather region in
    /// the plan, emitted after execution completes (workers aggregate
    /// their counters lock-free while running).
    pub fn execute_batch_traced(
        &self,
        plan: &RelPlan,
        cfg: BatchConfig,
        tracer: Option<&dyn Tracer>,
    ) -> Vec<Tuple> {
        let snap = self.snapshot();
        let compiled = crate::compile::compile_batch_at(self, &snap, plan, cfg);
        let mut op = compiled.operator;
        let rows = collect_batches(op.as_mut());
        if let Some(t) = tracer {
            if t.enabled() {
                for g in &compiled.gathers {
                    t.event(TraceEvent::MorselPhase {
                        workers: g.workers(),
                        morsels: g.dispatched(),
                        steals: g.stolen(),
                    });
                }
            }
        }
        rows
    }

    /// Execute a plan on the pipeline-fused engine: same multiset of
    /// rows as [`Database::execute`] and [`Database::execute_batch`]
    /// (same order for serial plans), with fusable segments running as
    /// compiled [`crate::fused::FusedRegion`] pipelines.
    pub fn execute_fused(&self, plan: &RelPlan, cfg: BatchConfig) -> Vec<Tuple> {
        self.execute_fused_traced(plan, cfg, None)
    }

    /// [`Database::execute_fused`], plus one
    /// [`TraceEvent::MorselPhase`] per morsel-parallel gather region,
    /// emitted after execution completes.
    pub fn execute_fused_traced(
        &self,
        plan: &RelPlan,
        cfg: BatchConfig,
        tracer: Option<&dyn Tracer>,
    ) -> Vec<Tuple> {
        let snap = self.snapshot();
        let compiled = crate::fused::compile_fused_at(self, &snap, plan, cfg);
        let mut op = compiled.operator;
        let rows = collect_batches(op.as_mut());
        if let Some(t) = tracer {
            if t.enabled() {
                for g in &compiled.gathers {
                    t.event(TraceEvent::MorselPhase {
                        workers: g.workers(),
                        morsels: g.dispatched(),
                        steals: g.stolen(),
                    });
                }
            }
        }
        rows
    }

    // -----------------------------------------------------------------
    // Prepared statements and the plan cache.

    /// The current stats epoch.
    pub fn epoch(&self) -> u64 {
        self.stats_epoch.load(Ordering::Acquire)
    }

    /// Bump the stats epoch (data loads, DDL, stats refreshes call this
    /// internally; exposed for tests and external loaders). Returns the
    /// new value.
    pub fn bump_epoch(&self) -> u64 {
        self.stats_epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The plan cache (counters, capacity, clearing).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Enable or disable the plan cache; disabling clears it.
    pub fn set_plan_cache_enabled(&self, on: bool) {
        self.cache_enabled.store(on, Ordering::Release);
        if !on {
            self.plan_cache.clear();
        }
    }

    /// Resize the plan cache (existing entries trim lazily).
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.plan_cache.set_capacity(capacity);
    }

    /// Whether prepared executions consult the plan cache.
    pub fn plan_cache_enabled(&self) -> bool {
        self.cache_enabled.load(Ordering::Acquire)
    }

    /// Set the cost-drift tolerance factor (values < 1 make every stale
    /// entry re-optimize).
    pub fn set_drift_factor(&self, factor: f64) {
        self.drift_factor.store(factor.to_bits(), Ordering::Release);
    }

    /// The cost-drift tolerance factor.
    pub fn drift_factor(&self) -> f64 {
        f64::from_bits(self.drift_factor.load(Ordering::Acquire))
    }

    // -----------------------------------------------------------------
    // Adaptive feedback: executed plans report observed selectivities,
    // the catalog's memory merges them, and material movement bumps the
    // stats epoch so the drift guard re-judges cached plans under the
    // observed statistics.

    /// Enable or disable database-wide adaptive feedback. Off by
    /// default; a session can also opt in per execution via
    /// [`ExecOptions::with_feedback`].
    pub fn set_feedback_enabled(&self, on: bool) {
        self.feedback_enabled.store(on, Ordering::Release);
    }

    /// Whether database-wide adaptive feedback is enabled.
    pub fn feedback_enabled(&self) -> bool {
        self.feedback_enabled.load(Ordering::Acquire)
    }

    /// The adaptive-feedback counters.
    pub fn feedback_stats(&self) -> FeedbackStats {
        FeedbackStats {
            enabled: self.feedback_enabled(),
            observations: self.feedback_observations.load(Ordering::Acquire),
            applications: self.feedback_applications.load(Ordering::Acquire),
            epoch_bumps: self.feedback_epoch_bumps.load(Ordering::Acquire),
            cells: self.snapshot().catalog.feedback().len() as u64,
        }
    }

    /// Merge harvested observations into the catalog's selectivity
    /// memory (copy-on-write snapshot swap, like every other catalog
    /// mutation). Returns whether the merge was *material* — some cell
    /// moved by at least [`FEEDBACK_MATERIAL_RATIO`] relative to its
    /// prior (or, for a fresh cell, to the harvest-time estimate) — in
    /// which case the stats epoch was bumped so cached plans re-justify
    /// themselves under the observed statistics.
    pub fn apply_feedback(&self, observations: &[Observation]) -> bool {
        if observations.is_empty() {
            return false;
        }
        let floor = volcano_rel::selectivity::MIN_SELECTIVITY;
        let mut material = false;
        {
            let mut guard = self.schema.write();
            let mut catalog = (*guard.catalog).clone();
            let memory = catalog.feedback_mut();
            for o in observations {
                let prior = memory
                    .lookup(&o.key)
                    .unwrap_or_else(|| o.estimated.clamp(floor, 1.0));
                memory.observe(o.key, o.observed);
                if let Some(new) = memory.lookup(&o.key) {
                    let ratio = if new > prior {
                        new / prior
                    } else {
                        prior / new
                    };
                    if ratio >= FEEDBACK_MATERIAL_RATIO {
                        material = true;
                    }
                }
            }
            *guard = Arc::new(SchemaSnapshot {
                catalog: Arc::new(catalog),
                tables: guard.tables.clone(),
                indexes: guard.indexes.clone(),
            });
        }
        self.feedback_observations
            .fetch_add(observations.len() as u64, Ordering::AcqRel);
        self.feedback_applications.fetch_add(1, Ordering::AcqRel);
        if material {
            self.feedback_epoch_bumps.fetch_add(1, Ordering::AcqRel);
            self.bump_epoch();
        }
        material
    }

    /// Export the catalog's selectivity memory in the model-agnostic
    /// sidecar codec of `volcano_store::meta` (deterministic byte
    /// order). Observed selectivities were paid for with real
    /// executions; persisting them lets a re-opened database skip the
    /// cold-start convergence.
    pub fn export_feedback(&self) -> Vec<u8> {
        let snap = self.snapshot();
        let mut entries: Vec<MetaEntry> = snap
            .catalog
            .feedback()
            .iter()
            .map(|(k, e)| MetaEntry {
                tag: k.tag(),
                key: k.raw(),
                value: e.sel,
                count: e.n,
            })
            .collect();
        entries.sort_by_key(|a| (a.tag, a.key));
        volcano_store::meta::encode(&entries)
    }

    /// Restore a memory exported by [`Database::export_feedback`],
    /// replacing any overlapping cells, and bump the stats epoch if
    /// anything was restored. Returns the number of cells restored —
    /// zero for corrupt bytes (a bad sidecar degrades to a cold start)
    /// and for entries written by an unknown newer tag.
    pub fn import_feedback(&self, bytes: &[u8]) -> usize {
        let Some(entries) = volcano_store::meta::decode(bytes) else {
            return 0;
        };
        let mut restored = 0usize;
        {
            let mut guard = self.schema.write();
            let mut catalog = (*guard.catalog).clone();
            for e in &entries {
                if let Some(key) = ObservationKey::from_parts(e.tag, e.key) {
                    catalog.feedback_mut().insert_raw(key, e.value, e.count);
                    restored += 1;
                }
            }
            if restored == 0 {
                return 0;
            }
            *guard = Arc::new(SchemaSnapshot {
                catalog: Arc::new(catalog),
                tables: guard.tables.clone(),
                indexes: guard.indexes.clone(),
            });
        }
        self.bump_epoch();
        restored
    }

    /// Prepare a SQL statement: parse, then auto-parameterize every
    /// WHERE-clause literal (explicit `$n` placeholders keep their
    /// slots). Name resolution happens at execution time, so preparing
    /// does not pin the catalog.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement, PrepareError> {
        Ok(self.prepare_ast(&parse(sql).map_err(PrepareError::Parse)?))
    }

    /// Prepare an already-parsed query (the CLI's `PREPARE name AS ...`).
    pub fn prepare_ast(&self, ast: &AstQuery) -> PreparedStatement {
        PreparedStatement {
            param: parameterize(ast),
        }
    }

    /// Execute a prepared statement, returning only the rows. See
    /// [`Database::execute_prepared_traced`] for the audited form.
    pub fn execute_prepared(
        &self,
        stmt: &PreparedStatement,
        params: &[Value],
        engine: Option<BatchConfig>,
    ) -> Result<Vec<Tuple>, PrepareError> {
        self.execute_prepared_traced(stmt, params, engine, None)
            .map(|o| o.rows)
    }

    /// Execute a prepared statement through the plan cache.
    ///
    /// The flow per execution: bind the full parameter vector, lower the
    /// shape (cheap — no search), compute the shape key, and probe the
    /// cache. A valid entry is re-bound to the new constants and executed
    /// with **no optimizer involvement**; the returned outcome carries
    /// `search: None` as evidence. A miss (or an entry killed by the
    /// epoch/drift guard) optimizes as usual and caches the result.
    ///
    /// `tracer` receives one [`TraceEvent::PlanCacheLookup`] per call.
    pub fn execute_prepared_traced(
        &self,
        stmt: &PreparedStatement,
        params: &[Value],
        engine: Option<BatchConfig>,
        tracer: Option<&dyn Tracer>,
    ) -> Result<PreparedOutcome, PrepareError> {
        self.execute_prepared_opts(
            stmt,
            params,
            &ExecOptions::new().with_engine(engine),
            tracer,
        )
    }

    /// [`Database::execute_prepared_traced`] with full per-execution
    /// controls (engine, search budget) — the serving layer's entry
    /// point. The whole flow runs against one schema snapshot, so
    /// concurrent DDL cannot make it panic half-way: a statement whose
    /// table was dropped fails cleanly at lowering, and a drop landing
    /// *after* the snapshot executes against the pre-drop data.
    pub fn execute_prepared_opts(
        &self,
        stmt: &PreparedStatement,
        params: &[Value],
        opts: &ExecOptions,
        tracer: Option<&dyn Tracer>,
    ) -> Result<PreparedOutcome, PrepareError> {
        let snap = self.snapshot();
        let full = stmt.param.bind(params).map_err(PrepareError::Bind)?;
        // Lowering re-resolves names against the snapshot's catalog: a
        // shape over a dropped table fails here, before any cache probe,
        // so a stale plan can never be served for it.
        let mut catalog = (*snap.catalog).clone();
        let q = lower_with_params(&stmt.param.shape, &mut catalog, &full)
            .map_err(PrepareError::Lower)?;
        let goal = RelProps::sorted(q.order_by.clone());
        let shape = shape_key(&q.expr, &q.order_by);
        let feedback = opts.feedback || self.feedback_enabled();

        if opts.bypass_cache || !self.plan_cache_enabled() {
            if let Some(t) = tracer {
                t.event(TraceEvent::PlanCacheLookup {
                    shape,
                    outcome: "bypass",
                });
            }
            let (plan, stats) = self.optimize(&catalog, &q.expr, goal, opts.budget.clone())?;
            return Ok(PreparedOutcome {
                rows: self.run_prepared(&snap, &plan, opts.engine, feedback, tracer),
                cache: "bypass",
                cost: plan.cost,
                search: Some(stats),
                plan,
            });
        }

        let epoch = self.epoch();
        let drift = self.drift_factor();
        let options = self.model_options();
        let outcome = self.plan_cache.lookup(shape, &goal, |entry| {
            if entry.epoch == epoch {
                crate::plan_cache::Validation::Valid
            } else {
                drift_validation(entry, &snap.catalog, &options, &full, epoch, drift)
            }
        });
        if let Some(t) = tracer {
            t.event(TraceEvent::PlanCacheLookup {
                shape,
                outcome: outcome.label(),
            });
        }
        match outcome {
            CacheOutcome::Hit(entry) => {
                let plan = rebind_plan(&entry.plan, &full);
                Ok(PreparedOutcome {
                    rows: self.run_prepared(&snap, &plan, opts.engine, feedback, tracer),
                    cache: "hit",
                    cost: entry.cost,
                    search: None,
                    plan,
                })
            }
            CacheOutcome::Miss | CacheOutcome::Invalidated => {
                let label = outcome.label();
                let (plan, stats) =
                    self.optimize(&catalog, &q.expr, goal.clone(), opts.budget.clone())?;
                // A budget-degraded plan is an under-pressure upper
                // bound; caching it would pessimize every later
                // execution of this shape. Let the next unpressured
                // execution optimize and cache properly.
                if !stats.outcome.is_degraded() {
                    self.plan_cache.insert(
                        shape,
                        goal,
                        CacheEntry {
                            plan: plan.clone(),
                            cost: plan.cost,
                            epoch,
                        },
                    );
                }
                Ok(PreparedOutcome {
                    rows: self.run_prepared(&snap, &plan, opts.engine, feedback, tracer),
                    cache: label,
                    cost: plan.cost,
                    search: Some(stats),
                    plan,
                })
            }
        }
    }

    fn optimize(
        &self,
        catalog: &Catalog,
        expr: &volcano_rel::RelExpr,
        goal: RelProps,
        budget: Option<volcano_core::SearchBudget>,
    ) -> Result<(RelPlan, SearchStats), PrepareError> {
        let model = RelModel::new(catalog.clone(), self.model_options());
        let mut search = SearchOptions::default();
        if let Some(b) = budget {
            search.budget = b;
        }
        let mut opt = RelOptimizer::new(&model, search);
        let root = opt.insert_tree(expr);
        let plan = opt
            .find_best_plan(root, goal, None)
            .map_err(|e| PrepareError::Plan(e.to_string()))?;
        Ok((plan, opt.stats().clone()))
    }

    /// Dispatch a prepared execution: the plain engine run, or — with
    /// feedback on — the instrumented run that harvests and merges
    /// observed selectivities.
    fn run_prepared(
        &self,
        snap: &Arc<SchemaSnapshot>,
        plan: &RelPlan,
        engine: Engine,
        feedback: bool,
        tracer: Option<&dyn Tracer>,
    ) -> Vec<Tuple> {
        if feedback {
            self.run_feedback_at(snap, plan, engine, tracer)
        } else {
            self.run_at(snap, plan, engine)
        }
    }

    /// Execute `plan` with per-operator (tuple/batch) or per-pipeline
    /// (fused) instrumentation, harvest selectivity observations from
    /// the actual cardinalities, and merge them into the catalog's
    /// memory. Emits one [`TraceEvent::FeedbackApplied`] per execution.
    fn run_feedback_at(
        &self,
        snap: &Arc<SchemaSnapshot>,
        plan: &RelPlan,
        engine: Engine,
        tracer: Option<&dyn Tracer>,
    ) -> Vec<Tuple> {
        let (rows, observations) = match engine {
            Engine::Tuple => {
                let analyzed = crate::analyze::execute_analyzed_at(self, snap, &snap.catalog, plan);
                let obs = volcano_rel::observations(&snap.catalog, plan, &analyzed.actual_rows());
                (analyzed.rows, obs)
            }
            Engine::Batch(cfg) => {
                let analyzed =
                    crate::analyze::execute_analyzed_batch_at(self, snap, &snap.catalog, plan, cfg);
                let obs = volcano_rel::observations(&snap.catalog, plan, &analyzed.actual_rows());
                (analyzed.rows, obs)
            }
            Engine::Fused(cfg) => {
                // The fused engine measures per pipeline, not per plan
                // node; the report's harvest hints map pipeline counters
                // back to predicate terms and join pairs.
                let compiled = crate::fused::compile_fused_at(self, snap, plan, cfg);
                let mut op = compiled.operator;
                let rows = collect_batches(op.as_mut());
                let obs = compiled.report.observations();
                (rows, obs)
            }
        };
        let epoch_bumped = self.apply_feedback(&observations);
        if let Some(t) = tracer {
            t.event(TraceEvent::FeedbackApplied {
                observations: observations.len() as u64,
                epoch_bumped,
            });
        }
        rows
    }

    /// Execute `plan` against a pinned snapshot (same snapshot the plan
    /// was lowered on).
    fn run_at(&self, snap: &Arc<SchemaSnapshot>, plan: &RelPlan, engine: Engine) -> Vec<Tuple> {
        match engine {
            Engine::Tuple => {
                let mut op = crate::compile::compile_at(self, snap, plan).operator;
                collect(op.as_mut())
            }
            Engine::Batch(cfg) => {
                let compiled = crate::compile::compile_batch_at(self, snap, plan, cfg);
                let mut op = compiled.operator;
                collect_batches(op.as_mut())
            }
            Engine::Fused(cfg) => {
                let compiled = crate::fused::compile_fused_at(self, snap, plan, cfg);
                let mut op = compiled.operator;
                collect_batches(op.as_mut())
            }
        }
    }

    /// Drop a table: unregister it from the catalog (SQL over it fails
    /// from now on), release its heap file and indexes, clear the plan
    /// cache, and bump the stats epoch. Returns `false` if no such table.
    ///
    /// Takes `&self`: the schema lock serializes DDL against other DDL
    /// and against the instant a query pins its snapshot. In-flight
    /// queries that already pinned a snapshot keep the dropped table's
    /// storage alive (via its `Arc`) and finish normally.
    pub fn drop_table(&self, name: &str) -> bool {
        let mut guard = self.schema.write();
        let mut catalog = (*guard.catalog).clone();
        let Some(id) = catalog.drop_table(name) else {
            return false;
        };
        let mut tables = guard.tables.clone();
        let mut indexes = guard.indexes.clone();
        tables.remove(&id);
        indexes.retain(|(t, _), _| *t != id);
        *guard = Arc::new(SchemaSnapshot {
            catalog: Arc::new(catalog),
            tables,
            indexes,
        });
        drop(guard);
        self.plan_cache.clear();
        self.bump_epoch();
        true
    }

    /// Recompute catalog statistics (row counts and per-column distinct
    /// estimates) from the stored data, then bump the stats epoch so
    /// cached plans are re-judged under the new numbers.
    ///
    /// The table scans run against a pinned snapshot *without* holding
    /// the schema lock (queries keep flowing); the write lock is taken
    /// only to swap in the recomputed catalog, skipping tables dropped
    /// in the meantime.
    pub fn refresh_stats(&self) {
        use std::collections::HashSet;
        let snap = self.snapshot();
        let mut computed: Vec<(TableId, f64, Vec<Option<f64>>)> = Vec::new();
        for t in snap.catalog.tables() {
            if !snap.has_table(t.id) {
                continue;
            }
            let rows: Vec<Tuple> = snap
                .table(t.id)
                .scan_all()
                .iter()
                .map(|b| decode_row(b))
                .collect();
            let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); t.columns.len()];
            for row in &rows {
                for (set, v) in distinct.iter_mut().zip(row) {
                    set.insert(v.clone());
                }
            }
            let estimates: Vec<Option<f64>> =
                distinct.iter().map(|s| Some(s.len() as f64)).collect();
            computed.push((t.id, rows.len() as f64, estimates));
        }
        {
            let mut guard = self.schema.write();
            let mut catalog = (*guard.catalog).clone();
            for (id, card, estimates) in computed {
                if guard.tables.contains_key(&id) {
                    catalog.update_stats(id, card, &estimates);
                }
            }
            *guard = Arc::new(SchemaSnapshot {
                catalog: Arc::new(catalog),
                tables: guard.tables.clone(),
                indexes: guard.indexes.clone(),
            });
        }
        self.bump_epoch();
    }

    /// Physical page reads/writes observed so far.
    pub fn io_stats(&self) -> (u64, u64) {
        let s = self.pool.disk().stats();
        (s.reads(), s.writes())
    }

    /// Reset the physical I/O counters (e.g. after loading data).
    pub fn reset_io_stats(&self) {
        self.pool.disk().stats().reset();
    }

    /// Write all dirty buffered pages back to the disk manager.
    pub fn flush(&self) {
        self.pool.flush_all();
    }
}

/// A tiny deterministic generator so data generation does not depend on
/// the `rand` crate from a library crate.
mod rand_like {
    /// 64-bit LCG (Knuth constants).
    pub struct Lcg(u64);

    impl Lcg {
        pub fn new(seed: u64) -> Self {
            Lcg(seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
        }

        pub fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_rel::ColumnDef;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            100.0,
            vec![ColumnDef::int("a", 10.0), ColumnDef::str("s", 8, 5.0)],
        );
        c
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![Value::Int(3), Value::Str("x".into())];
        assert_eq!(decode_row(&encode_row(&row)), row);
    }

    #[test]
    fn generate_honours_stats() {
        let c = catalog();
        let id = c.table_by_name("t").unwrap().id;
        let db = Database::in_memory(c);
        db.generate(7);
        let rows: Vec<Tuple> = db
            .table(id)
            .scan_all()
            .iter()
            .map(|b| decode_row(b))
            .collect();
        assert_eq!(rows.len(), 100);
        for r in &rows {
            match &r[0] {
                Value::Int(i) => assert!((0..10).contains(i)),
                other => panic!("expected int, got {other:?}"),
            }
        }
        // Generation is deterministic.
        let db2 = Database::in_memory(catalog());
        db2.generate(7);
        let rows2: Vec<Tuple> = db2
            .table(id)
            .scan_all()
            .iter()
            .map(|b| decode_row(b))
            .collect();
        assert_eq!(rows, rows2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let c = catalog();
        let id = c.table_by_name("t").unwrap().id;
        let db = Database::in_memory(c);
        db.insert(id, vec![Value::Int(1)]);
    }

    #[test]
    fn warm_prepared_execution_skips_the_optimizer() {
        let db = Database::in_memory(catalog());
        db.generate(11);
        let epoch = db.epoch(); // generate() bumps per insert
        assert!(epoch > 0);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 4").unwrap();
        // Auto-parameterized: the literal 4 became a slot with a default.
        assert_eq!(stmt.param_count(), 0);
        let cold = db.execute_prepared_traced(&stmt, &[], None, None).unwrap();
        assert_eq!(cold.cache, "miss");
        assert!(cold.search.is_some(), "cold run must optimize");
        let warm = db.execute_prepared_traced(&stmt, &[], None, None).unwrap();
        assert_eq!(warm.cache, "hit");
        assert!(warm.search.is_none(), "warm run must not optimize");
        assert_eq!(cold.rows, warm.rows);
        let s = db.plan_cache().stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.lookups, s.hits + s.misses + s.invalidations);
    }

    #[test]
    fn lookups_emit_trace_events() {
        use volcano_core::trace::CollectingTracer;
        let db = Database::in_memory(catalog());
        db.generate(13);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 4").unwrap();
        let tracer = CollectingTracer::new();
        db.execute_prepared_traced(&stmt, &[], None, Some(&tracer))
            .unwrap();
        db.execute_prepared_traced(&stmt, &[], None, Some(&tracer))
            .unwrap();
        let lookups: Vec<(u64, &'static str)> = tracer
            .take()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::PlanCacheLookup { shape, outcome } => Some((shape, outcome)),
                _ => None,
            })
            .collect();
        assert_eq!(lookups.len(), 2);
        assert_eq!(lookups[0].1, "miss");
        assert_eq!(lookups[1].1, "hit");
        // Both lookups probed the same canonical shape.
        assert_eq!(lookups[0].0, lookups[1].0);
    }

    #[test]
    fn explicit_params_rebind_without_reoptimizing() {
        let db = Database::in_memory(catalog());
        db.generate(3);
        let stmt = db.prepare("SELECT a FROM t WHERE a < $0").unwrap();
        assert_eq!(stmt.param_count(), 1);
        let oracle = |bound: i64| {
            let mut rows = db
                .execute_prepared(&stmt, &[Value::Int(bound)], None)
                .unwrap();
            rows.sort();
            rows
        };
        let lt4 = oracle(4);
        let lt9 = oracle(9);
        assert!(lt4.len() < lt9.len(), "selectivity must track the binding");
        for r in &lt4 {
            assert!(lt9.contains(r));
        }
        // First call missed, both later calls hit with different bindings.
        let s = db.plan_cache().stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn epoch_mismatch_revalidates_or_reoptimizes() {
        let db = Database::in_memory(catalog());
        db.generate(5);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 6").unwrap();
        db.execute_prepared(&stmt, &[], None).unwrap();
        let before = db.epoch();
        db.bump_epoch();
        assert_eq!(db.epoch(), before + 1);
        // Stats unchanged: the drift guard revalidates in place, still a hit.
        let out = db.execute_prepared_traced(&stmt, &[], None, None).unwrap();
        assert_eq!(out.cache, "hit");
        assert!(out.search.is_none());
        // Force every stale entry to re-optimize.
        db.set_drift_factor(0.0);
        db.bump_epoch();
        let out = db.execute_prepared_traced(&stmt, &[], None, None).unwrap();
        assert_eq!(out.cache, "invalidated");
        assert!(out.search.is_some());
        let s = db.plan_cache().stats();
        assert_eq!(s.lookups, s.hits + s.misses + s.invalidations);
    }

    #[test]
    fn dropping_a_table_unplans_it() {
        let db = Database::in_memory(catalog());
        db.generate(2);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 5").unwrap();
        db.execute_prepared(&stmt, &[], None).unwrap();
        assert_eq!(db.plan_cache().len(), 1);
        assert!(db.drop_table("t"));
        assert!(!db.drop_table("t"));
        assert_eq!(db.plan_cache().len(), 0);
        // Lowering now fails before any cache probe.
        let err = db.execute_prepared(&stmt, &[], None).unwrap_err();
        assert!(matches!(err, PrepareError::Lower(_)), "{err}");
        assert_eq!(db.plan_cache().stats().lookups, 1);
    }

    #[test]
    fn refresh_stats_measures_the_data() {
        let db = Database::in_memory(catalog());
        let id = db.catalog().table_by_name("t").unwrap().id;
        for i in 0..30 {
            db.insert(id, vec![Value::Int(i % 3), Value::Str("s".into())]);
        }
        let before = db.epoch();
        db.refresh_stats();
        assert!(db.epoch() > before);
        let cat = db.catalog();
        let t = cat.table(id);
        assert_eq!(t.card, 30.0);
        assert_eq!(t.columns[0].distinct, 3.0);
        assert_eq!(t.columns[1].distinct, 1.0);
    }

    #[test]
    fn feedback_is_off_by_default_and_harvests_when_on() {
        let db = Database::in_memory(catalog());
        db.generate(11);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 4").unwrap();
        db.execute_prepared(&stmt, &[], None).unwrap();
        let s = db.feedback_stats();
        assert!(!s.enabled);
        assert_eq!((s.observations, s.applications, s.cells), (0, 0, 0));
        db.set_feedback_enabled(true);
        db.execute_prepared(&stmt, &[], None).unwrap();
        let s = db.feedback_stats();
        assert!(s.enabled);
        assert!(s.observations > 0, "{s:?}");
        assert_eq!(s.applications, 1, "{s:?}");
        assert!(s.cells > 0, "{s:?}");
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"enabled\":true"), "{json}");
    }

    #[test]
    fn session_feedback_opt_in_works_without_the_global_switch() {
        let db = Database::in_memory(catalog());
        db.generate(11);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 4").unwrap();
        let opts = ExecOptions::new().with_feedback(true);
        let out = db.execute_prepared_opts(&stmt, &[], &opts, None).unwrap();
        assert!(!out.rows.is_empty());
        assert!(!db.feedback_enabled(), "global switch untouched");
        assert!(db.feedback_stats().observations > 0);
    }

    #[test]
    fn immaterial_feedback_does_not_bump_the_epoch() {
        use volcano_rel::{Cmp, ObservationKey};
        let db = Database::in_memory(catalog());
        let key = volcano_rel::term_key(&Cmp::eq(AttrId(0), 1i64));
        // First merge agrees with its own estimate: immaterial.
        let obs = [volcano_rel::Observation {
            key,
            observed: 0.01,
            estimated: 0.01,
        }];
        let before = db.epoch();
        assert!(!db.apply_feedback(&obs));
        assert_eq!(db.epoch(), before);
        // A wildly different observation is material and bumps.
        let obs = [volcano_rel::Observation {
            key,
            observed: 0.9,
            estimated: 0.01,
        }];
        assert!(db.apply_feedback(&obs));
        assert_eq!(db.epoch(), before + 1);
        assert_eq!(db.feedback_stats().epoch_bumps, 1);
        // Unknown keys are never restored.
        assert_eq!(ObservationKey::from_parts(7, 1), None);
    }

    #[test]
    fn feedback_memory_roundtrips_through_the_sidecar_codec() {
        let db = Database::in_memory(catalog());
        db.generate(11);
        db.set_feedback_enabled(true);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 4").unwrap();
        db.execute_prepared(&stmt, &[], None).unwrap();
        let cells = db.feedback_stats().cells;
        assert!(cells > 0);
        let bytes = db.export_feedback();
        // A fresh database restores the memory verbatim.
        let db2 = Database::in_memory(catalog());
        assert_eq!(db2.import_feedback(&bytes), cells as usize);
        assert_eq!(db2.feedback_stats().cells, cells);
        assert_eq!(
            db2.snapshot().catalog.feedback(),
            db.snapshot().catalog.feedback()
        );
        // Corrupt bytes degrade to a cold start.
        assert_eq!(db2.import_feedback(b"garbage"), 0);
        assert_eq!(db2.feedback_stats().cells, cells, "memory untouched");
    }

    #[test]
    fn disabling_the_cache_bypasses_and_clears() {
        let db = Database::in_memory(catalog());
        db.generate(9);
        let stmt = db.prepare("SELECT a FROM t WHERE a < 5").unwrap();
        db.execute_prepared(&stmt, &[], None).unwrap();
        assert_eq!(db.plan_cache().len(), 1);
        db.set_plan_cache_enabled(false);
        assert_eq!(db.plan_cache().len(), 0);
        let out = db.execute_prepared_traced(&stmt, &[], None, None).unwrap();
        assert_eq!(out.cache, "bypass");
        assert!(out.search.is_some());
        // Bypassed lookups touch no counters.
        assert_eq!(db.plan_cache().stats().lookups, 1);
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;
    use volcano_rel::ColumnDef;

    #[test]
    fn file_backed_database_round_trips() {
        let dir = std::env::temp_dir().join(format!("volcano_db_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut c = Catalog::new();
        c.add_table("t", 50.0, vec![ColumnDef::int("x", 10.0)]);
        let id = c.table_by_name("t").unwrap().id;
        let db = Database::on_disk(c, dir.join("db.pages"), 4).unwrap();
        db.generate(3);
        let rows: Vec<Tuple> = db
            .table(id)
            .scan_all()
            .iter()
            .map(|b| decode_row(b))
            .collect();
        assert_eq!(rows.len(), 50);
        db.flush();
        let (_, writes) = db.io_stats();
        assert!(writes > 0, "flush must write dirty pages to the file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
