//! Lowering a gather subtree to parallel pipelines.
//!
//! A plan shape the optimizer placed under `gather(n)` consists of the
//! morsel-parallelizable operators only — scans, filters, projections,
//! and hash joins; every other implementation rule bails out of parallel
//! goals during search. Such a tree decomposes, exactly as in
//! morsel-driven designs, into *pipelines*: each hash join's build side
//! becomes its own pipeline terminating in a partitioned hash-table
//! **build sink**, and the probe sides fuse with the scans, filters and
//! projections around them into chains of [`Stage`]s. The last pipeline
//! feeds the region's output.
//!
//! [`compile_parallel`] returns `None` when the subtree contains any
//! other operator — the caller then degrades the gather to a serial
//! pass-through, which is always semantically correct (the degree is a
//! performance property, not a semantic one).

use std::sync::Arc;

use volcano_rel::catalog::ColType;
use volcano_rel::{RelAlg, RelPlan};
use volcano_store::HeapFile;

use crate::compile::{
    compile_agg_spec, compile_pred, position, schema_of_at, table_col_types, table_schema,
};
use crate::database::SchemaSnapshot;
use crate::fused::FusedPred;
use crate::ops::{CompiledAgg, CompiledPred};

/// The scan feeding a pipeline: a heap file whose pages are dispensed as
/// morsels, decoded straight into typed columns, with an optional fused
/// predicate (mirrors [`crate::ops::BatchScan`]).
pub(crate) struct ScanSpec {
    pub(crate) heap: Arc<HeapFile>,
    pub(crate) col_types: Vec<ColType>,
    pub(crate) pred: Option<CompiledPred>,
}

/// One fused vectorized step of a pipeline, applied batch-at-a-time.
pub(crate) enum Stage {
    /// Narrow the selection vector with monomorphized predicate kernels
    /// (shared with the fused engine; falls back to the generic batch
    /// kernel on unexpected column shapes).
    Filter(FusedPred),
    /// Gather a subset/permutation of columns.
    Project(Vec<usize>),
    /// Probe the partitioned hash table built by an earlier pipeline;
    /// output columns are build ++ probe, as in the serial hash join.
    Probe {
        /// Index of the build pipeline (= its table slot).
        table: usize,
        /// Probe-side key column positions.
        keys: Vec<usize>,
    },
}

/// Where a pipeline's rows go.
pub(crate) enum Sink {
    /// Partition rows by key hash into table slot `table`.
    Build {
        /// Table slot this pipeline fills (equals its pipeline index).
        table: usize,
        /// Build-side key column positions.
        keys: Vec<usize>,
        /// Build-side column count (fixes the output shape even when
        /// the build side turns out empty).
        ncols: usize,
    },
    /// Accumulate rows into a worker-local group table; each worker
    /// emits its groups as *partial* aggregate rows (the layout of
    /// [`crate::kernels::agg::partial_positions`]) once the morsel
    /// queue runs dry. The final merge happens above the gather.
    PartialAgg {
        /// Group-by column positions in the pipeline's row shape.
        group: Vec<usize>,
        /// The aggregates, resolved to input column positions.
        aggs: Vec<CompiledAgg>,
    },
    /// Rows are the parallel region's output.
    Output,
}

/// One pipeline: a morsel-driven scan, a chain of fused stages, a sink.
pub(crate) struct Pipeline {
    pub(crate) source: ScanSpec,
    pub(crate) stages: Vec<Stage>,
    pub(crate) sink: Sink,
}

/// A compiled parallel region: build pipelines in dependency order,
/// then the output pipeline. Shared read-only by all workers.
pub struct ParallelPlan {
    pub(crate) pipelines: Vec<Pipeline>,
}

impl ParallelPlan {
    /// Number of pipelines (build pipelines plus the output pipeline).
    pub fn pipeline_count(&self) -> usize {
        self.pipelines.len()
    }
}

/// Lower the subtree under a gather node to parallel pipelines, or
/// `None` if it contains an operator with no morsel-parallel form (the
/// caller falls back to serial execution).
pub fn compile_parallel(sch: &SchemaSnapshot, plan: &RelPlan) -> Option<ParallelPlan> {
    // A partial aggregate at the root of the gather subtree terminates
    // the output pipeline in a per-worker aggregation sink: workers
    // accumulate locally across all their morsels and only group
    // summaries cross the gather.
    if let RelAlg::PartialHashAggregate(spec, _) = &plan.alg {
        let child = &plan.inputs[0];
        let mut pipelines = Vec::new();
        let (source, stages) = decompose(sch, child, &mut pipelines)?;
        let schema = schema_of_at(sch, child);
        let (group, aggs) = compile_agg_spec(&schema, spec);
        pipelines.push(Pipeline {
            source,
            stages,
            sink: Sink::PartialAgg { group, aggs },
        });
        return Some(ParallelPlan { pipelines });
    }
    let mut pipelines = Vec::new();
    let (source, stages) = decompose(sch, plan, &mut pipelines)?;
    pipelines.push(Pipeline {
        source,
        stages,
        sink: Sink::Output,
    });
    Some(ParallelPlan { pipelines })
}

/// Post-order decomposition. Hash-join build sides are pushed onto
/// `pipelines` (their slot index is their pipeline index — every build
/// pipeline is pushed the moment its slot is assigned, so the two
/// counters advance in lockstep); the current pipeline's stage chain is
/// returned and grows as the walk unwinds.
fn decompose(
    sch: &SchemaSnapshot,
    plan: &RelPlan,
    pipelines: &mut Vec<Pipeline>,
) -> Option<(ScanSpec, Vec<Stage>)> {
    match &plan.alg {
        RelAlg::FileScan(t) => Some((
            ScanSpec {
                heap: sch.table(*t).clone(),
                col_types: table_col_types(sch, *t),
                pred: None,
            },
            Vec::new(),
        )),
        RelAlg::FilterScan(t, pred) => {
            let schema = table_schema(sch, *t);
            Some((
                ScanSpec {
                    heap: sch.table(*t).clone(),
                    col_types: table_col_types(sch, *t),
                    pred: Some(compile_pred(&schema, pred)),
                },
                Vec::new(),
            ))
        }
        RelAlg::Filter(pred) => {
            let (src, mut stages) = decompose(sch, &plan.inputs[0], pipelines)?;
            let schema = schema_of_at(sch, &plan.inputs[0]);
            stages.push(Stage::Filter(FusedPred::compile(&compile_pred(
                &schema, pred,
            ))));
            Some((src, stages))
        }
        RelAlg::ProjectOp(attrs) => {
            let (src, mut stages) = decompose(sch, &plan.inputs[0], pipelines)?;
            let schema = schema_of_at(sch, &plan.inputs[0]);
            stages.push(Stage::Project(
                attrs.iter().map(|&a| position(&schema, a)).collect(),
            ));
            Some((src, stages))
        }
        RelAlg::HybridHashJoin(p) if !p.pairs().is_empty() => {
            // Build side (left) becomes its own pipeline ending in a
            // partitioned-build sink; the probe side continues the
            // current chain with a probe stage.
            let bschema = schema_of_at(sch, &plan.inputs[0]);
            let (bsrc, bstages) = decompose(sch, &plan.inputs[0], pipelines)?;
            let table = pipelines.len();
            pipelines.push(Pipeline {
                source: bsrc,
                stages: bstages,
                sink: Sink::Build {
                    table,
                    keys: p
                        .pairs()
                        .iter()
                        .map(|&(la, _)| position(&bschema, la))
                        .collect(),
                    ncols: bschema.len(),
                },
            });
            let pschema = schema_of_at(sch, &plan.inputs[1]);
            let (psrc, mut pstages) = decompose(sch, &plan.inputs[1], pipelines)?;
            pstages.push(Stage::Probe {
                table,
                keys: p
                    .pairs()
                    .iter()
                    .map(|&(_, ra)| position(&pschema, ra))
                    .collect(),
            });
            Some((psrc, pstages))
        }
        // Sorts, aggregates, set ops, merge/nested/multiway joins, index
        // scans, nested gathers: no morsel-parallel lowering.
        _ => None,
    }
}
