//! Work-stealing morsel dispenser.
//!
//! Morsels are dealt round-robin into per-worker queues up front, so in
//! the balanced case a worker only ever touches its own queue (one
//! uncontended lock per morsel). When a worker drains its queue it
//! steals from the *back* of a peer's queue — the classic deque
//! discipline: owners consume from the front (preserving page locality),
//! thieves take from the far end (taking the work the owner would reach
//! last). There are no producers after construction, so an empty sweep
//! over every queue means the pipeline's work is exhausted.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use super::{Morsel, MorselStats};

/// A fixed set of morsels dealt across per-worker queues, with stealing.
pub struct StealQueue {
    locals: Vec<Mutex<VecDeque<Morsel>>>,
    stats: Arc<MorselStats>,
    /// Chaos injection: panic when the cumulative dispatch count (shared
    /// via `stats`, so it spans a region's earlier pipelines) hits this.
    fail_at: Option<u64>,
}

impl StealQueue {
    /// Deal `morsels` round-robin across `workers` queues.
    pub fn new(
        morsels: Vec<Morsel>,
        workers: usize,
        stats: Arc<MorselStats>,
        fail_at: Option<u64>,
    ) -> Self {
        let workers = workers.max(1);
        let mut locals: Vec<VecDeque<Morsel>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, m) in morsels.into_iter().enumerate() {
            locals[i % workers].push_back(m);
        }
        StealQueue {
            locals: locals.into_iter().map(Mutex::new).collect(),
            stats,
            fail_at,
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Take the next morsel for `worker`: its own queue first, then a
    /// steal sweep over its peers. `None` means all work is dispensed.
    ///
    /// # Panics
    ///
    /// Panics when chaos injection is armed and this dispatch is the
    /// configured one — simulating a worker dying mid-query.
    pub fn pop(&self, worker: usize) -> Option<Morsel> {
        let n = self.locals.len();
        let mut picked = self.locals[worker]
            .lock()
            .unwrap()
            .pop_front()
            .map(|m| (m, false));
        if picked.is_none() {
            for k in 1..n {
                let peer = (worker + k) % n;
                if let Some(m) = self.locals[peer].lock().unwrap().pop_back() {
                    picked = Some((m, true));
                    break;
                }
            }
        }
        let (m, stolen) = picked?;
        let count = self.stats.record_dispatch(stolen);
        if self.fail_at == Some(count) {
            panic!("injected worker failure at morsel {count}");
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::partition_pages;
    use super::*;

    #[test]
    fn every_morsel_dispensed_exactly_once() {
        let stats = Arc::new(MorselStats::default());
        let q = StealQueue::new(partition_pages(17, 2), 4, stats.clone(), None);
        let mut seen = Vec::new();
        // Worker 3 drains everything: its own queue, then steals.
        while let Some(m) = q.pop(3) {
            seen.push(m);
        }
        seen.sort_by_key(|m| m.start);
        assert_eq!(seen, partition_pages(17, 2));
        assert_eq!(stats.dispatched(), 9);
        // 9 morsels round-robined over 4 workers put 2 (indices 3 and
        // 7) in worker 3's own queue; the rest were steals.
        assert_eq!(stats.stolen(), 9 - 2);
    }

    #[test]
    #[should_panic(expected = "injected worker failure at morsel 2")]
    fn chaos_injection_fires_on_the_nth_dispatch() {
        let stats = Arc::new(MorselStats::default());
        let q = StealQueue::new(partition_pages(8, 2), 1, stats, Some(2));
        assert!(q.pop(0).is_some());
        let _ = q.pop(0);
    }
}
