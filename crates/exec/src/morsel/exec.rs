//! Parallel pipeline execution: partitioned joins, workers, the gather
//! operator.
//!
//! Execution of a [`ParallelPlan`] proceeds pipeline by pipeline. Build
//! pipelines run to completion first (a hash join cannot probe an
//! unfinished table): a pool of scoped workers drains the pipeline's
//! morsel queue, each **partitioning** its rows by key hash into
//! per-worker buffers — no shared mutable state on the hot path — and a
//! second parallel pass merges each partition's buffers into the final
//! read-only [`JoinTable`]. The output pipeline then runs on detached
//! workers that stream result batches to the consumer over a bounded
//! channel, so the parallel region obeys the demand-driven
//! `open`/`next_batch`/`close` contract of every other operator (the
//! channel is Volcano's exchange in miniature: workers block when the
//! consumer falls behind).
//!
//! Worker panics (including injected chaos failures) are caught at the
//! worker boundary and surface as an error message to the consumer,
//! which re-raises on the query thread — never a deadlock, never a
//! silently truncated result.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use crossbeam::channel::{bounded, Receiver};
use volcano_core::fxhash::FxHashMap;

use crate::batch::{Batch, BatchOperator, Column};
use crate::compile::BatchConfig;
use crate::kernels::agg::{GroupScratch, GroupTable};
use crate::kernels::hash_join_keys;
use crate::ops::BatchScan;

use super::plan::{ParallelPlan, Pipeline, Sink, Stage};
use super::{partition_pages, MorselStats, StealQueue, DEFAULT_MORSEL_PAGES};

/// Number of hash partitions per join table. A power of two well above
/// any plausible worker count, so the parallel merge pass load-balances.
const PARTITIONS: usize = 32;

/// One hash partition of a build side: compacted columns plus buckets
/// of partition-local row indices keyed by the precomputed key hash.
#[derive(Default)]
struct JoinPart {
    cols: Vec<Column>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

/// An immutable partitioned hash-join table, shared by all probers.
pub(crate) struct JoinTable {
    parts: Vec<JoinPart>,
    /// Build-side key column positions (for exact-match verification).
    keys: Vec<usize>,
    /// Build-side column count (fixes output shape when the build side
    /// is empty).
    ncols: usize,
}

/// Per-worker partition buffer filled during the build phase.
#[derive(Default)]
struct PartBuffer {
    cols: Vec<Column>,
    /// Key hash of each buffered row (recomputing at merge would work
    /// but hashing is the build phase's hottest kernel).
    hashes: Vec<u64>,
}

/// Per-worker scratch reused across batches.
#[derive(Default)]
struct Scratch {
    hashes: Vec<Option<u64>>,
    sel: Vec<u32>,
    live: Vec<u32>,
    pred_sel: Vec<u32>,
    part_sel: Vec<Vec<u32>>,
    part_hash: Vec<Vec<u64>>,
    /// Per-partition (build rows, probe rows) match pairs.
    pairs: Vec<(Vec<u32>, Vec<u32>)>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            part_sel: (0..PARTITIONS).map(|_| Vec::new()).collect(),
            part_hash: (0..PARTITIONS).map(|_| Vec::new()).collect(),
            pairs: (0..PARTITIONS).map(|_| (Vec::new(), Vec::new())).collect(),
            ..Scratch::default()
        }
    }
}

impl JoinTable {
    /// Probe every live row of `input` and materialize matches into
    /// `out` (build columns ++ probe columns). Row order interleaves
    /// partitions, which is fine: the region delivers no order.
    fn probe_into(&self, input: &Batch, probe_keys: &[usize], out: &mut Batch, s: &mut Scratch) {
        hash_join_keys(input, probe_keys, &mut s.hashes, &mut s.sel);
        s.live.clear();
        s.live.extend_from_slice(input.live_indices(&mut s.sel));
        for (pb, pp) in s.pairs.iter_mut() {
            pb.clear();
            pp.clear();
        }
        for (pos, h) in s.hashes.iter().enumerate() {
            let Some(h) = *h else { continue };
            let part = &self.parts[(h as usize) % PARTITIONS];
            let Some(bucket) = part.buckets.get(&h) else {
                continue;
            };
            let phys = s.live[pos];
            for &b in bucket {
                let matches = self.keys.iter().zip(probe_keys).all(|(&bk, &pk)| {
                    part.cols[bk].rows_eq(b as usize, &input.columns[pk], phys as usize)
                });
                if matches {
                    let (pb, pp) = &mut s.pairs[(h as usize) % PARTITIONS];
                    pb.push(b);
                    pp.push(phys);
                }
            }
        }
        out.reset_columns(self.ncols + input.columns.len());
        let mut total = 0usize;
        for (p, (pb, pp)) in s.pairs.iter().enumerate() {
            if pb.is_empty() {
                continue;
            }
            for (o, src) in self.parts[p].cols.iter().enumerate() {
                out.columns[o].gather_from(src, Some(pb));
            }
            for (j, src) in input.columns.iter().enumerate() {
                out.columns[self.ncols + j].gather_from(src, Some(pp));
            }
            total += pb.len();
        }
        out.set_physical_rows(total);
    }
}

/// Scatter the live, non-NULL-keyed rows of `batch` into the worker's
/// per-partition buffers.
fn partition_batch(batch: &Batch, keys: &[usize], locals: &mut [PartBuffer], s: &mut Scratch) {
    hash_join_keys(batch, keys, &mut s.hashes, &mut s.sel);
    s.live.clear();
    s.live.extend_from_slice(batch.live_indices(&mut s.sel));
    for (ps, ph) in s.part_sel.iter_mut().zip(s.part_hash.iter_mut()) {
        ps.clear();
        ph.clear();
    }
    for (pos, h) in s.hashes.iter().enumerate() {
        if let Some(h) = *h {
            let p = (h as usize) % PARTITIONS;
            s.part_sel[p].push(s.live[pos]);
            s.part_hash[p].push(h);
        }
    }
    for (p, buf) in locals.iter_mut().enumerate() {
        if s.part_sel[p].is_empty() {
            continue;
        }
        if buf.cols.is_empty() {
            buf.cols = batch.columns.iter().map(Column::empty_like).collect();
        }
        for (dst, src) in buf.cols.iter_mut().zip(&batch.columns) {
            dst.gather_from(src, Some(&s.part_sel[p]));
        }
        buf.hashes.extend_from_slice(&s.part_hash[p]);
    }
}

/// Concatenate one partition's per-worker buffers and index it.
fn merge_partition(p: usize, worker_bufs: &[Vec<PartBuffer>]) -> JoinPart {
    let mut part = JoinPart::default();
    let mut count = 0u32;
    for bufs in worker_bufs {
        let b = &bufs[p];
        if b.hashes.is_empty() {
            continue;
        }
        if part.cols.is_empty() {
            part.cols = b.cols.iter().map(Column::empty_like).collect();
        }
        for (dst, src) in part.cols.iter_mut().zip(&b.cols) {
            dst.gather_from(src, None);
        }
        for (i, &h) in b.hashes.iter().enumerate() {
            part.buckets.entry(h).or_default().push(count + i as u32);
        }
        count += b.hashes.len() as u32;
    }
    part
}

/// Drive one worker through `pipe`: pop morsels until the queue is dry,
/// run the fused stage chain on each batch, hand non-empty results to
/// `emit`. `emit` returning `false` aborts (the consumer is gone).
fn run_pipeline(
    pipe: &Pipeline,
    tables: &[Arc<JoinTable>],
    queue: &StealQueue,
    worker: usize,
    batch_size: usize,
    emit: &mut dyn FnMut(&mut Batch) -> bool,
) {
    let pages = pipe.source.heap.pages();
    let mut scan = BatchScan::with_pages(
        pipe.source.heap.clone(),
        pipe.source.col_types.clone(),
        pipe.source.pred.clone(),
        batch_size,
        Vec::new(),
    );
    let mut s = Scratch::new();
    let mut cur = Batch::default();
    let mut tmp = Batch::default();
    while let Some(m) = queue.pop(worker) {
        let end = m.end.min(pages.len());
        scan.reset_pages(&pages[m.start.min(end)..end]);
        while scan.next_batch(&mut cur) {
            for stage in &pipe.stages {
                if cur.live_rows() == 0 {
                    break;
                }
                match stage {
                    Stage::Filter(pred) => {
                        pred.apply(&mut cur, &mut s.pred_sel);
                    }
                    Stage::Project(positions) => {
                        tmp.reset_columns(positions.len());
                        let sel = cur.sel.as_deref();
                        for (o, &p) in positions.iter().enumerate() {
                            tmp.columns[o].gather_from(&cur.columns[p], sel);
                        }
                        tmp.set_physical_rows(cur.live_rows());
                        std::mem::swap(&mut cur, &mut tmp);
                    }
                    Stage::Probe { table, keys } => {
                        tables[*table].probe_into(&cur, keys, &mut tmp, &mut s);
                        std::mem::swap(&mut cur, &mut tmp);
                    }
                }
            }
            if cur.live_rows() > 0 && !emit(&mut cur) {
                return;
            }
        }
    }
}

/// Run one build pipeline to completion on `degree` scoped workers and
/// merge the result into an immutable [`JoinTable`].
#[allow(clippy::too_many_arguments)]
fn build_table(
    pipe: &Pipeline,
    tables: &[Arc<JoinTable>],
    keys: &[usize],
    ncols: usize,
    degree: usize,
    morsel_pages: usize,
    batch_size: usize,
    stats: &Arc<MorselStats>,
    fail_at: Option<u64>,
) -> JoinTable {
    let n_pages = pipe.source.heap.pages().len();
    let queue = StealQueue::new(
        partition_pages(n_pages, morsel_pages),
        degree,
        stats.clone(),
        fail_at,
    );
    let collected: Mutex<Vec<Vec<PartBuffer>>> = Mutex::new(Vec::new());
    // The scope join is the phase barrier: every worker is joined
    // explicitly so a panicking worker's *original* payload (e.g. an
    // injected chaos failure) reaches the consumer after the survivors
    // drain, instead of the scope's generic panic message.
    thread::scope(|sc| {
        let handles: Vec<_> = (0..degree)
            .map(|w| {
                let queue = &queue;
                let collected = &collected;
                sc.spawn(move || {
                    let mut locals: Vec<PartBuffer> =
                        (0..PARTITIONS).map(|_| PartBuffer::default()).collect();
                    let mut s = Scratch::new();
                    run_pipeline(pipe, tables, queue, w, batch_size, &mut |b| {
                        partition_batch(b, keys, &mut locals, &mut s);
                        true
                    });
                    collected.lock().unwrap().push(locals);
                })
            })
            .collect();
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for h in handles {
            if let Err(p) = h.join() {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
    });
    let worker_bufs = collected.into_inner().unwrap();
    let parts: Vec<Mutex<JoinPart>> = (0..PARTITIONS)
        .map(|_| Mutex::new(JoinPart::default()))
        .collect();
    let next = AtomicUsize::new(0);
    let merge_degree = degree.min(PARTITIONS);
    stats.record_merge_workers(merge_degree as u32);
    thread::scope(|sc| {
        for _ in 0..merge_degree {
            let next = &next;
            let parts = &parts;
            let worker_bufs = &worker_bufs;
            let stats = &stats;
            sc.spawn(move || loop {
                let p = next.fetch_add(1, Ordering::Relaxed);
                if p >= PARTITIONS {
                    break;
                }
                *parts[p].lock().unwrap() = merge_partition(p, worker_bufs);
                stats.record_partition_merge();
            });
        }
    });
    JoinTable {
        parts: parts.into_iter().map(|m| m.into_inner().unwrap()).collect(),
        keys: keys.to_vec(),
        ncols,
    }
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// The batch operator at the root of a morsel-parallel region.
///
/// `open` runs the plan's build pipelines to completion on scoped
/// workers, then spawns the output pipeline's worker pool; `next_batch`
/// receives result batches from the pool over a bounded channel, in
/// whatever order workers produce them. A worker panic is re-raised on
/// the consuming thread with the worker's message. Serial consumers
/// therefore see an ordinary [`BatchOperator`] — parallelism stays
/// encapsulated behind the gather, exactly as the exchange operator
/// encapsulates it in Volcano.
pub struct ParallelGather {
    plan: Arc<ParallelPlan>,
    degree: usize,
    batch_size: usize,
    morsel_pages: usize,
    fail_morsel: Option<u64>,
    stats: Arc<MorselStats>,
    rx: Option<Receiver<Result<Batch, String>>>,
    workers: Vec<thread::JoinHandle<()>>,
    batches_out: u64,
    rows_out: u64,
}

impl ParallelGather {
    /// A gather over `plan` with a pool of `degree` workers.
    pub fn new(plan: Arc<ParallelPlan>, degree: usize, cfg: BatchConfig) -> Self {
        let degree = degree.max(1);
        let stats = Arc::new(MorselStats::default());
        stats.set_workers(degree as u32);
        ParallelGather {
            plan,
            degree,
            batch_size: cfg.batch_size.max(1),
            morsel_pages: cfg.morsel_pages.unwrap_or(DEFAULT_MORSEL_PAGES).max(1),
            fail_morsel: cfg.fail_morsel,
            stats,
            rx: None,
            workers: Vec::new(),
            batches_out: 0,
            rows_out: 0,
        }
    }

    /// The region's scheduling counters (shared, live during execution).
    pub fn stats(&self) -> Arc<MorselStats> {
        self.stats.clone()
    }

    /// Tear down the worker pool: dropping the receiver first fails all
    /// pending sends, so blocked workers exit before we join them.
    fn shutdown(&mut self) {
        self.rx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl BatchOperator for ParallelGather {
    fn open(&mut self) {
        self.shutdown();
        let (output, builds) = self
            .plan
            .pipelines
            .split_last()
            .expect("a parallel plan has at least its output pipeline");
        let mut tables: Vec<Arc<JoinTable>> = Vec::new();
        for pipe in builds {
            let Sink::Build { table, keys, ncols } = &pipe.sink else {
                unreachable!("non-terminal pipelines end in a build sink")
            };
            debug_assert_eq!(*table, tables.len(), "build slots are pipeline indices");
            tables.push(Arc::new(build_table(
                pipe,
                &tables,
                keys,
                *ncols,
                self.degree,
                self.morsel_pages,
                self.batch_size,
                &self.stats,
                self.fail_morsel,
            )));
        }
        let queue = Arc::new(StealQueue::new(
            partition_pages(output.source.heap.pages().len(), self.morsel_pages),
            self.degree,
            self.stats.clone(),
            self.fail_morsel,
        ));
        let tables = Arc::new(tables);
        let (tx, rx) = bounded::<Result<Batch, String>>(self.degree * 2);
        for w in 0..self.degree {
            let plan = self.plan.clone();
            let tables = tables.clone();
            let queue = queue.clone();
            let tx = tx.clone();
            let batch_size = self.batch_size;
            self.workers.push(thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let pipe = plan.pipelines.last().expect("output pipeline");
                    match &pipe.sink {
                        // Two-phase aggregation: fold every morsel into a
                        // worker-local group table, then ship the partial
                        // groups once the queue is dry — only summaries
                        // cross the gather.
                        Sink::PartialAgg { group, aggs } => {
                            let mut table = GroupTable::new(group.len(), aggs);
                            let mut scratch = GroupScratch::default();
                            run_pipeline(pipe, &tables, &queue, w, batch_size, &mut |b| {
                                table.accumulate(b, group, aggs, &mut scratch);
                                true
                            });
                            let mut out = Batch::default();
                            let mut from = 0;
                            while from < table.len() {
                                let to = (from + batch_size).min(table.len());
                                table.emit(from..to, aggs, true, &mut out);
                                if tx.send(Ok(std::mem::take(&mut out))).is_err() {
                                    break;
                                }
                                from = to;
                            }
                        }
                        _ => {
                            run_pipeline(pipe, &tables, &queue, w, batch_size, &mut |b| {
                                tx.send(Ok(std::mem::take(b))).is_ok()
                            });
                        }
                    }
                }));
                if let Err(p) = result {
                    // Consumer gone is fine — the panic dies with us.
                    let _ = tx.send(Err(panic_message(p.as_ref())));
                }
            }));
        }
        self.rx = Some(rx);
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        out.clear();
        let Some(rx) = &self.rx else { return false };
        let received = rx.recv();
        match received {
            Ok(Ok(b)) => {
                self.batches_out += 1;
                self.rows_out += b.live_rows() as u64;
                *out = b;
                true
            }
            Ok(Err(msg)) => {
                self.shutdown();
                panic!("morsel worker failed: {msg}");
            }
            // Every sender dropped: the pool drained all morsels.
            Err(_) => {
                self.shutdown();
                false
            }
        }
    }

    fn close(&mut self) {
        self.shutdown();
    }

    fn name(&self) -> &'static str {
        "parallel_gather"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("workers", u64::from(self.stats.workers())),
            ("morsels_dispatched", self.stats.dispatched()),
            ("morsels_stolen", self.stats.stolen()),
            ("partition_merges", self.stats.partition_merges()),
            ("merge_workers", u64::from(self.stats.merge_workers())),
            ("batches", self.batches_out),
            ("rows", self.rows_out),
        ]
    }
}

impl Drop for ParallelGather {
    fn drop(&mut self) {
        self.shutdown();
    }
}
