//! Morsel-driven parallel execution for the batch engine.
//!
//! A `gather(n)` node in a physical plan marks its subtree as a
//! *parallel region*: the optimizer placed the enforcer there because
//! dividing the subtree's work across `n` workers paid for the worker
//! startup and row-gathering overhead the cost model charges. This
//! module is the execution-side counterpart of that promise, in the
//! style of morsel-driven parallelism (Leis et al., SIGMOD 2014) layered
//! over Volcano's exchange-based parallelism model: the region is
//! decomposed into *pipelines* over shared read-only state, each
//! pipeline's scan is split into page-range **morsels**, and a
//! work-stealing scheduler hands morsels to a pool of workers that run
//! the compiled pipeline stages batch-at-a-time.
//!
//! The lowering ([`compile_parallel`]) accepts exactly the plan shapes
//! the optimizer can place under a gather — scans, filters, projections,
//! and hash joins (everything else bails out of parallel goals during
//! search) — and produces a [`ParallelPlan`]: a sequence of build
//! pipelines that fill partitioned hash-join tables, followed by one
//! output pipeline. [`ParallelGather`] executes it as a
//! [`crate::batch::BatchOperator`], so a parallel region composes with
//! the rest of a (serial) operator tree exactly like any other source.
//!
//! Ordering: a parallel region delivers rows in a nondeterministic
//! interleaving (the optimizer models this — `gather` delivers no sort
//! order, so sorts are planned above it). The *multiset* of rows is
//! identical to serial execution, which the differential suite checks.

mod exec;
mod plan;
mod queue;

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

pub use exec::ParallelGather;
pub use plan::{compile_parallel, ParallelPlan};
pub use queue::StealQueue;

/// Pages per morsel when [`crate::compile::BatchConfig`] does not
/// override it. Small enough to balance skewed filters across workers,
/// large enough that a morsel amortizes queue traffic over many rows.
pub const DEFAULT_MORSEL_PAGES: usize = 4;

/// A morsel: a half-open range `[start, end)` of *page indices* into a
/// heap file's page list — the unit of work-stealing dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Index of the first page in the range.
    pub start: usize,
    /// One past the index of the last page in the range.
    pub end: usize,
}

impl Morsel {
    /// Number of pages in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the morsel covers no pages (never produced by
    /// [`partition_pages`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Split `n_pages` pages into morsels of `morsel_pages` pages each (the
/// last morsel takes the remainder). Invariants, property-tested by the
/// suite: morsels are contiguous, non-empty, non-overlapping, and their
/// union is exactly `0..n_pages`; zero pages yield zero morsels.
pub fn partition_pages(n_pages: usize, morsel_pages: usize) -> Vec<Morsel> {
    let step = morsel_pages.max(1);
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < n_pages {
        let end = start.saturating_add(step).min(n_pages);
        out.push(Morsel { start, end });
        start = end;
    }
    out
}

/// Shared counters for one parallel region's morsel scheduling,
/// aggregated lock-free by the workers. One instance spans all of a
/// gather's pipelines (build and output phases alike), and survives the
/// operator for `EXPLAIN ANALYZE` / trace reporting.
#[derive(Debug, Default)]
pub struct MorselStats {
    dispatched: AtomicU64,
    stolen: AtomicU64,
    workers: AtomicU32,
    partition_merges: AtomicU64,
    merge_workers: AtomicU32,
}

impl MorselStats {
    /// Morsels handed to workers so far, across all pipelines.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Morsels a worker took from another worker's local queue.
    pub fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Worker-pool degree of the region.
    pub fn workers(&self) -> u32 {
        self.workers.load(Ordering::Relaxed)
    }

    pub(crate) fn set_workers(&self, n: u32) {
        self.workers.store(n, Ordering::Relaxed);
    }

    /// Count one dispatch; returns the cumulative dispatch count
    /// (1-based) for chaos-injection bookkeeping.
    pub(crate) fn record_dispatch(&self, stolen: bool) -> u64 {
        if stolen {
            self.stolen.fetch_add(1, Ordering::Relaxed);
        }
        self.dispatched.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Hash-table partitions merged in parallel across all of the
    /// region's join builds (each partition is claimed and merged by
    /// exactly one merge worker).
    pub fn partition_merges(&self) -> u64 {
        self.partition_merges.load(Ordering::Relaxed)
    }

    /// Peak number of workers that participated in one build's
    /// partition-merge phase — the evidence that merging ran in
    /// parallel, not serially on one thread.
    pub fn merge_workers(&self) -> u32 {
        self.merge_workers.load(Ordering::Relaxed)
    }

    pub(crate) fn record_partition_merge(&self) {
        self.partition_merges.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_merge_workers(&self, n: u32) {
        self.merge_workers.fetch_max(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_page_once() {
        let ms = partition_pages(10, 4);
        assert_eq!(
            ms,
            vec![
                Morsel { start: 0, end: 4 },
                Morsel { start: 4, end: 8 },
                Morsel { start: 8, end: 10 },
            ]
        );
        assert!(ms.iter().all(|m| !m.is_empty()));
        assert_eq!(ms.iter().map(Morsel::len).sum::<usize>(), 10);
    }

    #[test]
    fn partition_edge_cases() {
        assert!(partition_pages(0, 4).is_empty());
        // Zero morsel size is clamped to one page per morsel.
        assert_eq!(partition_pages(3, 0).len(), 3);
        // A huge morsel size yields a single whole-table morsel and
        // must not overflow.
        assert_eq!(
            partition_pages(7, usize::MAX),
            vec![Morsel { start: 0, end: 7 }]
        );
    }
}
