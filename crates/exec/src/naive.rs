//! A direct evaluator for *logical* algebra expressions.
//!
//! Slow and obviously correct: this is the oracle the optimized plans are
//! validated against (same database in, same multiset of rows out,
//! whatever plan the optimizer chose).

use std::collections::{HashMap, HashSet};

use volcano_rel::value::Tuple;
use volcano_rel::{AggFunc, AttrId, RelExpr, RelOp, Value};

use crate::database::{decode_row, Database};

/// Rows plus their schema (attribute ids in position order).
pub struct Evaluated {
    /// Result rows (order unspecified).
    pub rows: Vec<Tuple>,
    /// Output schema.
    pub schema: Vec<AttrId>,
}

fn position(schema: &[AttrId], attr: AttrId) -> usize {
    schema
        .iter()
        .position(|&a| a == attr)
        .unwrap_or_else(|| panic!("attribute {attr:?} not in schema {schema:?}"))
}

/// Evaluate a logical expression directly (no optimization).
pub fn evaluate_logical(db: &Database, expr: &RelExpr) -> Evaluated {
    match &expr.op {
        RelOp::Get(t) => {
            let schema = db
                .catalog()
                .table(*t)
                .columns
                .iter()
                .map(|c| c.attr)
                .collect();
            let rows = db
                .table(*t)
                .scan_all()
                .iter()
                .map(|b| decode_row(b))
                .collect();
            Evaluated { rows, schema }
        }
        RelOp::Select(p) => {
            let input = evaluate_logical(db, &expr.inputs[0]);
            let terms: Vec<(usize, _, _)> = p
                .terms()
                .iter()
                .map(|c| (position(&input.schema, c.attr), c.op, c.value.clone()))
                .collect();
            let rows = input
                .rows
                .into_iter()
                .filter(|t| {
                    terms.iter().all(|(pos, op, lit)| {
                        t[*pos].sql_cmp(lit).map(|o| op.eval(o)).unwrap_or(false)
                    })
                })
                .collect();
            Evaluated {
                rows,
                schema: input.schema,
            }
        }
        RelOp::Project(attrs) => {
            let input = evaluate_logical(db, &expr.inputs[0]);
            let positions: Vec<usize> = attrs.iter().map(|&a| position(&input.schema, a)).collect();
            let rows = input
                .rows
                .into_iter()
                .map(|t| positions.iter().map(|&i| t[i].clone()).collect())
                .collect();
            Evaluated {
                rows,
                schema: attrs.clone(),
            }
        }
        RelOp::Join(p) => {
            let l = evaluate_logical(db, &expr.inputs[0]);
            let r = evaluate_logical(db, &expr.inputs[1]);
            let pairs: Vec<(usize, usize)> = p
                .pairs()
                .iter()
                .map(|&(la, ra)| (position(&l.schema, la), position(&r.schema, ra)))
                .collect();
            let mut rows = Vec::new();
            for lt in &l.rows {
                for rt in &r.rows {
                    let ok = pairs.iter().all(|&(lp, rp)| {
                        lt[lp]
                            .sql_cmp(&rt[rp])
                            .map(|o| o == std::cmp::Ordering::Equal)
                            .unwrap_or(false)
                    });
                    if ok {
                        let mut row = lt.clone();
                        row.extend(rt.iter().cloned());
                        rows.push(row);
                    }
                }
            }
            let mut schema = l.schema;
            schema.extend(r.schema);
            Evaluated { rows, schema }
        }
        RelOp::Union => {
            let l = evaluate_logical(db, &expr.inputs[0]);
            let r = evaluate_logical(db, &expr.inputs[1]);
            let mut rows = l.rows;
            rows.extend(r.rows);
            Evaluated {
                rows,
                schema: l.schema,
            }
        }
        RelOp::Intersect => {
            let l = evaluate_logical(db, &expr.inputs[0]);
            let r = evaluate_logical(db, &expr.inputs[1]);
            let rset: HashSet<Tuple> = r.rows.into_iter().collect();
            let mut seen = HashSet::new();
            let rows = l
                .rows
                .into_iter()
                .filter(|t| rset.contains(t) && seen.insert(t.clone()))
                .collect();
            Evaluated {
                rows,
                schema: l.schema,
            }
        }
        RelOp::Difference => {
            let l = evaluate_logical(db, &expr.inputs[0]);
            let r = evaluate_logical(db, &expr.inputs[1]);
            let rset: HashSet<Tuple> = r.rows.into_iter().collect();
            let mut seen = HashSet::new();
            let rows = l
                .rows
                .into_iter()
                .filter(|t| !rset.contains(t) && seen.insert(t.clone()))
                .collect();
            Evaluated {
                rows,
                schema: l.schema,
            }
        }
        RelOp::Aggregate(spec) => {
            let input = evaluate_logical(db, &expr.inputs[0]);
            let gpos: Vec<usize> = spec
                .group_by
                .iter()
                .map(|&a| position(&input.schema, a))
                .collect();
            let mut groups: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
            for t in input.rows {
                let key = gpos.iter().map(|&i| t[i].clone()).collect();
                groups.entry(key).or_default().push(t);
            }
            if groups.is_empty() && spec.group_by.is_empty() {
                groups.insert(vec![], vec![]);
            }
            let mut rows = Vec::new();
            for (key, members) in groups {
                let mut row = key;
                for (f, _) in &spec.aggs {
                    row.push(eval_agg(f, &members, &input.schema));
                }
                rows.push(row);
            }
            let mut schema = spec.group_by.clone();
            schema.extend(spec.aggs.iter().map(|&(_, out)| out));
            Evaluated { rows, schema }
        }
        RelOp::PartialAggregate(_) | RelOp::FinalAggregate(_) => {
            // These only exist inside the optimizer's search space (the
            // aggregate-split transformation); user-facing logical
            // expressions never contain them.
            panic!("partial/final aggregate in a logical expression")
        }
    }
}

fn eval_agg(f: &AggFunc, members: &[Tuple], schema: &[AttrId]) -> Value {
    match f {
        AggFunc::CountStar => Value::Int(members.len() as i64),
        AggFunc::Sum(a) => {
            let pos = position(schema, *a);
            let mut s = crate::kernels::agg::SumState::default();
            for t in members {
                s.add_value(&t[pos]);
            }
            s.value()
        }
        AggFunc::Min(a) => {
            let pos = position(schema, *a);
            members
                .iter()
                .map(|t| &t[pos])
                .filter(|v| !v.is_null())
                .min()
                .cloned()
                .unwrap_or(Value::Null)
        }
        AggFunc::Max(a) => {
            let pos = position(schema, *a);
            members
                .iter()
                .map(|t| &t[pos])
                .filter(|v| !v.is_null())
                .max()
                .cloned()
                .unwrap_or(Value::Null)
        }
        AggFunc::Avg(a) => {
            let pos = position(schema, *a);
            let mut s = crate::kernels::agg::SumState::default();
            let mut n = 0i64;
            for t in members {
                if s.add_value(&t[pos]) {
                    n += 1;
                }
            }
            if n > 0 {
                Value::float(s.total_f64() / n as f64)
            } else {
                Value::Null
            }
        }
    }
}

/// Order-insensitive multiset equality of row sets; panics with a helpful
/// message on mismatch. Used by tests comparing optimized execution
/// against this oracle.
pub fn assert_same_rows(mut a: Vec<Tuple>, mut b: Vec<Tuple>) {
    a.sort();
    b.sort();
    assert_eq!(
        a.len(),
        b.len(),
        "row counts differ: {} vs {}",
        a.len(),
        b.len()
    );
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y, "row mismatch");
    }
}
