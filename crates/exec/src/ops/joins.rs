//! Join algorithms: merge join, hash join, nested loops.

use std::collections::HashMap;

use volcano_rel::value::Tuple;
use volcano_rel::Value;

use crate::iterator::{BoxedOperator, Operator};

fn key_of(t: &Tuple, keys: &[usize]) -> Vec<Value> {
    keys.iter().map(|&i| t[i].clone()).collect()
}

fn concat(l: &Tuple, r: &Tuple) -> Tuple {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend(l.iter().cloned());
    out.extend(r.iter().cloned());
    out
}

/// Merge join over inputs sorted on the respective key positions.
/// Handles duplicate key groups by buffering the right group and
/// producing the cross product with each matching left tuple.
pub struct MergeJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    lkeys: Vec<usize>,
    rkeys: Vec<usize>,
    left_cur: Option<Tuple>,
    right_cur: Option<Tuple>,
    /// The buffered right group currently matching `group_key`.
    right_group: Vec<Tuple>,
    group_key: Vec<Value>,
    emit_idx: usize,
    emitting: bool,
    /// Key groups buffered from the right input (cumulative).
    groups_buffered: u64,
    /// Largest right group buffered at once.
    max_group_rows: u64,
}

impl MergeJoin {
    /// Join sorted `left` and `right` on the key positions.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        lkeys: Vec<usize>,
        rkeys: Vec<usize>,
    ) -> Self {
        assert_eq!(lkeys.len(), rkeys.len());
        assert!(!lkeys.is_empty(), "merge join needs at least one key");
        MergeJoin {
            left,
            right,
            lkeys,
            rkeys,
            left_cur: None,
            right_cur: None,
            right_group: Vec::new(),
            group_key: Vec::new(),
            emit_idx: 0,
            emitting: false,
            groups_buffered: 0,
            max_group_rows: 0,
        }
    }
}

impl Operator for MergeJoin {
    fn open(&mut self) {
        self.left.open();
        self.right.open();
        self.left_cur = self.left.next();
        self.right_cur = self.right.next();
        self.right_group.clear();
        self.emitting = false;
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            // Emit pending (left tuple × buffered right group) pairs.
            if self.emitting {
                if self.emit_idx < self.right_group.len() {
                    let l = self.left_cur.as_ref().expect("emitting requires left");
                    let out = concat(l, &self.right_group[self.emit_idx]);
                    self.emit_idx += 1;
                    return Some(out);
                }
                // Advance left; if its key still matches the buffered
                // group, re-emit; otherwise leave emission mode.
                self.emitting = false;
                self.left_cur = self.left.next();
                if let Some(l) = &self.left_cur {
                    if key_of(l, &self.lkeys) == self.group_key {
                        self.emit_idx = 0;
                        self.emitting = true;
                        continue;
                    }
                }
                self.right_group.clear();
            }

            let l = self.left_cur.as_ref()?;
            let r = match &self.right_cur {
                Some(r) => r,
                None => return None,
            };
            let lk = key_of(l, &self.lkeys);
            let rk = key_of(r, &self.rkeys);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => {
                    self.left_cur = self.left.next();
                }
                std::cmp::Ordering::Greater => {
                    self.right_cur = self.right.next();
                }
                std::cmp::Ordering::Equal => {
                    // Buffer the whole right group with this key.
                    self.group_key = rk;
                    self.right_group.clear();
                    loop {
                        let r = self.right_cur.take().expect("group head present");
                        self.right_group.push(r);
                        self.right_cur = self.right.next();
                        match &self.right_cur {
                            Some(r2) if key_of(r2, &self.rkeys) == self.group_key => {}
                            _ => break,
                        }
                    }
                    self.groups_buffered += 1;
                    self.max_group_rows = self.max_group_rows.max(self.right_group.len() as u64);
                    self.emit_idx = 0;
                    self.emitting = true;
                }
            }
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.right_group.clear();
    }

    fn name(&self) -> &'static str {
        "merge_join"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("groups_buffered", self.groups_buffered),
            ("max_group_rows", self.max_group_rows),
        ]
    }
}

/// Hash join: builds a table on the left input, probes with the right.
/// Output order is the probe order (treated as unordered by the model).
pub struct HashJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    lkeys: Vec<usize>,
    rkeys: Vec<usize>,
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    probe: Option<Tuple>,
    match_idx: usize,
    /// Rows hashed into the build table (cumulative across re-opens).
    build_rows: u64,
    /// Probe rows consumed from the right input (cumulative).
    probe_rows: u64,
}

impl HashJoin {
    /// Join `left` (build) and `right` (probe) on the key positions.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        lkeys: Vec<usize>,
        rkeys: Vec<usize>,
    ) -> Self {
        assert_eq!(lkeys.len(), rkeys.len());
        assert!(!lkeys.is_empty(), "hash join needs at least one key");
        HashJoin {
            left,
            right,
            lkeys,
            rkeys,
            table: HashMap::new(),
            probe: None,
            match_idx: 0,
            build_rows: 0,
            probe_rows: 0,
        }
    }
}

impl Operator for HashJoin {
    fn open(&mut self) {
        self.left.open();
        self.table.clear();
        while let Some(t) = self.left.next() {
            // NULL keys never join (SQL semantics).
            let k = key_of(&t, &self.lkeys);
            if k.iter().any(Value::is_null) {
                continue;
            }
            self.build_rows += 1;
            self.table.entry(k).or_default().push(t);
        }
        self.left.close();
        self.right.open();
        self.probe = None;
        self.match_idx = 0;
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(p) = &self.probe {
                let k = key_of(p, &self.rkeys);
                if let Some(matches) = self.table.get(&k) {
                    if self.match_idx < matches.len() {
                        let out = concat(&matches[self.match_idx], p);
                        self.match_idx += 1;
                        return Some(out);
                    }
                }
            }
            self.probe = Some(self.right.next()?);
            self.probe_rows += 1;
            self.match_idx = 0;
            if self
                .probe
                .as_ref()
                .map(|p| key_of(p, &self.rkeys).iter().any(Value::is_null))
                .unwrap_or(false)
            {
                self.probe = None;
            }
        }
    }

    fn close(&mut self) {
        self.right.close();
        self.table.clear();
    }

    fn name(&self) -> &'static str {
        "hash_join"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("build_rows", self.build_rows),
            ("probe_rows", self.probe_rows),
        ]
    }
}

/// Tuple-at-a-time nested loops with an arbitrary equi-predicate
/// (possibly empty = Cartesian product). Preserves the outer (left)
/// order. The inner input is materialized at `open` (equivalent to
/// re-opening it per outer tuple, without the redundant work).
pub struct NestedLoops {
    left: BoxedOperator,
    right: BoxedOperator,
    /// `(left position, right position)` equality pairs; empty = cross.
    pairs: Vec<(usize, usize)>,
    inner: Vec<Tuple>,
    outer: Option<Tuple>,
    inner_idx: usize,
    /// Outer rows consumed (cumulative across re-opens).
    outer_rows: u64,
    /// Predicate evaluations over (outer, inner) pairs (cumulative).
    comparisons: u64,
}

impl NestedLoops {
    /// Join `left` (outer) and `right` (inner) on the pairs.
    pub fn new(left: BoxedOperator, right: BoxedOperator, pairs: Vec<(usize, usize)>) -> Self {
        NestedLoops {
            left,
            right,
            pairs,
            inner: Vec::new(),
            outer: None,
            inner_idx: 0,
            outer_rows: 0,
            comparisons: 0,
        }
    }
}

impl Operator for NestedLoops {
    fn open(&mut self) {
        self.right.open();
        self.inner.clear();
        while let Some(t) = self.right.next() {
            self.inner.push(t);
        }
        self.right.close();
        self.left.open();
        self.outer = None;
        self.inner_idx = 0;
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(o) = &self.outer {
                while self.inner_idx < self.inner.len() {
                    let i = &self.inner[self.inner_idx];
                    self.inner_idx += 1;
                    self.comparisons += 1;
                    let matches = self.pairs.iter().all(|&(lp, rp)| {
                        o[lp]
                            .sql_cmp(&i[rp])
                            .map(|ord| ord == std::cmp::Ordering::Equal)
                            .unwrap_or(false)
                    });
                    if matches {
                        return Some(concat(o, i));
                    }
                }
            }
            self.outer = Some(self.left.next()?);
            self.outer_rows += 1;
            self.inner_idx = 0;
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.inner.clear();
    }

    fn name(&self) -> &'static str {
        "nested_loops"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("outer_rows", self.outer_rows),
            ("comparisons", self.comparisons),
        ]
    }
}

/// Three-way hash join `(a ⋈ b) ⋈ c` in one operator: hash tables are
/// built on `a` (keyed by the inner join's left attributes) and on `b`
/// (keyed by the outer join's left attributes); each probe tuple from
/// `c` cascades through the `b` table into the `a` table, and the
/// intermediate `a ⋈ b` tuples are never constructed.
pub struct MultiWayHash {
    a: BoxedOperator,
    b: BoxedOperator,
    c: BoxedOperator,
    /// Key positions of the inner join: in `a` and in `b`.
    inner_a: Vec<usize>,
    inner_b: Vec<usize>,
    /// Key positions of the outer join: in `b` and in `c`.
    outer_b: Vec<usize>,
    outer_c: Vec<usize>,
    table_a: HashMap<Vec<Value>, Vec<Tuple>>,
    table_b: HashMap<Vec<Value>, Vec<Tuple>>,
    probe: Option<Tuple>,
    /// Pending (b-match index, a-match index) cursor for the current
    /// probe tuple.
    b_matches: Vec<Tuple>,
    b_idx: usize,
    a_idx: usize,
    /// Rows hashed into the `a` table (cumulative across re-opens).
    build_a_rows: u64,
    /// Rows hashed into the `b` table (cumulative).
    build_b_rows: u64,
    /// Probe rows consumed from `c` (cumulative).
    probe_rows: u64,
}

impl MultiWayHash {
    /// Build the operator.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        a: BoxedOperator,
        b: BoxedOperator,
        c: BoxedOperator,
        inner_a: Vec<usize>,
        inner_b: Vec<usize>,
        outer_b: Vec<usize>,
        outer_c: Vec<usize>,
    ) -> Self {
        assert_eq!(inner_a.len(), inner_b.len());
        assert_eq!(outer_b.len(), outer_c.len());
        assert!(!inner_a.is_empty() && !outer_b.is_empty());
        MultiWayHash {
            a,
            b,
            c,
            inner_a,
            inner_b,
            outer_b,
            outer_c,
            table_a: HashMap::new(),
            table_b: HashMap::new(),
            probe: None,
            b_matches: Vec::new(),
            b_idx: 0,
            a_idx: 0,
            build_a_rows: 0,
            build_b_rows: 0,
            probe_rows: 0,
        }
    }
}

impl Operator for MultiWayHash {
    fn open(&mut self) {
        self.a.open();
        self.table_a.clear();
        while let Some(t) = self.a.next() {
            let k = key_of(&t, &self.inner_a);
            if !k.iter().any(Value::is_null) {
                self.build_a_rows += 1;
                self.table_a.entry(k).or_default().push(t);
            }
        }
        self.a.close();
        self.b.open();
        self.table_b.clear();
        while let Some(t) = self.b.next() {
            let k = key_of(&t, &self.outer_b);
            if !k.iter().any(Value::is_null) {
                self.build_b_rows += 1;
                self.table_b.entry(k).or_default().push(t);
            }
        }
        self.b.close();
        self.c.open();
        self.probe = None;
        self.b_matches.clear();
        self.b_idx = 0;
        self.a_idx = 0;
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(p) = &self.probe {
                while self.b_idx < self.b_matches.len() {
                    let brow = &self.b_matches[self.b_idx];
                    let akey = key_of(brow, &self.inner_b);
                    if let Some(amatches) = self.table_a.get(&akey) {
                        if self.a_idx < amatches.len() {
                            let arow = &amatches[self.a_idx];
                            self.a_idx += 1;
                            let mut out = arow.clone();
                            out.extend(brow.iter().cloned());
                            out.extend(p.iter().cloned());
                            return Some(out);
                        }
                    }
                    self.b_idx += 1;
                    self.a_idx = 0;
                }
            }
            // Fetch the next probe tuple.
            let p = self.c.next()?;
            self.probe_rows += 1;
            let ck = key_of(&p, &self.outer_c);
            self.b_matches = if ck.iter().any(Value::is_null) {
                Vec::new()
            } else {
                self.table_b.get(&ck).cloned().unwrap_or_default()
            };
            self.b_idx = 0;
            self.a_idx = 0;
            self.probe = Some(p);
        }
    }

    fn close(&mut self) {
        self.c.close();
        self.table_a.clear();
        self.table_b.clear();
        self.b_matches.clear();
    }

    fn name(&self) -> &'static str {
        "multiway_hash_join"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("build_a_rows", self.build_a_rows),
            ("build_b_rows", self.build_b_rows),
            ("probe_rows", self.probe_rows),
        ]
    }
}
