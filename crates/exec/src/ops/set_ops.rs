//! Set operations: union (bag), intersection and difference (set
//! semantics), each in a hash-based and a merge-based variant.

use std::collections::HashSet;

use volcano_rel::value::Tuple;

use crate::iterator::{BoxedOperator, Operator};

/// Which set operation an operator performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// Bag union (UNION ALL): concatenation.
    Union,
    /// Set intersection with duplicate elimination.
    Intersect,
    /// Set difference (left \ right) with duplicate elimination.
    Difference,
}

/// Hash-based set operation; output unordered.
pub struct HashSetOp {
    kind: SetOpKind,
    left: BoxedOperator,
    right: BoxedOperator,
    /// For intersect/difference: the right side as a set, and the keys
    /// already emitted (duplicate elimination).
    right_set: HashSet<Tuple>,
    emitted: HashSet<Tuple>,
    /// For union: which phase we're in.
    left_done: bool,
    /// Rows materialized from the right input (cumulative).
    right_rows: u64,
}

impl HashSetOp {
    /// Build the operator.
    pub fn new(kind: SetOpKind, left: BoxedOperator, right: BoxedOperator) -> Self {
        HashSetOp {
            kind,
            left,
            right,
            right_set: HashSet::new(),
            emitted: HashSet::new(),
            left_done: false,
            right_rows: 0,
        }
    }
}

impl Operator for HashSetOp {
    fn open(&mut self) {
        self.left.open();
        self.left_done = false;
        self.emitted.clear();
        self.right_set.clear();
        match self.kind {
            SetOpKind::Union => {
                // Right side is opened lazily after the left drains.
            }
            SetOpKind::Intersect | SetOpKind::Difference => {
                self.right.open();
                while let Some(t) = self.right.next() {
                    self.right_rows += 1;
                    self.right_set.insert(t);
                }
                self.right.close();
            }
        }
    }

    fn next(&mut self) -> Option<Tuple> {
        match self.kind {
            SetOpKind::Union => {
                if !self.left_done {
                    if let Some(t) = self.left.next() {
                        return Some(t);
                    }
                    self.left_done = true;
                    self.right.open();
                }
                self.right.next()
            }
            SetOpKind::Intersect => loop {
                let t = self.left.next()?;
                if self.right_set.contains(&t) && self.emitted.insert(t.clone()) {
                    return Some(t);
                }
            },
            SetOpKind::Difference => loop {
                let t = self.left.next()?;
                if !self.right_set.contains(&t) && self.emitted.insert(t.clone()) {
                    return Some(t);
                }
            },
        }
    }

    fn close(&mut self) {
        self.left.close();
        if self.kind == SetOpKind::Union && self.left_done {
            self.right.close();
        }
        self.right_set.clear();
        self.emitted.clear();
    }

    fn name(&self) -> &'static str {
        match self.kind {
            SetOpKind::Union => "hash_union",
            SetOpKind::Intersect => "hash_intersect",
            SetOpKind::Difference => "hash_difference",
        }
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("right_rows", self.right_rows)]
    }
}

/// Merge-based set operation over inputs consistently sorted on all
/// columns ("an algorithm very similar to merge-join", §3); preserves
/// the sort order.
pub struct MergeSetOp {
    kind: SetOpKind,
    left: BoxedOperator,
    right: BoxedOperator,
    lcur: Option<Tuple>,
    rcur: Option<Tuple>,
}

impl MergeSetOp {
    /// Build the operator.
    pub fn new(kind: SetOpKind, left: BoxedOperator, right: BoxedOperator) -> Self {
        MergeSetOp {
            kind,
            left,
            right,
            lcur: None,
            rcur: None,
        }
    }

    /// Advance `lcur` past duplicates of `t` (set semantics).
    fn skip_left_dups(&mut self, t: &Tuple) {
        loop {
            self.lcur = self.left.next();
            match &self.lcur {
                Some(l) if l == t => continue,
                _ => break,
            }
        }
    }
}

impl Operator for MergeSetOp {
    fn open(&mut self) {
        self.left.open();
        self.right.open();
        self.lcur = self.left.next();
        self.rcur = self.right.next();
    }

    fn next(&mut self) -> Option<Tuple> {
        match self.kind {
            SetOpKind::Union => {
                // Bag union of two sorted streams, preserving order.
                match (&self.lcur, &self.rcur) {
                    (None, None) => None,
                    (Some(_), None) => {
                        let t = self.lcur.take();
                        self.lcur = self.left.next();
                        t
                    }
                    (None, Some(_)) => {
                        let t = self.rcur.take();
                        self.rcur = self.right.next();
                        t
                    }
                    (Some(l), Some(r)) => {
                        if l <= r {
                            let t = self.lcur.take();
                            self.lcur = self.left.next();
                            t
                        } else {
                            let t = self.rcur.take();
                            self.rcur = self.right.next();
                            t
                        }
                    }
                }
            }
            SetOpKind::Intersect => loop {
                let l = self.lcur.clone()?;
                let r = match &self.rcur {
                    Some(r) => r.clone(),
                    None => return None,
                };
                match l.cmp(&r) {
                    std::cmp::Ordering::Less => self.skip_left_dups(&l),
                    std::cmp::Ordering::Greater => self.rcur = self.right.next(),
                    std::cmp::Ordering::Equal => {
                        self.skip_left_dups(&l);
                        return Some(l);
                    }
                }
            },
            SetOpKind::Difference => loop {
                let l = self.lcur.clone()?;
                match &self.rcur {
                    None => {
                        self.skip_left_dups(&l);
                        return Some(l);
                    }
                    Some(r) => match l.cmp(r) {
                        std::cmp::Ordering::Less => {
                            self.skip_left_dups(&l);
                            return Some(l);
                        }
                        std::cmp::Ordering::Greater => {
                            self.rcur = self.right.next();
                        }
                        std::cmp::Ordering::Equal => {
                            self.skip_left_dups(&l);
                        }
                    },
                }
            },
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
    }

    fn name(&self) -> &'static str {
        match self.kind {
            SetOpKind::Union => "merge_union",
            SetOpKind::Intersect => "merge_intersect",
            SetOpKind::Difference => "merge_difference",
        }
    }
}
