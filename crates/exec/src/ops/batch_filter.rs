//! Standalone vectorized filter: narrows the child's selection vector
//! in place via the predicate kernel (no row movement at all).

use std::time::Instant;

use crate::batch::{Batch, BatchOperator, BoxedBatchOperator};
use crate::kernels::apply_pred;
use crate::ops::filter::CompiledPred;

/// The vectorized counterpart of [`crate::ops::Filter`];
/// order-preserving.
pub struct BatchFilter {
    child: BoxedBatchOperator,
    pred: CompiledPred,
    scratch: Vec<u32>,
    /// Input rows examined (cumulative across re-opens).
    rows_in: u64,
    /// Nanoseconds in the predicate kernel (cumulative).
    pred_ns: u64,
}

impl BatchFilter {
    /// Filter `child` by `pred`.
    pub fn new(child: BoxedBatchOperator, pred: CompiledPred) -> Self {
        BatchFilter {
            child,
            pred,
            scratch: Vec::new(),
            rows_in: 0,
            pred_ns: 0,
        }
    }
}

impl BatchOperator for BatchFilter {
    fn open(&mut self) {
        self.child.open();
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        if !self.child.next_batch(out) {
            return false;
        }
        self.rows_in += out.live_rows() as u64;
        let t0 = Instant::now();
        apply_pred(&self.pred, out, &mut self.scratch);
        self.pred_ns += t0.elapsed().as_nanos() as u64;
        true
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn name(&self) -> &'static str {
        "batch_filter"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_in", self.rows_in), ("pred_kernel_ns", self.pred_ns)]
    }
}
