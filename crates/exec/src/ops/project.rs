//! Column projection (no duplicate removal); order-preserving.

use volcano_rel::value::Tuple;
use volcano_rel::Value;

use crate::iterator::{BoxedOperator, Operator};

/// Keeps the listed input positions, in order.
pub struct Project {
    child: BoxedOperator,
    positions: Vec<usize>,
    /// No position repeats, so values can be *moved* out of the input
    /// tuple instead of cloned (decided once at construction).
    dup_free: bool,
}

impl Project {
    /// Project `child` onto `positions`.
    pub fn new(child: BoxedOperator, positions: Vec<usize>) -> Self {
        let mut seen = positions.clone();
        seen.sort_unstable();
        seen.dedup();
        let dup_free = seen.len() == positions.len();
        Project {
            child,
            positions,
            dup_free,
        }
    }
}

impl Operator for Project {
    fn open(&mut self) {
        self.child.open();
    }

    fn next(&mut self) -> Option<Tuple> {
        let mut t = self.child.next()?;
        if self.dup_free {
            // Identity projection: pass the tuple through untouched.
            if self.positions.len() == t.len()
                && self.positions.iter().enumerate().all(|(i, &p)| i == p)
            {
                return Some(t);
            }
            // Move the kept values out; the dropped ones free with `t`.
            Some(
                self.positions
                    .iter()
                    .map(|&i| std::mem::replace(&mut t[i], Value::Null))
                    .collect(),
            )
        } else {
            Some(self.positions.iter().map(|&i| t[i].clone()).collect())
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn name(&self) -> &'static str {
        "project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canned-rows test source.
    struct Rows(Vec<Tuple>, usize);

    impl Operator for Rows {
        fn open(&mut self) {
            self.1 = 0;
        }
        fn next(&mut self) -> Option<Tuple> {
            let t = self.0.get(self.1).cloned();
            self.1 += 1;
            t
        }
        fn close(&mut self) {}
    }

    fn run(positions: Vec<usize>) -> Vec<Tuple> {
        let rows = vec![
            vec![Value::Int(1), Value::str("a"), Value::Null],
            vec![Value::Int(2), Value::str("b"), Value::Int(9)],
        ];
        let mut p = Project::new(Box::new(Rows(rows, 0)), positions);
        crate::iterator::collect(&mut p)
    }

    #[test]
    fn narrowing_projection_moves_values() {
        assert_eq!(
            run(vec![2, 0]),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Int(9), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn duplicate_positions_still_clone() {
        assert_eq!(
            run(vec![1, 1]),
            vec![
                vec![Value::str("a"), Value::str("a")],
                vec![Value::str("b"), Value::str("b")],
            ]
        );
    }

    #[test]
    fn identity_projection_is_pass_through() {
        assert_eq!(
            run(vec![0, 1, 2]),
            vec![
                vec![Value::Int(1), Value::str("a"), Value::Null],
                vec![Value::Int(2), Value::str("b"), Value::Int(9)],
            ]
        );
    }
}
