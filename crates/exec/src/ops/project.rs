//! Column projection (no duplicate removal); order-preserving.

use volcano_rel::value::Tuple;

use crate::iterator::{BoxedOperator, Operator};

/// Keeps the listed input positions, in order.
pub struct Project {
    child: BoxedOperator,
    positions: Vec<usize>,
}

impl Project {
    /// Project `child` onto `positions`.
    pub fn new(child: BoxedOperator, positions: Vec<usize>) -> Self {
        Project { child, positions }
    }
}

impl Operator for Project {
    fn open(&mut self) {
        self.child.open();
    }

    fn next(&mut self) -> Option<Tuple> {
        let t = self.child.next()?;
        Some(self.positions.iter().map(|&i| t[i].clone()).collect())
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn name(&self) -> &'static str {
        "project"
    }
}
