//! Vectorized projection: a column *gather*, not a per-row copy.
//!
//! The tuple projection builds a fresh `Vec<Value>` per row; here each
//! kept column is appended wholesale (compacting through the child's
//! selection vector), so the per-row cost is one typed push per kept
//! column and dropped columns are never touched.

use std::time::Instant;

use crate::batch::{Batch, BatchOperator, BoxedBatchOperator};

/// Keeps the listed input positions, in order; order-preserving.
pub struct BatchProject {
    child: BoxedBatchOperator,
    positions: Vec<usize>,
    /// Child output buffer, reused across calls.
    input: Batch,
    /// Nanoseconds in the gather kernel (cumulative).
    gather_ns: u64,
}

impl BatchProject {
    /// Project `child` onto `positions`.
    pub fn new(child: BoxedBatchOperator, positions: Vec<usize>) -> Self {
        BatchProject {
            child,
            positions,
            input: Batch::default(),
            gather_ns: 0,
        }
    }
}

impl BatchOperator for BatchProject {
    fn open(&mut self) {
        self.child.open();
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        if !self.child.next_batch(&mut self.input) {
            return false;
        }
        out.reset_columns(self.positions.len());
        let t0 = Instant::now();
        let sel = self.input.sel.as_deref();
        for (o, &p) in self.positions.iter().enumerate() {
            out.columns[o].gather_from(&self.input.columns[p], sel);
        }
        out.set_physical_rows(self.input.live_rows());
        self.gather_ns += t0.elapsed().as_nanos() as u64;
        true
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn name(&self) -> &'static str {
        "batch_project"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("gather_kernel_ns", self.gather_ns)]
    }
}
