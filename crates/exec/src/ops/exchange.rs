//! The `exchange` operator: pipeline parallelism.
//!
//! Volcano's exchange operator \[4\] decouples a producer subtree from its
//! consumer by running it in its own thread and streaming tuples through
//! a bounded channel. "Location and partitioning in parallel and
//! distributed systems can be enforced with a network and parallelism
//! operator such as Volcano's exchange operator" (§4.1) — here it is the
//! execution-side realization; the optimizer model treats parallelism as
//! out of scope for the Figure 4 experiments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver};

use volcano_rel::value::Tuple;

use crate::iterator::{BoxedOperator, Operator};

/// Runs its child in a separate thread; `next` receives from a bounded
/// channel.
pub struct Exchange {
    child: Option<BoxedOperator>,
    rx: Option<Receiver<Tuple>>,
    handle: Option<std::thread::JoinHandle<BoxedOperator>>,
    capacity: usize,
    /// Tuples the producer thread pushed into the channel (cumulative).
    sent: Arc<AtomicU64>,
}

impl Exchange {
    /// Wrap `child`; the channel buffers up to `capacity` tuples.
    pub fn new(child: BoxedOperator, capacity: usize) -> Self {
        Exchange {
            child: Some(child),
            rx: None,
            handle: None,
            capacity: capacity.max(1),
            sent: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Operator for Exchange {
    fn open(&mut self) {
        let mut child = self.child.take().expect("exchange re-opened before close");
        let (tx, rx) = bounded::<Tuple>(self.capacity);
        self.rx = Some(rx);
        let sent = self.sent.clone();
        self.handle = Some(std::thread::spawn(move || {
            child.open();
            while let Some(t) = child.next() {
                // The consumer dropping its receiver ends the producer.
                if tx.send(t).is_err() {
                    break;
                }
                sent.fetch_add(1, Ordering::Relaxed);
            }
            child.close();
            child
        }));
    }

    fn next(&mut self) -> Option<Tuple> {
        self.rx.as_ref().and_then(|rx| rx.recv().ok())
    }

    fn close(&mut self) {
        // Drop the receiver first so a still-running producer unblocks.
        self.rx = None;
        if let Some(h) = self.handle.take() {
            let child = h.join().expect("exchange producer panicked");
            self.child = Some(child);
        }
    }

    fn name(&self) -> &'static str {
        "exchange"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("tuples_sent", self.sent.load(Ordering::Relaxed))]
    }
}
