//! Adapters between the tuple and batch engines.
//!
//! [`TupleSource`] lifts any tuple-at-a-time operator into the batch
//! engine (rows are packed into columns); [`BatchSource`] lowers a batch
//! subtree back to the iterator interface (rows are materialized one at
//! a time from the current batch). Together they let a mixed plan — a
//! vectorized scan/filter/project/join pipeline below a tuple-only sort,
//! aggregate, set operation, or exchange — execute end-to-end in either
//! engine with identical results: the adapters reorder nothing and drop
//! nothing, they only change the unit of transfer.

use volcano_rel::value::Tuple;

use crate::batch::{Batch, BatchOperator, BoxedBatchOperator};
use crate::iterator::{BoxedOperator, Operator};

/// Tuple → batch adapter: drains a tuple operator into batches.
pub struct TupleSource {
    child: BoxedOperator,
    /// Output arity (from the plan schema, so empty inputs still
    /// produce well-formed batches).
    arity: usize,
    batch_size: usize,
    done: bool,
    /// Rows packed into batches (cumulative across re-opens).
    rows_packed: u64,
}

impl TupleSource {
    /// Lift `child` (producing `arity`-column tuples) into batches.
    pub fn new(child: BoxedOperator, arity: usize, batch_size: usize) -> Self {
        TupleSource {
            child,
            arity,
            batch_size: batch_size.max(1),
            done: false,
            rows_packed: 0,
        }
    }
}

impl BatchOperator for TupleSource {
    fn open(&mut self) {
        self.child.open();
        self.done = false;
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        if self.done {
            return false;
        }
        out.clear();
        if out.columns.len() != self.arity {
            out.reset_columns(self.arity);
        }
        let mut rows = 0usize;
        while rows < self.batch_size {
            match self.child.next() {
                Some(t) => {
                    out.push_row(t);
                    rows += 1;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        self.rows_packed += rows as u64;
        rows > 0
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn name(&self) -> &'static str {
        "tuple_to_batch"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_packed", self.rows_packed)]
    }
}

/// Batch → tuple adapter: serves rows of a batch subtree one at a time.
pub struct BatchSource {
    child: BoxedBatchOperator,
    batch: Batch,
    pos: usize,
    /// Batches unpacked into rows (cumulative across re-opens).
    batches_unpacked: u64,
}

impl BatchSource {
    /// Lower `child` to the iterator interface.
    pub fn new(child: BoxedBatchOperator) -> Self {
        BatchSource {
            child,
            batch: Batch::default(),
            pos: 0,
            batches_unpacked: 0,
        }
    }
}

impl Operator for BatchSource {
    fn open(&mut self) {
        self.child.open();
        self.batch.clear();
        self.pos = 0;
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if self.pos < self.batch.live_rows() {
                let t = self.batch.row_at_live(self.pos);
                self.pos += 1;
                return Some(t);
            }
            if !self.child.next_batch(&mut self.batch) {
                return None;
            }
            self.batches_unpacked += 1;
            self.pos = 0;
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn name(&self) -> &'static str {
        "batch_to_tuple"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("batches_unpacked", self.batches_unpacked)]
    }
}
