//! Aggregation: hash-based (unordered) and stream-based (sorted input).

use std::collections::HashMap;

use volcano_rel::value::Tuple;
use volcano_rel::Value;

use crate::iterator::{BoxedOperator, Operator};

/// An aggregate compiled to input positions.
#[derive(Debug, Clone, Copy)]
pub enum CompiledAgg {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(col at position)`.
    Sum(usize),
    /// `MIN(col at position)`.
    Min(usize),
    /// `MAX(col at position)`.
    Max(usize),
    /// `AVG(col at position)`.
    Avg(usize),
}

/// Running accumulator for one aggregate.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, i64),
}

impl CompiledAgg {
    fn init(&self) -> Acc {
        match self {
            CompiledAgg::CountStar => Acc::Count(0),
            CompiledAgg::Sum(_) => Acc::Sum(0.0, false),
            CompiledAgg::Min(_) => Acc::Min(None),
            CompiledAgg::Max(_) => Acc::Max(None),
            CompiledAgg::Avg(_) => Acc::Avg(0.0, 0),
        }
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(x) => Some(x.get()),
        _ => None,
    }
}

fn update(acc: &mut Acc, agg: &CompiledAgg, t: &Tuple) {
    match (acc, agg) {
        (Acc::Count(c), CompiledAgg::CountStar) => *c += 1,
        (Acc::Sum(s, seen), CompiledAgg::Sum(p)) => {
            if let Some(x) = numeric(&t[*p]) {
                *s += x;
                *seen = true;
            }
        }
        (Acc::Min(m), CompiledAgg::Min(p)) => {
            if !t[*p].is_null() && m.as_ref().map(|cur| t[*p] < *cur).unwrap_or(true) {
                *m = Some(t[*p].clone());
            }
        }
        (Acc::Max(m), CompiledAgg::Max(p)) => {
            if !t[*p].is_null() && m.as_ref().map(|cur| t[*p] > *cur).unwrap_or(true) {
                *m = Some(t[*p].clone());
            }
        }
        (Acc::Avg(s, n), CompiledAgg::Avg(p)) => {
            if let Some(x) = numeric(&t[*p]) {
                *s += x;
                *n += 1;
            }
        }
        _ => unreachable!("accumulator/aggregate mismatch"),
    }
}

fn finish(acc: Acc) -> Value {
    match acc {
        Acc::Count(c) => Value::Int(c),
        Acc::Sum(s, seen) => {
            if seen {
                Value::float(s)
            } else {
                Value::Null
            }
        }
        Acc::Min(m) | Acc::Max(m) => m.unwrap_or(Value::Null),
        Acc::Avg(s, n) => {
            if n > 0 {
                Value::float(s / n as f64)
            } else {
                Value::Null
            }
        }
    }
}

fn output_row(group: Vec<Value>, accs: Vec<Acc>) -> Tuple {
    let mut row = group;
    row.extend(accs.into_iter().map(finish));
    row
}

/// Hash aggregation over unordered input.
pub struct HashAggregate {
    child: BoxedOperator,
    group: Vec<usize>,
    aggs: Vec<CompiledAgg>,
    results: Vec<Tuple>,
    idx: usize,
    /// Input rows aggregated (cumulative across re-opens).
    rows_in: u64,
    /// Groups produced (cumulative).
    groups_out: u64,
}

impl HashAggregate {
    /// Aggregate `child`, grouping on positions `group`.
    pub fn new(child: BoxedOperator, group: Vec<usize>, aggs: Vec<CompiledAgg>) -> Self {
        HashAggregate {
            child,
            group,
            aggs,
            results: Vec::new(),
            idx: 0,
            rows_in: 0,
            groups_out: 0,
        }
    }
}

impl Operator for HashAggregate {
    fn open(&mut self) {
        self.child.open();
        let mut table: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        let mut any_row = false;
        while let Some(t) = self.child.next() {
            any_row = true;
            self.rows_in += 1;
            let key: Vec<Value> = self.group.iter().map(|&i| t[i].clone()).collect();
            let accs = table
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(CompiledAgg::init).collect());
            for (acc, agg) in accs.iter_mut().zip(self.aggs.iter()) {
                update(acc, agg, &t);
            }
        }
        self.child.close();
        // Grand total over an empty input still yields one row.
        if !any_row && self.group.is_empty() {
            table.insert(vec![], self.aggs.iter().map(CompiledAgg::init).collect());
        }
        self.results = table
            .into_iter()
            .map(|(k, accs)| output_row(k, accs))
            .collect();
        self.groups_out += self.results.len() as u64;
        self.idx = 0;
    }

    fn next(&mut self) -> Option<Tuple> {
        if self.idx < self.results.len() {
            let t = std::mem::take(&mut self.results[self.idx]);
            self.idx += 1;
            Some(t)
        } else {
            None
        }
    }

    fn close(&mut self) {
        self.results.clear();
    }

    fn name(&self) -> &'static str {
        "hash_aggregate"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_in", self.rows_in), ("groups_out", self.groups_out)]
    }
}

/// Streaming aggregation over input sorted on the grouping positions;
/// preserves that order in the output.
pub struct StreamAggregate {
    child: BoxedOperator,
    group: Vec<usize>,
    aggs: Vec<CompiledAgg>,
    current_key: Option<Vec<Value>>,
    accs: Vec<Acc>,
    done: bool,
    produced_any: bool,
    /// Input rows aggregated (cumulative across re-opens).
    rows_in: u64,
    /// Groups produced (cumulative).
    groups_out: u64,
}

impl StreamAggregate {
    /// Aggregate sorted `child`, grouping on positions `group`.
    pub fn new(child: BoxedOperator, group: Vec<usize>, aggs: Vec<CompiledAgg>) -> Self {
        StreamAggregate {
            child,
            group,
            aggs,
            current_key: None,
            accs: Vec::new(),
            done: false,
            produced_any: false,
            rows_in: 0,
            groups_out: 0,
        }
    }
}

impl Operator for StreamAggregate {
    fn open(&mut self) {
        self.child.open();
        self.current_key = None;
        self.done = false;
        self.produced_any = false;
    }

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        loop {
            match self.child.next() {
                None => {
                    self.done = true;
                    self.child.close();
                    if let Some(k) = self.current_key.take() {
                        self.groups_out += 1;
                        return Some(output_row(k, std::mem::take(&mut self.accs)));
                    }
                    // Grand total over empty input.
                    if self.group.is_empty() && !self.produced_any {
                        self.produced_any = true;
                        self.groups_out += 1;
                        return Some(output_row(
                            vec![],
                            self.aggs.iter().map(CompiledAgg::init).collect(),
                        ));
                    }
                    return None;
                }
                Some(t) => {
                    self.rows_in += 1;
                    let key: Vec<Value> = self.group.iter().map(|&i| t[i].clone()).collect();
                    match &self.current_key {
                        Some(cur) if *cur != key => {
                            // Group boundary: emit the finished group and
                            // start the new one with this tuple.
                            let finished = self.current_key.replace(key).expect("current");
                            let accs = std::mem::replace(
                                &mut self.accs,
                                self.aggs.iter().map(CompiledAgg::init).collect(),
                            );
                            for (acc, agg) in self.accs.iter_mut().zip(self.aggs.iter()) {
                                update(acc, agg, &t);
                            }
                            self.produced_any = true;
                            self.groups_out += 1;
                            return Some(output_row(finished, accs));
                        }
                        Some(_) => {
                            for (acc, agg) in self.accs.iter_mut().zip(self.aggs.iter()) {
                                update(acc, agg, &t);
                            }
                        }
                        None => {
                            self.current_key = Some(key);
                            self.accs = self.aggs.iter().map(CompiledAgg::init).collect();
                            for (acc, agg) in self.accs.iter_mut().zip(self.aggs.iter()) {
                                update(acc, agg, &t);
                            }
                        }
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        if !self.done {
            self.child.close();
        }
    }

    fn name(&self) -> &'static str {
        "stream_aggregate"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_in", self.rows_in), ("groups_out", self.groups_out)]
    }
}
