//! Aggregation: hash-based (unordered) and stream-based (sorted input).
//!
//! Accumulator semantics (NULL skipping, exact integer sums, AVG's
//! decomposable sum/count pair) live in [`crate::kernels::agg`] and are
//! shared with the batch and fused engines, so every engine — and every
//! phase of a two-phase parallel aggregation — produces identical
//! values. [`HashAggregate`] runs in one of three [`AggMode`]s: the
//! classic one-shot `Complete`, a per-worker `Partial` that emits the
//! partial row layout (group keys, then each aggregate's partial value,
//! with AVG carrying a companion count column), and a `Final` that
//! merges partial rows back into finished groups.

use std::collections::HashMap;

use volcano_rel::value::Tuple;
use volcano_rel::Value;

use crate::kernels::agg::{partial_positions, AccState};
pub use crate::kernels::agg::{AggMode, CompiledAgg};

use crate::iterator::{BoxedOperator, Operator};

fn init_accs(aggs: &[CompiledAgg]) -> Vec<AccState> {
    aggs.iter().map(AccState::new_for).collect()
}

fn update(acc: &mut AccState, agg: &CompiledAgg, t: &Tuple) {
    match agg {
        CompiledAgg::CountStar => acc.accumulate(&Value::Null),
        CompiledAgg::Sum(p) | CompiledAgg::Min(p) | CompiledAgg::Max(p) | CompiledAgg::Avg(p) => {
            acc.accumulate(&t[*p])
        }
    }
}

fn output_row(group: Vec<Value>, accs: Vec<AccState>) -> Tuple {
    let mut row = group;
    row.extend(accs.iter().map(AccState::finish));
    row
}

fn partial_row(group: Vec<Value>, accs: Vec<AccState>) -> Tuple {
    let mut row = group;
    for acc in &accs {
        acc.push_partial(&mut row);
    }
    row
}

/// Hash aggregation over unordered input.
pub struct HashAggregate {
    child: BoxedOperator,
    group: Vec<usize>,
    aggs: Vec<CompiledAgg>,
    mode: AggMode,
    results: Vec<Tuple>,
    idx: usize,
    /// Input rows aggregated (cumulative across re-opens).
    rows_in: u64,
    /// Partial groups merged (Final mode; cumulative).
    groups_in: u64,
    /// Groups produced (cumulative).
    groups_out: u64,
}

impl HashAggregate {
    /// One-shot aggregation of `child`, grouping on positions `group`.
    pub fn new(child: BoxedOperator, group: Vec<usize>, aggs: Vec<CompiledAgg>) -> Self {
        Self::with_mode(child, group, aggs, AggMode::Complete)
    }

    /// Aggregate `child` in the given phase. In `Final` mode the input
    /// must carry the partial row layout with the group keys at
    /// positions `0..group.len()` (so `group` is `0..g`).
    pub fn with_mode(
        child: BoxedOperator,
        group: Vec<usize>,
        aggs: Vec<CompiledAgg>,
        mode: AggMode,
    ) -> Self {
        if mode == AggMode::Final {
            debug_assert!(group.iter().enumerate().all(|(i, &p)| i == p));
        }
        HashAggregate {
            child,
            group,
            aggs,
            mode,
            results: Vec::new(),
            idx: 0,
            rows_in: 0,
            groups_in: 0,
            groups_out: 0,
        }
    }
}

impl Operator for HashAggregate {
    fn open(&mut self) {
        self.child.open();
        let mut table: HashMap<Vec<Value>, Vec<AccState>> = HashMap::new();
        let positions = partial_positions(self.group.len(), &self.aggs);
        let mut any_row = false;
        while let Some(t) = self.child.next() {
            any_row = true;
            self.rows_in += 1;
            let key: Vec<Value> = self.group.iter().map(|&i| t[i].clone()).collect();
            let accs = table.entry(key).or_insert_with(|| init_accs(&self.aggs));
            match self.mode {
                AggMode::Complete | AggMode::Partial => {
                    for (acc, agg) in accs.iter_mut().zip(self.aggs.iter()) {
                        update(acc, agg, &t);
                    }
                }
                AggMode::Final => {
                    self.groups_in += 1;
                    for (acc, (main, comp)) in accs.iter_mut().zip(positions.iter()) {
                        acc.merge(&t[*main], comp.map(|c| &t[c]));
                    }
                }
            }
        }
        self.child.close();
        // Grand total over an empty input still yields one row — from
        // the Complete or Final phase, never the per-worker Partial.
        if !any_row && self.group.is_empty() && self.mode != AggMode::Partial {
            table.insert(vec![], init_accs(&self.aggs));
        }
        let partial = self.mode == AggMode::Partial;
        self.results = table
            .into_iter()
            .map(|(k, accs)| {
                if partial {
                    partial_row(k, accs)
                } else {
                    output_row(k, accs)
                }
            })
            .collect();
        self.groups_out += self.results.len() as u64;
        self.idx = 0;
    }

    fn next(&mut self) -> Option<Tuple> {
        if self.idx < self.results.len() {
            let t = std::mem::take(&mut self.results[self.idx]);
            self.idx += 1;
            Some(t)
        } else {
            None
        }
    }

    fn close(&mut self) {
        self.results.clear();
    }

    fn name(&self) -> &'static str {
        match self.mode {
            AggMode::Complete => "hash_aggregate",
            AggMode::Partial => "partial_hash_aggregate",
            AggMode::Final => "final_hash_aggregate",
        }
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        match self.mode {
            AggMode::Final => vec![
                ("rows_in", self.rows_in),
                ("groups_in", self.groups_in),
                ("groups_out", self.groups_out),
            ],
            _ => vec![("rows_in", self.rows_in), ("groups_out", self.groups_out)],
        }
    }
}

/// Streaming aggregation over input sorted on the grouping positions;
/// preserves that order in the output.
pub struct StreamAggregate {
    child: BoxedOperator,
    group: Vec<usize>,
    aggs: Vec<CompiledAgg>,
    current_key: Option<Vec<Value>>,
    accs: Vec<AccState>,
    done: bool,
    produced_any: bool,
    /// Input rows aggregated (cumulative across re-opens).
    rows_in: u64,
    /// Groups produced (cumulative).
    groups_out: u64,
}

impl StreamAggregate {
    /// Aggregate sorted `child`, grouping on positions `group`.
    pub fn new(child: BoxedOperator, group: Vec<usize>, aggs: Vec<CompiledAgg>) -> Self {
        StreamAggregate {
            child,
            group,
            aggs,
            current_key: None,
            accs: Vec::new(),
            done: false,
            produced_any: false,
            rows_in: 0,
            groups_out: 0,
        }
    }
}

impl Operator for StreamAggregate {
    fn open(&mut self) {
        self.child.open();
        self.current_key = None;
        self.done = false;
        self.produced_any = false;
    }

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        loop {
            match self.child.next() {
                None => {
                    self.done = true;
                    self.child.close();
                    if let Some(k) = self.current_key.take() {
                        self.groups_out += 1;
                        return Some(output_row(k, std::mem::take(&mut self.accs)));
                    }
                    // Grand total over empty input.
                    if self.group.is_empty() && !self.produced_any {
                        self.produced_any = true;
                        self.groups_out += 1;
                        return Some(output_row(vec![], init_accs(&self.aggs)));
                    }
                    return None;
                }
                Some(t) => {
                    self.rows_in += 1;
                    let key: Vec<Value> = self.group.iter().map(|&i| t[i].clone()).collect();
                    match &self.current_key {
                        Some(cur) if *cur != key => {
                            // Group boundary: emit the finished group and
                            // start the new one with this tuple.
                            let finished = self.current_key.replace(key).expect("current");
                            let accs = std::mem::replace(&mut self.accs, init_accs(&self.aggs));
                            for (acc, agg) in self.accs.iter_mut().zip(self.aggs.iter()) {
                                update(acc, agg, &t);
                            }
                            self.produced_any = true;
                            self.groups_out += 1;
                            return Some(output_row(finished, accs));
                        }
                        Some(_) => {
                            for (acc, agg) in self.accs.iter_mut().zip(self.aggs.iter()) {
                                update(acc, agg, &t);
                            }
                        }
                        None => {
                            self.current_key = Some(key);
                            self.accs = init_accs(&self.aggs);
                            for (acc, agg) in self.accs.iter_mut().zip(self.aggs.iter()) {
                                update(acc, agg, &t);
                            }
                        }
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        if !self.done {
            self.child.close();
        }
    }

    fn name(&self) -> &'static str {
        "stream_aggregate"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_in", self.rows_in), ("groups_out", self.groups_out)]
    }
}
