//! Ordered scan through a B+tree index: record ids are visited in key
//! order and the rows fetched from the heap file, so the output stream
//! *delivers* the sort order the optimizer promised.

use std::sync::Arc;

use volcano_rel::value::Tuple;
use volcano_store::{BTree, HeapFile, RecordId};

use crate::database::decode_row;
use crate::iterator::Operator;

/// Index-ordered table scan.
pub struct IndexScan {
    heap: Arc<HeapFile>,
    index: Arc<BTree>,
    rids: Vec<RecordId>,
    idx: usize,
    opened: bool,
    /// Index entries visited (cumulative across re-opens).
    entries_visited: u64,
    /// Dangling index entries skipped (cumulative).
    dangling_skipped: u64,
}

impl IndexScan {
    /// Scan `heap` in the key order of `index`.
    pub fn new(heap: Arc<HeapFile>, index: Arc<BTree>) -> Self {
        IndexScan {
            heap,
            index,
            rids: Vec::new(),
            idx: 0,
            opened: false,
            entries_visited: 0,
            dangling_skipped: 0,
        }
    }
}

impl Operator for IndexScan {
    fn open(&mut self) {
        // Collect the record ids in key order; rows are fetched lazily so
        // the stream pipelines.
        self.rids = self.index.scan_all().into_iter().map(|(_, r)| r).collect();
        self.idx = 0;
        self.opened = true;
    }

    fn next(&mut self) -> Option<Tuple> {
        assert!(self.opened, "next() before open()");
        while self.idx < self.rids.len() {
            let rid = self.rids[self.idx];
            self.idx += 1;
            self.entries_visited += 1;
            // Deleted rows leave dangling index entries in this simple
            // build; skip them.
            if let Some(bytes) = self.heap.get(rid) {
                return Some(decode_row(&bytes));
            }
            self.dangling_skipped += 1;
        }
        None
    }

    fn close(&mut self) {
        self.rids.clear();
        self.opened = false;
    }

    fn name(&self) -> &'static str {
        "index_scan"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("entries_visited", self.entries_visited),
            ("dangling_skipped", self.dangling_skipped),
        ]
    }
}
