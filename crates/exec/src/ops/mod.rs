//! The physical operators of the execution engine.

pub mod aggregate;
pub mod batch_adapter;
pub mod batch_aggregate;
pub mod batch_filter;
pub mod batch_join;
pub mod batch_project;
pub mod batch_scan;
pub mod exchange;
pub mod external_sort;
pub mod filter;
pub mod index_scan;
pub mod joins;
pub mod project;
pub mod scan;
pub mod set_ops;
pub mod sort;

pub use aggregate::{AggMode, CompiledAgg, HashAggregate, StreamAggregate};
pub use batch_adapter::{BatchSource, TupleSource};
pub use batch_aggregate::BatchHashAggregate;
pub use batch_filter::BatchFilter;
pub use batch_join::BatchHashJoin;
pub use batch_project::BatchProject;
pub use batch_scan::BatchScan;
pub use exchange::Exchange;
pub use external_sort::ExternalSort;
pub use filter::{CompiledPred, Filter};
pub use index_scan::IndexScan;
pub use joins::{HashJoin, MergeJoin, MultiWayHash, NestedLoops};
pub use project::Project;
pub use scan::TableScan;
pub use set_ops::{HashSetOp, MergeSetOp, SetOpKind};
pub use sort::Sort;
