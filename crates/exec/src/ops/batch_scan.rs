//! Vectorized heap-file scan, optionally with a fused predicate (the
//! batch counterpart of [`crate::ops::TableScan`]).
//!
//! Records are decoded *straight into typed column vectors* via the
//! storage layer's streaming [`decode_record_fields`] — the per-row
//! `Vec<Value>` the tuple scan materializes never exists here. The fused
//! predicate runs as a vectorized kernel over the freshly filled batch.

use std::sync::Arc;
use std::time::Instant;

use volcano_rel::catalog::ColType;
use volcano_store::record::decode_record_fields;
use volcano_store::{HeapFile, PageId};

use crate::batch::{Batch, BatchOperator};
use crate::kernels::apply_pred;
use crate::ops::filter::CompiledPred;

/// Page-at-a-time columnar scan producing batches of a fixed size.
pub struct BatchScan {
    heap: Arc<HeapFile>,
    /// Catalog column types, used to pre-type the output columns.
    col_types: Vec<ColType>,
    /// Fused predicate (`None` = plain scan).
    pred: Option<CompiledPred>,
    batch_size: usize,
    /// When set, scan exactly these pages instead of the whole heap
    /// (morsel execution drives the scan one page range at a time).
    fixed_pages: bool,
    pages: Vec<PageId>,
    page_idx: usize,
    /// Raw bytes of the current page's records (reused across pages, so
    /// the steady state reads without allocating).
    arena: Vec<u8>,
    /// `(offset, len)` of each record within `arena`.
    spans: Vec<(u32, u32)>,
    record_idx: usize,
    opened: bool,
    scratch: Vec<u32>,
    /// Heap pages visited (cumulative across re-opens).
    pages_read: u64,
    /// Rows decoded before the fused predicate (cumulative).
    rows_scanned: u64,
    /// Nanoseconds in the vectorized predicate kernel (cumulative).
    pred_ns: u64,
}

impl BatchScan {
    /// A columnar scan of `heap` whose rows have `col_types`.
    pub fn new(
        heap: Arc<HeapFile>,
        col_types: Vec<ColType>,
        pred: Option<CompiledPred>,
        batch_size: usize,
    ) -> Self {
        BatchScan {
            heap,
            col_types,
            pred,
            batch_size: batch_size.max(1),
            fixed_pages: false,
            pages: Vec::new(),
            page_idx: 0,
            arena: Vec::new(),
            spans: Vec::new(),
            record_idx: 0,
            opened: false,
            scratch: Vec::new(),
            pages_read: 0,
            rows_scanned: 0,
            pred_ns: 0,
        }
    }

    /// A scan restricted to an explicit page list (a morsel); `open`
    /// keeps the given pages instead of enumerating the heap.
    pub fn with_pages(
        heap: Arc<HeapFile>,
        col_types: Vec<ColType>,
        pred: Option<CompiledPred>,
        batch_size: usize,
        pages: Vec<PageId>,
    ) -> Self {
        let mut s = Self::new(heap, col_types, pred, batch_size);
        s.fixed_pages = true;
        s.pages = pages;
        s
    }

    /// Swap in a new page list and rewind (used between morsels; only
    /// meaningful on a scan built with [`BatchScan::with_pages`]).
    pub fn reset_pages(&mut self, pages: &[PageId]) {
        debug_assert!(self.fixed_pages, "reset_pages on a whole-heap scan");
        self.pages.clear();
        self.pages.extend_from_slice(pages);
        self.page_idx = 0;
        self.spans.clear();
        self.record_idx = 0;
        self.opened = true;
    }
}

impl BatchOperator for BatchScan {
    fn open(&mut self) {
        if !self.fixed_pages {
            self.pages = self.heap.pages();
        }
        self.page_idx = 0;
        self.spans.clear();
        self.record_idx = 0;
        self.opened = true;
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        assert!(self.opened, "next_batch() before open()");
        out.clear();
        if out.columns.len() != self.col_types.len() {
            *out = Batch::for_types(&self.col_types);
        }
        let mut rows = 0usize;
        while rows < self.batch_size {
            if self.record_idx >= self.spans.len() {
                if self.page_idx >= self.pages.len() {
                    break;
                }
                let page = self.pages[self.page_idx];
                self.page_idx += 1;
                self.pages_read += 1;
                self.heap
                    .page_records_into(page, &mut self.arena, &mut self.spans);
                self.record_idx = 0;
                continue;
            }
            let (off, len) = self.spans[self.record_idx];
            let bytes = &self.arena[off as usize..(off + len) as usize];
            self.record_idx += 1;
            // Route fields straight into the columns.
            let mut col = 0usize;
            let cols = &mut out.columns;
            decode_record_fields(bytes, |f| {
                cols[col].push_field(f);
                col += 1;
            })
            .expect("stored rows are well-formed");
            debug_assert_eq!(col, cols.len());
            rows += 1;
        }
        if rows == 0 {
            return false;
        }
        self.rows_scanned += rows as u64;
        out.set_physical_rows(rows);
        if let Some(pred) = &self.pred {
            let t0 = Instant::now();
            apply_pred(pred, out, &mut self.scratch);
            self.pred_ns += t0.elapsed().as_nanos() as u64;
        }
        true
    }

    fn close(&mut self) {
        if !self.fixed_pages {
            self.pages.clear();
        }
        self.arena.clear();
        self.spans.clear();
        self.opened = false;
    }

    fn name(&self) -> &'static str {
        if self.pred.is_some() {
            "batch_filter_scan"
        } else {
            "batch_file_scan"
        }
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        let mut m = vec![
            ("pages_read", self.pages_read),
            ("rows_scanned", self.rows_scanned),
        ];
        if self.pred.is_some() {
            m.push(("pred_kernel_ns", self.pred_ns));
        }
        m
    }
}
