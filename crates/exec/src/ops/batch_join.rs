//! Vectorized hash join: build and probe over column vectors.
//!
//! The build side is drained into a set of compacted column vectors plus
//! a hash table keyed by a precomputed 64-bit key hash, mapping to build
//! row indices (`FxHashMap<u64, Vec<u32>>`). Probing hashes a whole
//! batch of keys at once, walks the candidate buckets verifying exact
//! key equality with [`Column::rows_eq`], accumulates matching
//! `(build row, probe row)` index pairs, and materializes the output
//! with two column gathers — the per-row `Vec<Value>` key and the
//! per-row output allocation of the tuple join both disappear.
//!
//! Semantics mirror [`crate::ops::HashJoin`] exactly: NULL keys never
//! join on either side, key equality is `Value` equality (so
//! `Int(1) != Float(1.0)`), output columns are build ++ probe, and the
//! output order is probe order with per-key build-insertion order.

use std::time::Instant;

use volcano_core::fxhash::FxHashMap;

use crate::batch::{Batch, BatchOperator, BoxedBatchOperator, Column};
use crate::kernels::hash_join_keys;

/// The vectorized counterpart of [`crate::ops::HashJoin`].
pub struct BatchHashJoin {
    build: BoxedBatchOperator,
    probe: BoxedBatchOperator,
    lkeys: Vec<usize>,
    rkeys: Vec<usize>,
    batch_size: usize,
    /// Compacted build-side columns (non-NULL-keyed rows only).
    build_cols: Vec<Column>,
    build_count: u32,
    /// Key hash → build row indices, in build order.
    buckets: FxHashMap<u64, Vec<u32>>,
    /// Current probe batch and the cursor into it.
    probe_batch: Batch,
    probe_hashes: Vec<Option<u64>>,
    /// Physical index per live probe row (parallel to `probe_hashes`).
    probe_phys: Vec<u32>,
    probe_pos: usize,
    /// Resume point inside the current probe row's bucket.
    bucket_idx: usize,
    probe_done: bool,
    /// Scratch pair lists reused across calls.
    pairs_build: Vec<u32>,
    pairs_probe: Vec<u32>,
    scratch: Vec<u32>,
    /// Rows hashed into the build table (cumulative across re-opens).
    build_rows: u64,
    /// Probe rows consumed (cumulative).
    probe_rows: u64,
    /// Nanoseconds building the hash table (cumulative).
    build_ns: u64,
    /// Nanoseconds hashing/probing/gathering output (cumulative).
    probe_ns: u64,
}

impl BatchHashJoin {
    /// Join `build` (left) and `probe` (right) on the key positions.
    pub fn new(
        build: BoxedBatchOperator,
        probe: BoxedBatchOperator,
        lkeys: Vec<usize>,
        rkeys: Vec<usize>,
        batch_size: usize,
    ) -> Self {
        assert_eq!(lkeys.len(), rkeys.len());
        assert!(!lkeys.is_empty(), "hash join needs at least one key");
        BatchHashJoin {
            build,
            probe,
            lkeys,
            rkeys,
            batch_size: batch_size.max(1),
            build_cols: Vec::new(),
            build_count: 0,
            buckets: FxHashMap::default(),
            probe_batch: Batch::default(),
            probe_hashes: Vec::new(),
            probe_phys: Vec::new(),
            probe_pos: 0,
            bucket_idx: 0,
            probe_done: false,
            pairs_build: Vec::new(),
            pairs_probe: Vec::new(),
            scratch: Vec::new(),
            build_rows: 0,
            probe_rows: 0,
            build_ns: 0,
            probe_ns: 0,
        }
    }

    /// Does build row `b` have exactly the key of live probe row `p`?
    fn keys_match(&self, b: u32, p: u32) -> bool {
        self.lkeys.iter().zip(&self.rkeys).all(|(&lk, &rk)| {
            self.build_cols[lk].rows_eq(b as usize, &self.probe_batch.columns[rk], p as usize)
        })
    }

    /// Fetch the next probe batch; `false` when the probe side is done.
    fn refill_probe(&mut self) -> bool {
        loop {
            if !self.probe.next_batch(&mut self.probe_batch) {
                return false;
            }
            self.probe_rows += self.probe_batch.live_rows() as u64;
            if self.probe_batch.live_rows() == 0 {
                continue;
            }
            let t0 = Instant::now();
            hash_join_keys(
                &self.probe_batch,
                &self.rkeys,
                &mut self.probe_hashes,
                &mut self.scratch,
            );
            self.probe_phys.clear();
            self.probe_phys
                .extend_from_slice(self.probe_batch.live_indices(&mut self.scratch));
            self.probe_ns += t0.elapsed().as_nanos() as u64;
            self.probe_pos = 0;
            self.bucket_idx = 0;
            return true;
        }
    }
}

impl BatchOperator for BatchHashJoin {
    fn open(&mut self) {
        self.build.open();
        self.build_cols.clear();
        self.buckets.clear();
        self.build_count = 0;
        let t0 = Instant::now();
        let mut batch = Batch::default();
        let mut hashes: Vec<Option<u64>> = Vec::new();
        let mut keep: Vec<u32> = Vec::new();
        while self.build.next_batch(&mut batch) {
            if batch.live_rows() == 0 {
                continue;
            }
            if self.build_cols.is_empty() {
                self.build_cols = batch.columns.iter().map(Column::empty_like).collect();
            }
            hash_join_keys(&batch, &self.lkeys, &mut hashes, &mut self.scratch);
            // Keep only rows whose key has no NULLs, preserving order.
            keep.clear();
            let live = batch.live_indices(&mut self.scratch);
            for (pos, h) in hashes.iter().enumerate() {
                if let Some(h) = *h {
                    keep.push(live[pos]);
                    self.buckets
                        .entry(h)
                        .or_default()
                        .push(self.build_count + keep.len() as u32 - 1);
                }
            }
            for (dst, src) in self.build_cols.iter_mut().zip(&batch.columns) {
                dst.gather_from(src, Some(&keep));
            }
            self.build_count += keep.len() as u32;
            self.build_rows += keep.len() as u64;
        }
        self.build_ns += t0.elapsed().as_nanos() as u64;
        self.build.close();
        self.probe.open();
        self.probe_batch.clear();
        self.probe_hashes.clear();
        self.probe_phys.clear();
        self.probe_pos = 0;
        self.bucket_idx = 0;
        self.probe_done = false;
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        let build_ncols = self.build_cols.len();
        self.pairs_build.clear();
        self.pairs_probe.clear();
        // Accumulate matching index pairs, up to batch_size, without
        // crossing a probe-batch boundary (the pair lists index into the
        // *current* probe batch).
        loop {
            if self.probe_pos >= self.probe_hashes.len() {
                if !self.pairs_build.is_empty() {
                    break; // flush before switching probe batches
                }
                if self.probe_done || !self.refill_probe() {
                    self.probe_done = true;
                    return false;
                }
                continue;
            }
            let t0 = Instant::now();
            while self.probe_pos < self.probe_hashes.len()
                && self.pairs_build.len() < self.batch_size
            {
                let Some(h) = self.probe_hashes[self.probe_pos] else {
                    self.probe_pos += 1;
                    self.bucket_idx = 0;
                    continue;
                };
                let phys = self.probe_phys[self.probe_pos];
                let bucket = self.buckets.get(&h).map(Vec::as_slice).unwrap_or(&[]);
                while self.bucket_idx < bucket.len() && self.pairs_build.len() < self.batch_size {
                    let b = bucket[self.bucket_idx];
                    self.bucket_idx += 1;
                    if self.keys_match(b, phys) {
                        self.pairs_build.push(b);
                        self.pairs_probe.push(phys);
                    }
                }
                if self.bucket_idx >= bucket.len() {
                    self.probe_pos += 1;
                    self.bucket_idx = 0;
                }
            }
            self.probe_ns += t0.elapsed().as_nanos() as u64;
            if self.pairs_build.len() >= self.batch_size {
                break;
            }
        }
        // Materialize: build columns ++ probe columns, two gathers.
        let t0 = Instant::now();
        out.reset_columns(build_ncols + self.probe_batch.columns.len());
        for (o, src) in self.build_cols.iter().enumerate() {
            out.columns[o].gather_from(src, Some(&self.pairs_build));
        }
        for (j, src) in self.probe_batch.columns.iter().enumerate() {
            out.columns[build_ncols + j].gather_from(src, Some(&self.pairs_probe));
        }
        out.set_physical_rows(self.pairs_build.len());
        self.probe_ns += t0.elapsed().as_nanos() as u64;
        true
    }

    fn close(&mut self) {
        self.probe.close();
        self.build_cols.clear();
        self.buckets.clear();
        self.probe_batch.clear();
    }

    fn name(&self) -> &'static str {
        "batch_hash_join"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("build_rows", self.build_rows),
            ("probe_rows", self.probe_rows),
            ("build_kernel_ns", self.build_ns),
            ("probe_kernel_ns", self.probe_ns),
        ]
    }
}
