//! Predicate filter.

use volcano_rel::value::Tuple;
use volcano_rel::{CmpOp, Value};

use crate::iterator::{BoxedOperator, Operator};

/// A conjunction compiled to tuple positions.
#[derive(Debug, Clone)]
pub struct CompiledPred {
    terms: Vec<(usize, CmpOp, Value)>,
}

impl CompiledPred {
    /// Build from `(position, op, literal)` triples.
    pub fn new(terms: Vec<(usize, CmpOp, Value)>) -> Self {
        CompiledPred { terms }
    }

    /// SQL three-valued semantics collapsed to accept/reject: a
    /// comparison involving NULL rejects the tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        self.terms.iter().all(|(pos, op, lit)| {
            t[*pos]
                .sql_cmp(lit)
                .map(|ord| op.eval(ord))
                .unwrap_or(false)
        })
    }

    /// The `(position, op, literal)` conjuncts, for vectorized
    /// evaluation by the batch engine's predicate kernel.
    pub fn terms(&self) -> &[(usize, CmpOp, Value)] {
        &self.terms
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Trivially true?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The standalone filter operator; order-preserving.
pub struct Filter {
    child: BoxedOperator,
    pred: CompiledPred,
    /// Input rows examined (cumulative across re-opens).
    rows_in: u64,
}

impl Filter {
    /// Filter `child` by `pred`.
    pub fn new(child: BoxedOperator, pred: CompiledPred) -> Self {
        Filter {
            child,
            pred,
            rows_in: 0,
        }
    }
}

impl Operator for Filter {
    fn open(&mut self) {
        self.child.open();
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            let t = self.child.next()?;
            self.rows_in += 1;
            if self.pred.eval(&t) {
                return Some(t);
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn name(&self) -> &'static str {
        "filter"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("rows_in", self.rows_in)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_eval_semantics() {
        let p = CompiledPred::new(vec![(0, CmpOp::Eq, Value::Int(3))]);
        assert!(p.eval(&vec![Value::Int(3)]));
        assert!(!p.eval(&vec![Value::Int(4)]));
        // NULL rejects.
        assert!(!p.eval(&vec![Value::Null]));
        let range = CompiledPred::new(vec![(0, CmpOp::Lt, Value::Int(10))]);
        assert!(range.eval(&vec![Value::Int(9)]));
        assert!(!range.eval(&vec![Value::Int(10)]));
    }
}
