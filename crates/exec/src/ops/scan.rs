//! Sequential table scan, optionally with a fused predicate (the
//! `filter_scan` algorithm of the multi-operator implementation rule).

use std::sync::Arc;

use volcano_rel::value::Tuple;
use volcano_store::{HeapFile, PageId};

use crate::database::decode_row;
use crate::iterator::Operator;
use crate::ops::filter::CompiledPred;

/// Page-at-a-time heap-file scan.
pub struct TableScan {
    heap: Arc<HeapFile>,
    /// Fused predicate for the `filter_scan` algorithm (`None` = plain
    /// scan).
    pred: Option<CompiledPred>,
    pages: Vec<PageId>,
    page_idx: usize,
    buffer: Vec<Tuple>,
    buffer_idx: usize,
    opened: bool,
    /// Heap pages visited (cumulative across re-opens).
    pages_read: u64,
    /// Rows decoded before the fused predicate (cumulative).
    rows_scanned: u64,
}

impl TableScan {
    /// A plain scan.
    pub fn new(heap: Arc<HeapFile>) -> Self {
        Self::with_pred(heap, None)
    }

    /// A scan with a fused predicate.
    pub fn with_pred(heap: Arc<HeapFile>, pred: Option<CompiledPred>) -> Self {
        TableScan {
            heap,
            pred,
            pages: Vec::new(),
            page_idx: 0,
            buffer: Vec::new(),
            buffer_idx: 0,
            opened: false,
            pages_read: 0,
            rows_scanned: 0,
        }
    }

    fn fill_buffer(&mut self) -> bool {
        while self.page_idx < self.pages.len() {
            let page = self.pages[self.page_idx];
            self.page_idx += 1;
            self.pages_read += 1;
            let mut rows: Vec<Tuple> = self
                .heap
                .page_records(page)
                .iter()
                .map(|b| decode_row(b))
                .collect();
            self.rows_scanned += rows.len() as u64;
            if let Some(pred) = &self.pred {
                rows.retain(|r| pred.eval(r));
            }
            if !rows.is_empty() {
                self.buffer = rows;
                self.buffer_idx = 0;
                return true;
            }
        }
        false
    }
}

impl Operator for TableScan {
    fn open(&mut self) {
        self.pages = self.heap.pages();
        self.page_idx = 0;
        self.buffer.clear();
        self.buffer_idx = 0;
        self.opened = true;
    }

    fn next(&mut self) -> Option<Tuple> {
        assert!(self.opened, "next() before open()");
        loop {
            if self.buffer_idx < self.buffer.len() {
                let t = std::mem::take(&mut self.buffer[self.buffer_idx]);
                self.buffer_idx += 1;
                return Some(t);
            }
            if !self.fill_buffer() {
                return None;
            }
        }
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.pages.clear();
        self.opened = false;
    }

    fn name(&self) -> &'static str {
        if self.pred.is_some() {
            "filter_scan"
        } else {
            "file_scan"
        }
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("pages_read", self.pages_read),
            ("rows_scanned", self.rows_scanned),
        ]
    }
}
