//! Batch-native hash aggregation.
//!
//! Consumes whole batches from a batch child and folds them into a
//! columnar [`GroupTable`] with typed accumulate kernels — no tuple
//! adapter, no per-row virtual dispatch. Like the tuple
//! [`HashAggregate`](super::HashAggregate) it runs in any
//! [`AggMode`]: `Complete` for a one-shot aggregation, `Partial` for
//! the per-worker phase of a two-phase parallel plan (emitting the
//! partial row layout), and `Final` to merge partial rows above a
//! gather.

use crate::batch::{Batch, BatchOperator, BoxedBatchOperator};
use crate::kernels::agg::{AggMode, CompiledAgg, GroupScratch, GroupTable};

/// Vectorized hash aggregation over a batch child.
pub struct BatchHashAggregate {
    child: BoxedBatchOperator,
    group: Vec<usize>,
    aggs: Vec<CompiledAgg>,
    mode: AggMode,
    batch_size: usize,
    table: GroupTable,
    scratch: GroupScratch,
    built: bool,
    emitted: usize,
    /// Input rows aggregated (cumulative across re-opens).
    rows_in: u64,
    /// Partial groups merged (Final mode; cumulative).
    groups_in: u64,
    /// Groups produced (cumulative).
    groups_out: u64,
}

impl BatchHashAggregate {
    /// Aggregate `child` in the given phase, grouping on positions
    /// `group` and emitting output batches of at most `batch_size`
    /// groups. In `Final` mode the input must carry the partial row
    /// layout with group keys at positions `0..group.len()`.
    pub fn new(
        child: BoxedBatchOperator,
        group: Vec<usize>,
        aggs: Vec<CompiledAgg>,
        mode: AggMode,
        batch_size: usize,
    ) -> Self {
        if mode == AggMode::Final {
            debug_assert!(group.iter().enumerate().all(|(i, &p)| i == p));
        }
        let table = GroupTable::new(group.len(), &aggs);
        BatchHashAggregate {
            child,
            group,
            aggs,
            mode,
            batch_size: batch_size.max(1),
            table,
            scratch: GroupScratch::default(),
            built: false,
            emitted: 0,
            rows_in: 0,
            groups_in: 0,
            groups_out: 0,
        }
    }

    fn build(&mut self) {
        let mut input = Batch::default();
        while self.child.next_batch(&mut input) {
            let consumed = match self.mode {
                AggMode::Complete | AggMode::Partial => {
                    self.table
                        .accumulate(&input, &self.group, &self.aggs, &mut self.scratch)
                }
                AggMode::Final => {
                    let n = self
                        .table
                        .merge_partial(&input, &self.aggs, &mut self.scratch);
                    self.groups_in += n as u64;
                    n
                }
            };
            self.rows_in += consumed as u64;
        }
        // Grand total over an empty input still yields one row — from
        // the Complete or Final phase, never the per-worker Partial.
        if self.group.is_empty() && self.mode != AggMode::Partial {
            self.table.ensure_grand_total();
        }
        self.built = true;
    }
}

impl BatchOperator for BatchHashAggregate {
    fn open(&mut self) {
        self.child.open();
        self.table = GroupTable::new(self.group.len(), &self.aggs);
        self.built = false;
        self.emitted = 0;
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        if !self.built {
            self.build();
        }
        if self.emitted >= self.table.len() {
            return false;
        }
        let to = (self.emitted + self.batch_size).min(self.table.len());
        self.table.emit(
            self.emitted..to,
            &self.aggs,
            self.mode == AggMode::Partial,
            out,
        );
        self.groups_out += (to - self.emitted) as u64;
        self.emitted = to;
        true
    }

    fn close(&mut self) {
        self.child.close();
        self.table = GroupTable::new(self.group.len(), &self.aggs);
    }

    fn name(&self) -> &'static str {
        match self.mode {
            AggMode::Complete => "batch_hash_aggregate",
            AggMode::Partial => "batch_partial_hash_aggregate",
            AggMode::Final => "batch_final_hash_aggregate",
        }
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        match self.mode {
            AggMode::Final => vec![
                ("rows_in", self.rows_in),
                ("groups_in", self.groups_in),
                ("groups_out", self.groups_out),
            ],
            _ => vec![("rows_in", self.rows_in), ("groups_out", self.groups_out)],
        }
    }
}
