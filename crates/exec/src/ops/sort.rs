//! The sort enforcer as an executable operator.
//!
//! Sorting is the canonical *stop point* of the iterator model: `open`
//! drains the input, forms sorted runs, and merges them (a single merge
//! level, as assumed by the cost model); `next` then streams the sorted
//! result.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use volcano_rel::value::Tuple;

use crate::iterator::{BoxedOperator, Operator};

/// Number of tuples per in-memory run before a run boundary is forced.
/// Small enough to exercise the merge path in tests, large enough to be
/// irrelevant for performance at this scale.
const RUN_SIZE: usize = 64 * 1024;

/// Sorts its input by the given key positions (ascending,
/// NULLs-first per `Value`'s total order).
pub struct Sort {
    child: BoxedOperator,
    keys: Vec<usize>,
    runs: Vec<Vec<Tuple>>,
    heap: BinaryHeap<HeapEntry>,
    opened: bool,
    /// Rows sorted (cumulative across re-opens).
    rows_sorted: u64,
    /// Runs formed (cumulative).
    runs_formed: u64,
}

/// Min-heap entry: (key of head tuple, run index, offset into run).
struct HeapEntry {
    key: Vec<volcano_rel::Value>,
    run: usize,
    offset: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on key (tie-break on run for stability).
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.run.cmp(&self.run))
    }
}

impl Sort {
    /// Sort `child` by `keys`.
    pub fn new(child: BoxedOperator, keys: Vec<usize>) -> Self {
        Sort {
            child,
            keys,
            runs: Vec::new(),
            heap: BinaryHeap::new(),
            opened: false,
            rows_sorted: 0,
            runs_formed: 0,
        }
    }
}

impl Operator for Sort {
    fn open(&mut self) {
        self.child.open();
        self.runs.clear();
        self.heap.clear();
        // Run formation.
        let mut run: Vec<Tuple> = Vec::new();
        while let Some(t) = self.child.next() {
            run.push(t);
            if run.len() >= RUN_SIZE {
                self.finish_run(&mut run);
            }
        }
        if !run.is_empty() {
            self.finish_run(&mut run);
        }
        self.child.close();
        // Single-level merge: seed the heap with each run's head.
        for (i, r) in self.runs.iter().enumerate() {
            if !r.is_empty() {
                self.heap.push(HeapEntry {
                    key: self.keys.iter().map(|&k| r[0][k].clone()).collect(),
                    run: i,
                    offset: 0,
                });
            }
        }
        self.opened = true;
    }

    fn next(&mut self) -> Option<Tuple> {
        assert!(self.opened, "next() before open()");
        let entry = self.heap.pop()?;
        let tuple = self.runs[entry.run][entry.offset].clone();
        let next_off = entry.offset + 1;
        if next_off < self.runs[entry.run].len() {
            let t = &self.runs[entry.run][next_off];
            self.heap.push(HeapEntry {
                key: self.keys.iter().map(|&k| t[k].clone()).collect(),
                run: entry.run,
                offset: next_off,
            });
        }
        Some(tuple)
    }

    fn close(&mut self) {
        self.runs.clear();
        self.heap.clear();
        self.opened = false;
    }

    fn name(&self) -> &'static str {
        "sort"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rows_sorted", self.rows_sorted),
            ("runs_formed", self.runs_formed),
        ]
    }
}

impl Sort {
    fn finish_run(&mut self, run: &mut Vec<Tuple>) {
        self.rows_sorted += run.len() as u64;
        self.runs_formed += 1;
        let keys = self.keys.clone();
        run.sort_by(|a, b| {
            for &k in &keys {
                match a[k].cmp(&b[k]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
        self.runs.push(std::mem::take(run));
    }
}
