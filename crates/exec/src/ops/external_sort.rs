//! External sort: run formation with spill to heap files, single-level
//! merge — the execution-side realization of the cost model's sort
//! ("sorting costs were calculated based on a single-level merge",
//! §4.2), with the run I/O visible in the disk counters.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use volcano_rel::value::Tuple;
use volcano_store::{BufferPool, HeapFile, PageId};

use crate::database::{decode_row, encode_row};
use crate::iterator::{BoxedOperator, Operator};

/// A page-buffered sequential reader over one spilled run.
struct RunReader {
    heap: HeapFile,
    pages: Vec<PageId>,
    page_idx: usize,
    buffer: Vec<Tuple>,
    buffer_idx: usize,
}

impl RunReader {
    fn new(heap: HeapFile) -> Self {
        let pages = heap.pages();
        RunReader {
            heap,
            pages,
            page_idx: 0,
            buffer: Vec::new(),
            buffer_idx: 0,
        }
    }

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if self.buffer_idx < self.buffer.len() {
                let t = std::mem::take(&mut self.buffer[self.buffer_idx]);
                self.buffer_idx += 1;
                return Some(t);
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let page = self.pages[self.page_idx];
            self.page_idx += 1;
            self.buffer = self
                .heap
                .page_records(page)
                .iter()
                .map(|b| decode_row(b))
                .collect();
            self.buffer_idx = 0;
        }
    }
}

enum Source {
    /// Everything fit in memory.
    InMemory(Vec<Tuple>, usize),
    /// Runs spilled to heap files; merged through a min-heap of cursors.
    Spilled {
        readers: Vec<RunReader>,
        heads: BinaryHeap<Head>,
    },
    Empty,
}

struct Head {
    key: Vec<volcano_rel::Value>,
    run: usize,
    tuple: Tuple,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; run index tie-break for determinism.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// Sort with bounded memory: runs of at most `memory_rows` tuples are
/// sorted in memory; when more than one run forms, runs spill to heap
/// files on `pool` and are merged in a single level.
pub struct ExternalSort {
    child: BoxedOperator,
    keys: Vec<usize>,
    pool: Arc<BufferPool>,
    memory_rows: usize,
    source: Source,
    /// Input rows sorted (cumulative across re-opens).
    rows_sorted: u64,
    /// Runs spilled to heap files (cumulative).
    runs_spilled: u64,
}

impl ExternalSort {
    /// Build the operator.
    pub fn new(
        child: BoxedOperator,
        keys: Vec<usize>,
        pool: Arc<BufferPool>,
        memory_rows: usize,
    ) -> Self {
        ExternalSort {
            child,
            keys,
            pool,
            memory_rows: memory_rows.max(2),
            source: Source::Empty,
            rows_sorted: 0,
            runs_spilled: 0,
        }
    }

    fn key_of(keys: &[usize], t: &Tuple) -> Vec<volcano_rel::Value> {
        keys.iter().map(|&i| t[i].clone()).collect()
    }

    fn sort_run(keys: &[usize], run: &mut [Tuple]) {
        run.sort_by(|a, b| {
            for &k in keys {
                match a[k].cmp(&b[k]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
    }
}

impl Operator for ExternalSort {
    fn open(&mut self) {
        self.child.open();
        let mut run: Vec<Tuple> = Vec::new();
        let mut spilled: Vec<HeapFile> = Vec::new();
        while let Some(t) = self.child.next() {
            run.push(t);
            self.rows_sorted += 1;
            if run.len() >= self.memory_rows {
                // Spill the sorted run.
                Self::sort_run(&self.keys, &mut run);
                let file = HeapFile::create(self.pool.clone());
                for t in run.drain(..) {
                    file.insert(&encode_row(&t));
                }
                spilled.push(file);
                self.runs_spilled += 1;
            }
        }
        self.child.close();

        self.source = if spilled.is_empty() {
            Self::sort_run(&self.keys, &mut run);
            Source::InMemory(run, 0)
        } else {
            // The final partial run spills too: one uniform merge.
            if !run.is_empty() {
                Self::sort_run(&self.keys, &mut run);
                let file = HeapFile::create(self.pool.clone());
                for t in run.drain(..) {
                    file.insert(&encode_row(&t));
                }
                spilled.push(file);
                self.runs_spilled += 1;
            }
            let mut readers: Vec<RunReader> = spilled.into_iter().map(RunReader::new).collect();
            let mut heads = BinaryHeap::new();
            for (i, r) in readers.iter_mut().enumerate() {
                if let Some(t) = r.next() {
                    heads.push(Head {
                        key: Self::key_of(&self.keys, &t),
                        run: i,
                        tuple: t,
                    });
                }
            }
            Source::Spilled { readers, heads }
        };
    }

    fn next(&mut self) -> Option<Tuple> {
        match &mut self.source {
            Source::Empty => None,
            Source::InMemory(rows, idx) => {
                if *idx < rows.len() {
                    let t = std::mem::take(&mut rows[*idx]);
                    *idx += 1;
                    Some(t)
                } else {
                    None
                }
            }
            Source::Spilled { readers, heads } => {
                let head = heads.pop()?;
                if let Some(t) = readers[head.run].next() {
                    heads.push(Head {
                        key: Self::key_of(&self.keys, &t),
                        run: head.run,
                        tuple: t,
                    });
                }
                Some(head.tuple)
            }
        }
    }

    fn close(&mut self) {
        self.source = Source::Empty;
    }

    fn name(&self) -> &'static str {
        "external_sort"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rows_sorted", self.rows_sorted),
            ("runs_spilled", self.runs_spilled),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_rel::Value;
    use volcano_store::MemDisk;

    struct Rows(Vec<Tuple>, usize);

    impl Operator for Rows {
        fn open(&mut self) {
            self.1 = 0;
        }

        fn next(&mut self) -> Option<Tuple> {
            let t = self.0.get(self.1).cloned();
            if t.is_some() {
                self.1 += 1;
            }
            t
        }

        fn close(&mut self) {}
    }

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64))
    }

    fn rows(n: i64) -> Box<Rows> {
        let mut v: Vec<Tuple> = (0..n).map(|i| vec![Value::Int((i * 7919) % 997)]).collect();
        v.reverse();
        Box::new(Rows(v, 0))
    }

    #[test]
    fn in_memory_path_when_everything_fits() {
        let p = pool();
        let mut s = ExternalSort::new(rows(100), vec![0], p.clone(), 1_000);
        s.open();
        let mut out = Vec::new();
        while let Some(t) = s.next() {
            out.push(t);
        }
        s.close();
        assert_eq!(out.len(), 100);
        for w in out.windows(2) {
            assert!(w[0][0] <= w[1][0]);
        }
        // Nothing spilled: data may live in the (write-back) pool, but no
        // runs were read back.
        let (_, misses, _) = p.stats();
        assert_eq!(misses, 0);
    }

    #[test]
    fn spilled_runs_merge_correctly() {
        // A tiny pool forces the run files through the disk.
        let p = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4));
        let mut s = ExternalSort::new(rows(5_000), vec![0], p.clone(), 256);
        s.open();
        let mut out = Vec::new();
        while let Some(t) = s.next() {
            out.push(t);
        }
        s.close();
        assert_eq!(out.len(), 5_000);
        for w in out.windows(2) {
            assert!(w[0][0] <= w[1][0], "merged output out of order");
        }
        // ~20 runs were written and read back through the pool/disk.
        let disk = p.disk().stats();
        assert!(
            disk.reads() + disk.writes() > 0,
            "external sort must do real I/O"
        );
    }

    #[test]
    fn duplicates_and_empty_input() {
        let p = pool();
        let mut dup_rows: Vec<Tuple> = (0..600).map(|i| vec![Value::Int(i % 3)]).collect();
        dup_rows.reverse();
        let mut s = ExternalSort::new(Box::new(Rows(dup_rows, 0)), vec![0], p.clone(), 100);
        s.open();
        let mut counts = [0usize; 3];
        while let Some(t) = s.next() {
            let Value::Int(k) = t[0] else { panic!() };
            counts[k as usize] += 1;
        }
        assert_eq!(counts, [200, 200, 200]);

        let mut empty = ExternalSort::new(Box::new(Rows(vec![], 0)), vec![0], p, 100);
        empty.open();
        assert!(empty.next().is_none());
    }
}
