//! Columnar batches: the unit of work of the vectorized execution
//! engine.
//!
//! Where the tuple engine moves one `Vec<Value>` per `next` call, the
//! batch engine moves a [`Batch`]: one typed column vector per attribute
//! plus an optional *selection vector* naming the rows that are still
//! live. Operators amortize their per-call overhead (virtual dispatch,
//! bounds checks, branch mispredictions) over a configurable number of
//! rows, and the caller-supplied output batch is recycled call after
//! call, so steady-state execution allocates nothing per row.
//!
//! Columns are typed ([`Column::Int`], [`Column::Float`], …) with a
//! validity mask for SQL NULL; a column whose values do not fit one type
//! degrades to [`Column::Any`], which keeps the engine total over every
//! plan while letting the overwhelmingly common homogeneous case run on
//! primitive slices.

use volcano_rel::catalog::ColType;
use volcano_rel::value::Tuple;
use volcano_rel::Value;
use volcano_store::record::Field;

/// Default number of rows per batch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A typed column vector with a validity mask, or an untyped fallback.
///
/// Invariant: in the typed variants `data.len() == valid.len()`;
/// `valid[i] == false` means row `i` is SQL NULL (its `data` slot holds
/// an arbitrary placeholder).
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int {
        /// Values (placeholder where invalid).
        data: Vec<i64>,
        /// Validity mask: `false` = NULL.
        valid: Vec<bool>,
    },
    /// 64-bit floats (finite; NaN is banned by [`Value`]).
    Float {
        /// Values (placeholder where invalid).
        data: Vec<f64>,
        /// Validity mask: `false` = NULL.
        valid: Vec<bool>,
    },
    /// Booleans.
    Bool {
        /// Values (placeholder where invalid).
        data: Vec<bool>,
        /// Validity mask: `false` = NULL.
        valid: Vec<bool>,
    },
    /// UTF-8 strings.
    Str {
        /// Values (placeholder where invalid).
        data: Vec<String>,
        /// Validity mask: `false` = NULL.
        valid: Vec<bool>,
    },
    /// Heterogeneous fallback: plain values, NULL included inline.
    Any(Vec<Value>),
}

impl Column {
    /// An empty column typed for a catalog column type.
    pub fn with_type(ty: ColType) -> Self {
        match ty {
            ColType::Int => Column::Int {
                data: Vec::new(),
                valid: Vec::new(),
            },
            ColType::Float => Column::Float {
                data: Vec::new(),
                valid: Vec::new(),
            },
            ColType::Bool => Column::Bool {
                data: Vec::new(),
                valid: Vec::new(),
            },
            ColType::Str => Column::Str {
                data: Vec::new(),
                valid: Vec::new(),
            },
        }
    }

    /// An empty untyped column (used where no type is known up front;
    /// the first pushed value specializes it).
    pub fn any() -> Self {
        Column::Any(Vec::new())
    }

    /// Number of physical rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { data, .. } => data.len(),
            Column::Float { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
            Column::Any(v) => v.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all rows, keeping the variant and the allocated capacity
    /// (this is what makes batch reuse allocation-free).
    pub fn clear(&mut self) {
        match self {
            Column::Int { data, valid } => {
                data.clear();
                valid.clear();
            }
            Column::Float { data, valid } => {
                data.clear();
                valid.clear();
            }
            Column::Bool { data, valid } => {
                data.clear();
                valid.clear();
            }
            Column::Str { data, valid } => {
                data.clear();
                valid.clear();
            }
            Column::Any(v) => v.clear(),
        }
    }

    /// Is row `i` SQL NULL?
    pub fn is_null_at(&self, i: usize) -> bool {
        match self {
            Column::Int { valid, .. }
            | Column::Float { valid, .. }
            | Column::Bool { valid, .. }
            | Column::Str { valid, .. } => !valid[i],
            Column::Any(v) => v[i].is_null(),
        }
    }

    /// The value at row `i` (clones strings).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int { data, valid } => {
                if valid[i] {
                    Value::Int(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Float { data, valid } => {
                if valid[i] {
                    Value::float(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Bool { data, valid } => {
                if valid[i] {
                    Value::Bool(data[i])
                } else {
                    Value::Null
                }
            }
            Column::Str { data, valid } => {
                if valid[i] {
                    Value::Str(data[i].clone())
                } else {
                    Value::Null
                }
            }
            Column::Any(v) => v[i].clone(),
        }
    }

    /// Rebuild `self` as [`Column::Any`] holding its current values.
    fn demote(&mut self) {
        if matches!(self, Column::Any(_)) {
            return;
        }
        let vals: Vec<Value> = (0..self.len()).map(|i| self.value_at(i)).collect();
        *self = Column::Any(vals);
    }

    /// Append a value, specializing an empty untyped column to the
    /// value's type and demoting to [`Column::Any`] on a type clash.
    pub fn push_value(&mut self, v: Value) {
        // An empty untyped column takes the type of its first value.
        if let Column::Any(vals) = self {
            if vals.is_empty() {
                match &v {
                    Value::Int(_) => *self = Column::with_type(ColType::Int),
                    Value::Float(_) => *self = Column::with_type(ColType::Float),
                    Value::Bool(_) => *self = Column::with_type(ColType::Bool),
                    Value::Str(_) => *self = Column::with_type(ColType::Str),
                    Value::Null => {}
                }
            }
        }
        match (&mut *self, v) {
            (Column::Int { data, valid }, Value::Int(i)) => {
                data.push(i);
                valid.push(true);
            }
            (Column::Float { data, valid }, Value::Float(x)) => {
                data.push(x.get());
                valid.push(true);
            }
            (Column::Bool { data, valid }, Value::Bool(b)) => {
                data.push(b);
                valid.push(true);
            }
            (Column::Str { data, valid }, Value::Str(s)) => {
                data.push(s);
                valid.push(true);
            }
            (col, Value::Null) if !matches!(col, Column::Any(_)) => col.push_null(),
            (Column::Any(vals), v) => vals.push(v),
            (col, v) => {
                col.demote();
                let Column::Any(vals) = col else {
                    unreachable!()
                };
                vals.push(v);
            }
        }
    }

    /// Append a stored field (the scan path; avoids building a `Value`
    /// for the typed cases).
    pub fn push_field(&mut self, f: Field) {
        match (&mut *self, f) {
            (Column::Int { data, valid }, Field::Int(i)) => {
                data.push(i);
                valid.push(true);
            }
            (Column::Float { data, valid }, Field::Float(x)) => {
                data.push(x);
                valid.push(true);
            }
            (Column::Bool { data, valid }, Field::Bool(b)) => {
                data.push(b);
                valid.push(true);
            }
            (Column::Str { data, valid }, Field::Str(s)) => {
                data.push(s);
                valid.push(true);
            }
            (col, Field::Null) if !matches!(col, Column::Any(_)) => col.push_null(),
            (col, f) => col.push_value(match f {
                Field::Null => Value::Null,
                Field::Bool(b) => Value::Bool(b),
                Field::Int(i) => Value::Int(i),
                Field::Float(x) => Value::float(x),
                Field::Str(s) => Value::Str(s),
            }),
        }
    }

    /// Append a NULL row.
    pub fn push_null(&mut self) {
        match self {
            Column::Int { data, valid } => {
                data.push(0);
                valid.push(false);
            }
            Column::Float { data, valid } => {
                data.push(0.0);
                valid.push(false);
            }
            Column::Bool { data, valid } => {
                data.push(false);
                valid.push(false);
            }
            Column::Str { data, valid } => {
                data.push(String::new());
                valid.push(false);
            }
            Column::Any(v) => v.push(Value::Null),
        }
    }

    /// Shorten the column to its first `len` rows (no-op when already
    /// shorter). Lets a speculative decoder roll back partial pushes.
    pub fn truncate(&mut self, len: usize) {
        match self {
            Column::Int { data, valid } => {
                data.truncate(len);
                valid.truncate(len);
            }
            Column::Float { data, valid } => {
                data.truncate(len);
                valid.truncate(len);
            }
            Column::Bool { data, valid } => {
                data.truncate(len);
                valid.truncate(len);
            }
            Column::Str { data, valid } => {
                data.truncate(len);
                valid.truncate(len);
            }
            Column::Any(v) => v.truncate(len),
        }
    }

    /// Append the rows of `src` named by `sel` (or all rows when `sel`
    /// is `None`) — the column-at-a-time gather kernel.
    pub fn gather_from(&mut self, src: &Column, sel: Option<&[u32]>) {
        // Fast paths: same-variant typed gathers run on primitive slices.
        macro_rules! typed_gather {
            ($d:ident, $v:ident, $sd:ident, $sv:ident) => {
                match sel {
                    None => {
                        $d.extend_from_slice($sd);
                        $v.extend_from_slice($sv);
                    }
                    Some(idx) => {
                        $d.reserve(idx.len());
                        $v.reserve(idx.len());
                        for &i in idx {
                            $d.push($sd[i as usize].clone());
                            $v.push($sv[i as usize]);
                        }
                    }
                }
            };
        }
        match (&mut *self, src) {
            (
                Column::Int { data, valid },
                Column::Int {
                    data: sd,
                    valid: sv,
                },
            ) => typed_gather!(data, valid, sd, sv),
            (
                Column::Float { data, valid },
                Column::Float {
                    data: sd,
                    valid: sv,
                },
            ) => typed_gather!(data, valid, sd, sv),
            (
                Column::Bool { data, valid },
                Column::Bool {
                    data: sd,
                    valid: sv,
                },
            ) => typed_gather!(data, valid, sd, sv),
            (
                Column::Str { data, valid },
                Column::Str {
                    data: sd,
                    valid: sv,
                },
            ) => typed_gather!(data, valid, sd, sv),
            // A fresh (empty) destination adopts a *typed* source's
            // variant. An `Any` source must NOT take these arms: its
            // `empty_like` is another empty `Any`, so re-dispatching
            // would recurse forever — it goes value-wise below instead.
            (dst, src) if dst.is_empty() && !matches!(src, Column::Any(_)) => {
                *dst = src.empty_like();
                dst.gather_from(src, sel);
            }
            // Mismatched variants: go value-wise through the fallback.
            (dst, src) => {
                dst.demote();
                let Column::Any(vals) = dst else {
                    unreachable!()
                };
                match sel {
                    None => vals.extend((0..src.len()).map(|i| src.value_at(i))),
                    Some(idx) => vals.extend(idx.iter().map(|&i| src.value_at(i as usize))),
                }
            }
        }
    }

    /// An empty column of the same variant.
    pub fn empty_like(&self) -> Column {
        match self {
            Column::Int { .. } => Column::with_type(ColType::Int),
            Column::Float { .. } => Column::with_type(ColType::Float),
            Column::Bool { .. } => Column::with_type(ColType::Bool),
            Column::Str { .. } => Column::with_type(ColType::Str),
            Column::Any(_) => Column::any(),
        }
    }

    /// Value equality of row `a` of `self` and row `b` of `other`,
    /// matching [`Value`]'s `Eq` (so `Int(1) != Float(1.0)`, exactly as
    /// the tuple engine's hash tables behave). NULL equals nothing.
    pub fn rows_eq(&self, a: usize, other: &Column, b: usize) -> bool {
        match (self, other) {
            (
                Column::Int {
                    data: da,
                    valid: va,
                },
                Column::Int {
                    data: db,
                    valid: vb,
                },
            ) => va[a] && vb[b] && da[a] == db[b],
            (
                Column::Bool {
                    data: da,
                    valid: va,
                },
                Column::Bool {
                    data: db,
                    valid: vb,
                },
            ) => va[a] && vb[b] && da[a] == db[b],
            (
                Column::Str {
                    data: da,
                    valid: va,
                },
                Column::Str {
                    data: db,
                    valid: vb,
                },
            ) => va[a] && vb[b] && da[a] == db[b],
            (
                Column::Float {
                    data: da,
                    valid: va,
                },
                Column::Float {
                    data: db,
                    valid: vb,
                },
            ) => {
                // F64's Eq: bitwise except both zeros compare equal.
                va[a] && vb[b] && (da[a] == db[b] || (da[a] == 0.0 && db[b] == 0.0))
            }
            (a_col, b_col) => {
                let x = a_col.value_at(a);
                let y = b_col.value_at(b);
                !x.is_null() && !y.is_null() && x == y
            }
        }
    }
}

/// A batch: one column per attribute, plus an optional selection vector
/// of live physical row indices (ascending). `sel == None` means every
/// physical row is live.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// The columns, in schema position order.
    pub columns: Vec<Column>,
    /// Live physical rows (ascending indices); `None` = all rows.
    pub sel: Option<Vec<u32>>,
    rows: usize,
}

impl Batch {
    /// An empty batch with `n` untyped columns.
    pub fn with_columns(n: usize) -> Self {
        Batch {
            columns: (0..n).map(|_| Column::any()).collect(),
            sel: None,
            rows: 0,
        }
    }

    /// An empty batch typed from catalog column types.
    pub fn for_types(types: &[ColType]) -> Self {
        Batch {
            columns: types.iter().map(|&t| Column::with_type(t)).collect(),
            sel: None,
            rows: 0,
        }
    }

    /// Number of physical rows (before selection).
    pub fn physical_rows(&self) -> usize {
        self.rows
    }

    /// Record the physical row count after pushing into the columns
    /// directly. Panics if the columns disagree.
    pub fn set_physical_rows(&mut self, rows: usize) {
        debug_assert!(self.columns.iter().all(|c| c.len() == rows));
        self.rows = rows;
    }

    /// Number of live rows (after selection).
    pub fn live_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows,
        }
    }

    /// Remove all rows and the selection, keeping column variants and
    /// capacity.
    pub fn clear(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.sel = None;
        self.rows = 0;
    }

    /// Reset to exactly `n` cleared columns (reusing existing ones).
    pub fn reset_columns(&mut self, n: usize) {
        self.clear();
        if self.columns.len() > n {
            self.columns.truncate(n);
        }
        while self.columns.len() < n {
            self.columns.push(Column::any());
        }
    }

    /// Append one row of values (the adapter path).
    pub fn push_row(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.columns.len());
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push_value(v);
        }
        self.rows += 1;
    }

    /// Materialize the live row at live-position `i` as a tuple.
    pub fn row_at_live(&self, i: usize) -> Tuple {
        let phys = match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        };
        self.columns.iter().map(|c| c.value_at(phys)).collect()
    }

    /// The live physical indices, materialized into `scratch` when the
    /// batch has no selection vector.
    pub fn live_indices<'a>(&'a self, scratch: &'a mut Vec<u32>) -> &'a [u32] {
        match &self.sel {
            Some(s) => s.as_slice(),
            None => {
                scratch.clear();
                scratch.extend(0..self.rows as u32);
                scratch.as_slice()
            }
        }
    }
}

/// A vectorized operator: one node of a batch-executable plan.
///
/// Contract: `open` before the first `next_batch`; `next_batch` fills
/// the caller-supplied `out` (clearing it first) and returns `false` at
/// end of stream, after which it keeps returning `false`; `close`
/// releases resources. A returned batch may have zero live rows.
/// Re-opening after `close` restarts the stream.
pub trait BatchOperator: Send {
    /// Prepare to produce batches.
    fn open(&mut self);

    /// Fill `out` with the next batch; `false` at end of stream.
    fn next_batch(&mut self, out: &mut Batch) -> bool;

    /// Release resources.
    fn close(&mut self);

    /// Short algorithm name for diagnostics (e.g. `"batch_hash_join"`).
    fn name(&self) -> &'static str {
        "batch_operator"
    }

    /// Operator-specific counters for `EXPLAIN ANALYZE`, as in
    /// [`crate::iterator::Operator::metrics`].
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// A boxed batch operator tree.
pub type BoxedBatchOperator = Box<dyn BatchOperator>;

/// Drain a batch operator into row tuples (opens and closes it).
pub fn collect_batches(op: &mut dyn BatchOperator) -> Vec<Tuple> {
    op.open();
    let mut out = Vec::new();
    let mut batch = Batch::default();
    while op.next_batch(&mut batch) {
        for i in 0..batch.live_rows() {
            out.push(batch.row_at_live(i));
        }
    }
    op.close();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_push_and_read_back() {
        let mut c = Column::with_type(ColType::Int);
        c.push_value(Value::Int(1));
        c.push_null();
        c.push_value(Value::Int(3));
        assert_eq!(c.len(), 3);
        assert!(c.is_null_at(1));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert_eq!(c.value_at(1), Value::Null);
        assert_eq!(c.value_at(2), Value::Int(3));
    }

    #[test]
    fn untyped_column_specializes_on_first_value() {
        let mut c = Column::any();
        c.push_value(Value::str("a"));
        assert!(matches!(c, Column::Str { .. }));
        c.push_value(Value::Null);
        assert!(c.is_null_at(1));
    }

    #[test]
    fn type_clash_demotes_to_any() {
        let mut c = Column::with_type(ColType::Int);
        c.push_value(Value::Int(1));
        c.push_value(Value::str("oops"));
        assert!(matches!(c, Column::Any(_)));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert_eq!(c.value_at(1), Value::str("oops"));
    }

    #[test]
    fn gather_typed_and_mixed() {
        let mut src = Column::with_type(ColType::Int);
        for i in 0..10 {
            src.push_value(Value::Int(i));
        }
        let mut dst = Column::with_type(ColType::Int);
        dst.gather_from(&src, Some(&[1, 3, 5]));
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.value_at(2), Value::Int(5));
        // Full gather.
        let mut all = Column::with_type(ColType::Int);
        all.gather_from(&src, None);
        assert_eq!(all.len(), 10);
        // Mixed-variant gather falls back to values.
        let mut any = Column::any();
        any.push_value(Value::str("x"));
        any.gather_from(&src, Some(&[0]));
        assert_eq!(any.value_at(1), Value::Int(0));
    }

    #[test]
    fn rows_eq_matches_value_semantics() {
        let mut ints = Column::with_type(ColType::Int);
        ints.push_value(Value::Int(1));
        ints.push_null();
        let mut floats = Column::with_type(ColType::Float);
        floats.push_value(Value::float(1.0));
        // Int(1) != Float(1.0), as in the tuple engine's hash tables.
        assert!(!ints.rows_eq(0, &floats, 0));
        assert!(ints.rows_eq(0, &ints, 0));
        // NULL joins nothing, not even NULL.
        assert!(!ints.rows_eq(1, &ints, 1));
    }

    #[test]
    fn batch_push_rows_and_selection() {
        let mut b = Batch::with_columns(2);
        b.push_row(vec![Value::Int(1), Value::str("a")]);
        b.push_row(vec![Value::Int(2), Value::str("b")]);
        b.push_row(vec![Value::Int(3), Value::str("c")]);
        assert_eq!(b.physical_rows(), 3);
        assert_eq!(b.live_rows(), 3);
        b.sel = Some(vec![0, 2]);
        assert_eq!(b.live_rows(), 2);
        assert_eq!(b.row_at_live(1), vec![Value::Int(3), Value::str("c")]);
        b.clear();
        assert_eq!(b.live_rows(), 0);
        assert!(b.sel.is_none());
        // Capacity-preserving clear keeps the specialized variants.
        assert!(matches!(b.columns[0], Column::Int { .. }));
    }

    /// Gathering from an untyped (`Any`) source into an empty
    /// destination must go value-wise, not re-dispatch on an `Any`
    /// `empty_like` (which used to recurse forever). An adapter column
    /// whose first row is NULL stays `Any`, so this shape occurs on any
    /// projection above a tuple fallback emitting a NULL first.
    #[test]
    fn gather_from_any_source_into_empty_destination() {
        let mut src = Column::any();
        src.push_value(Value::Null);
        src.push_value(Value::Int(7));
        for mut dst in [Column::any(), Column::with_type(ColType::Int)] {
            dst.gather_from(&src, None);
            assert_eq!(dst.value_at(0), Value::Null);
            assert_eq!(dst.value_at(1), Value::Int(7));
            let mut sel_dst = Column::any();
            sel_dst.gather_from(&src, Some(&[1]));
            assert_eq!(sel_dst.len(), 1);
            assert_eq!(sel_dst.value_at(0), Value::Int(7));
        }
    }
}
