//! Vectorized grouped aggregation: the shared accumulator state machine
//! and the columnar group table behind every aggregate in every engine.
//!
//! Three layers share this module so their results agree bit-for-bit:
//! the tuple [`HashAggregate`](crate::ops::HashAggregate), the batch
//! [`BatchHashAggregate`](crate::ops::BatchHashAggregate), and the fused
//! pipeline's terminal aggregation sink. The contract has three parts:
//!
//! * **Exact integer sums.** [`SumState`] accumulates `Int` inputs in
//!   `i64` with checked overflow, promoting to `f64` only when the exact
//!   sum no longer fits — `SUM` over integers is precise past 2^53 and
//!   identical regardless of accumulation order, which is what makes
//!   two-phase parallel aggregation deterministic on integer columns.
//!
//! * **Decomposable partials.** Every aggregate splits into a partial
//!   form computed per worker and a final merge: `COUNT` sums partial
//!   counts, `SUM`/`MIN`/`MAX` fold partial values with the same
//!   accumulator, and `AVG` carries a `(sum, count)` pair — the partial
//!   row layout appends a companion count column directly after the
//!   average's sum column (see [`partial_positions`]).
//!
//! * **SQL grouping semantics.** `GROUP BY` places all NULLs of a key in
//!   one group (unlike joins, where NULL matches nothing), so the group
//!   hash folds a NULL tag instead of poisoning the row, and key
//!   equality treats NULL = NULL as a match.

use std::ops::Range;

use volcano_core::fxhash::FxHashMap;
use volcano_rel::value::Tuple;
use volcano_rel::Value;

use super::hash::{fold_value, mix};
use crate::batch::{Batch, Column};

/// Hash tag folded for a NULL group-key value (joins poison the row
/// instead; grouping must keep it).
const TAG_NULL_GROUP: u64 = 0x6e11;

/// An aggregate compiled to input column positions.
#[derive(Debug, Clone, Copy)]
pub enum CompiledAgg {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(col at position)`.
    Sum(usize),
    /// `MIN(col at position)`.
    Min(usize),
    /// `MAX(col at position)`.
    Max(usize),
    /// `AVG(col at position)`.
    Avg(usize),
}

/// Which phase of a (possibly split) aggregation an operator computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// One-shot: raw input in, final values out.
    Complete,
    /// Per-worker: raw input in, partial rows out (no grand-total row).
    Partial,
    /// Merge: partial rows in, final values out.
    Final,
}

/// Exact integer summation with checked overflow promotion to `f64`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumState {
    int: i64,
    float: f64,
    promoted: bool,
    seen: bool,
}

impl SumState {
    /// Add an exact integer term.
    #[inline]
    pub fn add_i64(&mut self, x: i64) {
        self.seen = true;
        if self.promoted {
            self.float += x as f64;
        } else if let Some(s) = self.int.checked_add(x) {
            self.int = s;
        } else {
            self.promote();
            self.float += x as f64;
        }
    }

    /// Add a float term (the sum is float from here on).
    #[inline]
    pub fn add_f64(&mut self, x: f64) {
        self.seen = true;
        if !self.promoted {
            self.promote();
        }
        self.float += x;
    }

    fn promote(&mut self) {
        self.promoted = true;
        self.float += self.int as f64;
        self.int = 0;
    }

    /// Fold a value in; `true` if it was numeric (NULLs and strings are
    /// skipped, matching SQL aggregate semantics).
    #[inline]
    pub fn add_value(&mut self, v: &Value) -> bool {
        match v {
            Value::Int(x) => {
                self.add_i64(*x);
                true
            }
            Value::Float(x) => {
                self.add_f64(x.get());
                true
            }
            _ => false,
        }
    }

    /// The sum as a value: NULL if nothing was added, exact `Int` while
    /// every term was an integer and the total fits `i64`, else `Float`.
    pub fn value(&self) -> Value {
        if !self.seen {
            Value::Null
        } else if self.promoted {
            Value::float(self.float)
        } else {
            Value::Int(self.int)
        }
    }

    /// The sum as `f64` (for the AVG division).
    pub fn total_f64(&self) -> f64 {
        if self.promoted {
            self.float
        } else {
            self.int as f64
        }
    }
}

/// Running accumulator for one aggregate, usable in any phase.
#[derive(Debug, Clone)]
pub enum AccState {
    /// `COUNT(*)` row count.
    Count(i64),
    /// `SUM` total.
    Sum(SumState),
    /// `MIN` best-so-far.
    Min(Option<Value>),
    /// `MAX` best-so-far.
    Max(Option<Value>),
    /// `AVG` as a decomposable `(sum, count)` pair.
    Avg(SumState, i64),
}

#[inline]
fn best_update(cur: &mut Option<Value>, v: &Value, want_smaller: bool) {
    if v.is_null() {
        return;
    }
    let better = match cur {
        Some(c) => {
            if want_smaller {
                v < c
            } else {
                v > c
            }
        }
        None => true,
    };
    if better {
        *cur = Some(v.clone());
    }
}

impl AccState {
    /// The empty accumulator for `agg`.
    pub fn new_for(agg: &CompiledAgg) -> AccState {
        match agg {
            CompiledAgg::CountStar => AccState::Count(0),
            CompiledAgg::Sum(_) => AccState::Sum(SumState::default()),
            CompiledAgg::Min(_) => AccState::Min(None),
            CompiledAgg::Max(_) => AccState::Max(None),
            CompiledAgg::Avg(_) => AccState::Avg(SumState::default(), 0),
        }
    }

    /// Fold one raw input value (for `Count`, the value is ignored — the
    /// call itself counts the row).
    #[inline]
    pub fn accumulate(&mut self, v: &Value) {
        match self {
            AccState::Count(c) => *c += 1,
            AccState::Sum(s) => {
                s.add_value(v);
            }
            AccState::Min(m) => best_update(m, v, true),
            AccState::Max(m) => best_update(m, v, false),
            AccState::Avg(s, n) => {
                if s.add_value(v) {
                    *n += 1;
                }
            }
        }
    }

    /// Fold one *partial* row in the final phase: `main` is the
    /// aggregate's partial column, `companion` the AVG count column.
    #[inline]
    pub fn merge(&mut self, main: &Value, companion: Option<&Value>) {
        match self {
            AccState::Count(c) => {
                if let Value::Int(x) = main {
                    *c += x;
                }
            }
            AccState::Sum(s) => {
                s.add_value(main);
            }
            AccState::Min(m) => best_update(m, main, true),
            AccState::Max(m) => best_update(m, main, false),
            AccState::Avg(s, n) => {
                s.add_value(main);
                if let Some(Value::Int(x)) = companion {
                    *n += x;
                }
            }
        }
    }

    /// The final value of this accumulator.
    pub fn finish(&self) -> Value {
        match self {
            AccState::Count(c) => Value::Int(*c),
            AccState::Sum(s) => s.value(),
            AccState::Min(m) | AccState::Max(m) => m.clone().unwrap_or(Value::Null),
            AccState::Avg(s, n) => {
                if *n > 0 {
                    Value::float(s.total_f64() / *n as f64)
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Append the partial representation (one value, or two for AVG).
    pub fn push_partial(&self, row: &mut Tuple) {
        match self {
            AccState::Count(c) => row.push(Value::Int(*c)),
            AccState::Sum(s) => row.push(s.value()),
            AccState::Min(m) | AccState::Max(m) => row.push(m.clone().unwrap_or(Value::Null)),
            AccState::Avg(s, n) => {
                row.push(s.value());
                row.push(Value::Int(*n));
            }
        }
    }
}

/// Partial-row column positions for each aggregate: `(main, companion)`
/// where the companion is AVG's count column. The partial layout is the
/// group key columns followed by these, in aggregate order.
pub fn partial_positions(ngroup: usize, aggs: &[CompiledAgg]) -> Vec<(usize, Option<usize>)> {
    let mut pos = ngroup;
    aggs.iter()
        .map(|a| {
            let main = pos;
            let comp = if matches!(a, CompiledAgg::Avg(_)) {
                pos += 2;
                Some(main + 1)
            } else {
                pos += 1;
                None
            };
            (main, comp)
        })
        .collect()
}

/// Total column count of the partial row layout.
pub fn partial_arity(ngroup: usize, aggs: &[CompiledAgg]) -> usize {
    ngroup
        + aggs
            .iter()
            .map(|a| {
                if matches!(a, CompiledAgg::Avg(_)) {
                    2
                } else {
                    1
                }
            })
            .sum::<usize>()
}

#[inline]
fn col_is_null(col: &Column, i: usize) -> bool {
    match col {
        Column::Int { valid, .. }
        | Column::Float { valid, .. }
        | Column::Bool { valid, .. }
        | Column::Str { valid, .. } => !valid[i],
        Column::Any(vals) => vals[i].is_null(),
    }
}

/// Reusable per-batch scratch for [`GroupTable`].
#[derive(Debug, Default)]
pub struct GroupScratch {
    sel: Vec<u32>,
    group_of: Vec<u32>,
}

/// Columnar grouped-aggregation hash table.
///
/// Group keys are stored in columns (one per key), accumulators in a
/// flat row-major `groups × aggs` vector, and a hash → group-ids index
/// resolves each input row with exact NULL-aware key equality. Batches
/// are folded with typed column-at-a-time loops: `Int`/`Float` columns
/// take a direct-slice fast path, everything else falls back to
/// [`Column::value_at`].
#[derive(Debug)]
pub struct GroupTable {
    key_cols: Vec<Column>,
    template: Vec<AccState>,
    states: Vec<AccState>,
    buckets: FxHashMap<u64, Vec<u32>>,
    groups: usize,
}

impl GroupTable {
    /// An empty table grouping on `nkeys` key columns for `aggs`.
    pub fn new(nkeys: usize, aggs: &[CompiledAgg]) -> Self {
        GroupTable {
            key_cols: (0..nkeys).map(|_| Column::any()).collect(),
            template: aggs.iter().map(AccState::new_for).collect(),
            states: Vec::new(),
            buckets: FxHashMap::default(),
            groups: 0,
        }
    }

    /// Number of distinct groups seen so far.
    pub fn len(&self) -> usize {
        self.groups
    }

    /// `true` if no group exists yet.
    pub fn is_empty(&self) -> bool {
        self.groups == 0
    }

    /// Grand total over an empty input still yields one row: if nothing
    /// was grouped and there are no keys, materialize the empty group.
    pub fn ensure_grand_total(&mut self) {
        if self.groups == 0 && self.key_cols.is_empty() {
            self.states.extend(self.template.iter().cloned());
            self.buckets.entry(0).or_default().push(0);
            self.groups = 1;
        }
    }

    fn keys_match(&self, g: usize, batch: &Batch, keys: &[usize], r: usize) -> bool {
        keys.iter().enumerate().all(|(k, &p)| {
            let kc = &self.key_cols[k];
            let bc = &batch.columns[p];
            // GROUP BY: NULL groups with NULL (rows_eq rejects NULLs).
            (col_is_null(kc, g) && col_is_null(bc, r)) || kc.rows_eq(g, bc, r)
        })
    }

    /// Map every live row of `batch` to its group id (creating groups as
    /// needed), filling `group_of` parallel to `live`.
    fn assign_groups(
        &mut self,
        batch: &Batch,
        keys: &[usize],
        live: &[u32],
        group_of: &mut Vec<u32>,
    ) {
        group_of.clear();
        group_of.reserve(live.len());
        for &r in live {
            let r = r as usize;
            let mut h = 0u64;
            for &p in keys {
                h = fold_value(h, &batch.columns[p], r).unwrap_or_else(|| mix(h, TAG_NULL_GROUP));
            }
            let found = self.buckets.get(&h).and_then(|cands| {
                cands
                    .iter()
                    .copied()
                    .find(|&g| self.keys_match(g as usize, batch, keys, r))
            });
            let gid = match found {
                Some(g) => g,
                None => {
                    let g = self.groups as u32;
                    self.groups += 1;
                    for (k, &p) in keys.iter().enumerate() {
                        self.key_cols[k].push_value(batch.columns[p].value_at(r));
                    }
                    self.states.extend(self.template.iter().cloned());
                    self.buckets.entry(h).or_default().push(g);
                    g
                }
            };
            group_of.push(gid);
        }
    }

    /// Fold a batch of *raw* input rows (Complete / Partial phases).
    /// Returns the number of live rows consumed.
    pub fn accumulate(
        &mut self,
        batch: &Batch,
        keys: &[usize],
        aggs: &[CompiledAgg],
        scratch: &mut GroupScratch,
    ) -> usize {
        let GroupScratch { sel, group_of } = scratch;
        let live: Vec<u32> = batch.live_indices(sel).to_vec();
        self.assign_groups(batch, keys, &live, group_of);
        let naggs = self.template.len();
        for (j, agg) in aggs.iter().enumerate() {
            match *agg {
                CompiledAgg::CountStar => {
                    for &g in group_of.iter() {
                        if let AccState::Count(c) = &mut self.states[g as usize * naggs + j] {
                            *c += 1;
                        }
                    }
                }
                CompiledAgg::Sum(p) => match &batch.columns[p] {
                    Column::Int { data, valid } => {
                        for (k, &r) in live.iter().enumerate() {
                            let r = r as usize;
                            if valid[r] {
                                if let AccState::Sum(s) =
                                    &mut self.states[group_of[k] as usize * naggs + j]
                                {
                                    s.add_i64(data[r]);
                                }
                            }
                        }
                    }
                    Column::Float { data, valid } => {
                        for (k, &r) in live.iter().enumerate() {
                            let r = r as usize;
                            if valid[r] {
                                if let AccState::Sum(s) =
                                    &mut self.states[group_of[k] as usize * naggs + j]
                                {
                                    s.add_f64(data[r]);
                                }
                            }
                        }
                    }
                    col => {
                        for (k, &r) in live.iter().enumerate() {
                            self.states[group_of[k] as usize * naggs + j]
                                .accumulate(&col.value_at(r as usize));
                        }
                    }
                },
                CompiledAgg::Avg(p) => match &batch.columns[p] {
                    Column::Int { data, valid } => {
                        for (k, &r) in live.iter().enumerate() {
                            let r = r as usize;
                            if valid[r] {
                                if let AccState::Avg(s, n) =
                                    &mut self.states[group_of[k] as usize * naggs + j]
                                {
                                    s.add_i64(data[r]);
                                    *n += 1;
                                }
                            }
                        }
                    }
                    Column::Float { data, valid } => {
                        for (k, &r) in live.iter().enumerate() {
                            let r = r as usize;
                            if valid[r] {
                                if let AccState::Avg(s, n) =
                                    &mut self.states[group_of[k] as usize * naggs + j]
                                {
                                    s.add_f64(data[r]);
                                    *n += 1;
                                }
                            }
                        }
                    }
                    col => {
                        for (k, &r) in live.iter().enumerate() {
                            self.states[group_of[k] as usize * naggs + j]
                                .accumulate(&col.value_at(r as usize));
                        }
                    }
                },
                CompiledAgg::Min(p) | CompiledAgg::Max(p) => {
                    let want_smaller = matches!(agg, CompiledAgg::Min(_));
                    match &batch.columns[p] {
                        Column::Int { data, valid } => {
                            for (k, &r) in live.iter().enumerate() {
                                let r = r as usize;
                                if !valid[r] {
                                    continue;
                                }
                                let x = data[r];
                                let st = &mut self.states[group_of[k] as usize * naggs + j];
                                let cur = match st {
                                    AccState::Min(c) | AccState::Max(c) => c,
                                    _ => continue,
                                };
                                match cur {
                                    Some(Value::Int(m)) => {
                                        if (want_smaller && x < *m) || (!want_smaller && x > *m) {
                                            *m = x;
                                        }
                                    }
                                    None => *cur = Some(Value::Int(x)),
                                    _ => best_update(cur, &Value::Int(x), want_smaller),
                                }
                            }
                        }
                        col => {
                            for (k, &r) in live.iter().enumerate() {
                                self.states[group_of[k] as usize * naggs + j]
                                    .accumulate(&col.value_at(r as usize));
                            }
                        }
                    }
                }
            }
        }
        live.len()
    }

    /// Fold a batch of *partial* rows (Final phase): group keys are the
    /// leading columns, aggregate partials follow per
    /// [`partial_positions`]. Returns the number of live rows consumed.
    pub fn merge_partial(
        &mut self,
        batch: &Batch,
        aggs: &[CompiledAgg],
        scratch: &mut GroupScratch,
    ) -> usize {
        let nkeys = self.key_cols.len();
        let key_positions: Vec<usize> = (0..nkeys).collect();
        let positions = partial_positions(nkeys, aggs);
        let GroupScratch { sel, group_of } = scratch;
        let live: Vec<u32> = batch.live_indices(sel).to_vec();
        self.assign_groups(batch, &key_positions, &live, group_of);
        let naggs = self.template.len();
        for (k, &r) in live.iter().enumerate() {
            let r = r as usize;
            let base = group_of[k] as usize * naggs;
            for (j, (main, comp)) in positions.iter().enumerate() {
                let mv = batch.columns[*main].value_at(r);
                let cv = comp.map(|c| batch.columns[c].value_at(r));
                self.states[base + j].merge(&mv, cv.as_ref());
            }
        }
        live.len()
    }

    /// Materialize groups `range` into `out`: final values, or the
    /// partial row layout when `partial` is set.
    pub fn emit(&self, range: Range<usize>, aggs: &[CompiledAgg], partial: bool, out: &mut Batch) {
        let arity = if partial {
            partial_arity(self.key_cols.len(), aggs)
        } else {
            self.key_cols.len() + aggs.len()
        };
        out.clear();
        if out.columns.len() != arity {
            out.reset_columns(arity);
        }
        let naggs = aggs.len();
        for g in range {
            let mut row: Tuple = Vec::with_capacity(arity);
            for kc in &self.key_cols {
                row.push(kc.value_at(g));
            }
            for j in 0..naggs {
                let st = &self.states[g * naggs + j];
                if partial {
                    st.push_partial(&mut row);
                } else {
                    row.push(st.finish());
                }
            }
            out.push_row(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_rel::catalog::ColType;

    #[test]
    fn integer_sum_is_exact_past_2_53() {
        // 2^53 + 1 is not representable in f64; the old float
        // accumulator silently lost the +1.
        let mut s = SumState::default();
        s.add_i64(1i64 << 53);
        s.add_i64(1);
        assert_eq!(s.value(), Value::Int((1i64 << 53) + 1));
    }

    #[test]
    fn integer_sum_promotes_on_overflow() {
        let mut s = SumState::default();
        s.add_i64(i64::MAX);
        s.add_i64(i64::MAX);
        let Value::Float(f) = s.value() else {
            panic!("expected float after promotion, got {:?}", s.value());
        };
        let expect = i64::MAX as f64 * 2.0;
        assert!((f.get() - expect).abs() <= expect.abs() * 1e-12);
    }

    #[test]
    fn sum_goes_float_once_any_term_is_float() {
        let mut s = SumState::default();
        s.add_i64(2);
        s.add_f64(0.5);
        assert_eq!(s.value(), Value::float(2.5));
    }

    #[test]
    fn null_group_keys_group_together() {
        let mut col = Column::with_type(ColType::Int);
        col.push_value(Value::Int(1));
        col.push_null();
        col.push_null();
        let mut vals = Column::with_type(ColType::Int);
        vals.push_value(Value::Int(10));
        vals.push_value(Value::Int(20));
        vals.push_value(Value::Int(30));
        let mut b = Batch::with_columns(0);
        b.columns = vec![col, vals];
        b.set_physical_rows(3);

        let aggs = [CompiledAgg::Sum(1)];
        let mut t = GroupTable::new(1, &aggs);
        let mut scratch = GroupScratch::default();
        t.accumulate(&b, &[0], &aggs, &mut scratch);
        assert_eq!(t.len(), 2, "both NULL keys fall in one group");

        let mut out = Batch::default();
        t.emit(0..t.len(), &aggs, false, &mut out);
        let mut rows: Vec<Tuple> = (0..out.live_rows()).map(|i| out.row_at_live(i)).collect();
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            rows,
            vec![
                vec![Value::Null, Value::Int(50)],
                vec![Value::Int(1), Value::Int(10)],
            ]
        );
    }

    #[test]
    fn partial_then_final_matches_complete() {
        // Split rows across two "workers", merge the partials, and
        // check the result equals a one-shot aggregation.
        let aggs = [
            CompiledAgg::CountStar,
            CompiledAgg::Sum(1),
            CompiledAgg::Min(1),
            CompiledAgg::Max(1),
            CompiledAgg::Avg(1),
        ];
        let make = |rows: &[(i64, Option<i64>)]| {
            let mut k = Column::with_type(ColType::Int);
            let mut v = Column::with_type(ColType::Int);
            for &(key, val) in rows {
                k.push_value(Value::Int(key));
                match val {
                    Some(x) => v.push_value(Value::Int(x)),
                    None => v.push_null(),
                }
            }
            let mut b = Batch::with_columns(0);
            b.columns = vec![k, v];
            b.set_physical_rows(rows.len());
            b
        };
        let part1 = make(&[(1, Some(3)), (2, Some(7)), (1, None)]);
        let part2 = make(&[(2, Some(-1)), (1, Some(40)), (3, Some(0))]);

        let mut scratch = GroupScratch::default();
        let mut complete = GroupTable::new(1, &aggs);
        complete.accumulate(&part1, &[0], &aggs, &mut scratch);
        complete.accumulate(&part2, &[0], &aggs, &mut scratch);
        let mut expect = Batch::default();
        complete.emit(0..complete.len(), &aggs, false, &mut expect);
        let mut expect: Vec<Tuple> = (0..expect.live_rows())
            .map(|i| expect.row_at_live(i))
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let mut fin = GroupTable::new(1, &aggs);
        for part in [&part1, &part2] {
            let mut w = GroupTable::new(1, &aggs);
            w.accumulate(part, &[0], &aggs, &mut scratch);
            let mut pb = Batch::default();
            w.emit(0..w.len(), &aggs, true, &mut pb);
            fin.merge_partial(&pb, &aggs, &mut scratch);
        }
        let mut got = Batch::default();
        fin.emit(0..fin.len(), &aggs, false, &mut got);
        let mut got: Vec<Tuple> = (0..got.live_rows()).map(|i| got.row_at_live(i)).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());

        assert_eq!(got, expect);
    }

    #[test]
    fn grand_total_over_empty_input() {
        let aggs = [CompiledAgg::CountStar, CompiledAgg::Sum(0)];
        let mut t = GroupTable::new(0, &aggs);
        t.ensure_grand_total();
        let mut out = Batch::default();
        t.emit(0..t.len(), &aggs, false, &mut out);
        assert_eq!(out.live_rows(), 1);
        assert_eq!(out.row_at_live(0), vec![Value::Int(0), Value::Null]);
    }
}
