//! Vectorized predicate evaluation.
//!
//! A [`CompiledPred`] conjunction is applied one conjunct at a time:
//! each conjunct narrows the selection vector by comparing one column
//! against one literal in a tight loop. The typed column × literal
//! combinations the storage layer actually produces (Int/Float/Str/Bool
//! columns) run on primitive slices; anything else falls back to
//! [`Value::sql_cmp`] per row, which keeps semantics identical to the
//! tuple engine's [`CompiledPred::eval`] by construction: a comparison
//! involving NULL rejects the row.

use volcano_rel::{CmpOp, Value};

use crate::batch::{Batch, Column};
use crate::ops::filter::CompiledPred;

/// Narrow one selection vector by `column <op> literal`, appending the
/// surviving indices to `out`. Also the fallback kernel of the fused
/// engine's monomorphized predicates, for columns that arrive demoted
/// or cross-typed at runtime.
pub(crate) fn filter_term(col: &Column, op: CmpOp, lit: &Value, sel: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(sel.len());
    match (col, lit) {
        (Column::Int { data, valid }, Value::Int(l)) => {
            for &i in sel {
                let i = i as usize;
                if valid[i] && op.eval(data[i].cmp(l)) {
                    out.push(i as u32);
                }
            }
        }
        (Column::Int { data, valid }, Value::Float(l)) => {
            let l = l.get();
            for &i in sel {
                let i = i as usize;
                if valid[i] {
                    if let Some(ord) = (data[i] as f64).partial_cmp(&l) {
                        if op.eval(ord) {
                            out.push(i as u32);
                        }
                    }
                }
            }
        }
        (Column::Float { data, valid }, Value::Int(l)) => {
            let l = *l as f64;
            for &i in sel {
                let i = i as usize;
                if valid[i] {
                    if let Some(ord) = data[i].partial_cmp(&l) {
                        if op.eval(ord) {
                            out.push(i as u32);
                        }
                    }
                }
            }
        }
        (Column::Float { data, valid }, Value::Float(l)) => {
            let l = l.get();
            for &i in sel {
                let i = i as usize;
                if valid[i] {
                    if let Some(ord) = data[i].partial_cmp(&l) {
                        if op.eval(ord) {
                            out.push(i as u32);
                        }
                    }
                }
            }
        }
        (Column::Str { data, valid }, Value::Str(l)) => {
            for &i in sel {
                let i = i as usize;
                if valid[i] && op.eval(data[i].as_str().cmp(l.as_str())) {
                    out.push(i as u32);
                }
            }
        }
        (Column::Bool { data, valid }, Value::Bool(l)) => {
            for &i in sel {
                let i = i as usize;
                if valid[i] && op.eval(data[i].cmp(l)) {
                    out.push(i as u32);
                }
            }
        }
        // NULL literal: SQL comparison with NULL is unknown — rejects
        // every row, exactly as `sql_cmp` returning `None` does.
        (_, Value::Null) => {}
        // Mixed or demoted columns: per-row values through sql_cmp.
        (col, lit) => {
            for &i in sel {
                let v = col.value_at(i as usize);
                if v.sql_cmp(lit).map(|ord| op.eval(ord)).unwrap_or(false) {
                    out.push(i);
                }
            }
        }
    }
}

/// Apply a compiled conjunction to `batch`, replacing its selection
/// vector with the surviving rows. `scratch` is reused across calls to
/// keep the kernel allocation-free in steady state. Returns the number
/// of surviving rows.
pub fn apply_pred(pred: &CompiledPred, batch: &mut Batch, scratch: &mut Vec<u32>) -> usize {
    for &(pos, op, ref lit) in pred.terms() {
        if batch.live_rows() == 0 {
            break;
        }
        // Current selection: the batch's own vector, or all rows.
        match batch.sel.take() {
            Some(sel) => {
                filter_term(&batch.columns[pos], op, lit, &sel, scratch);
                batch.sel = Some(std::mem::take(scratch));
                *scratch = sel; // recycle the old allocation
            }
            None => {
                let all: Vec<u32> = (0..batch.physical_rows() as u32).collect();
                filter_term(&batch.columns[pos], op, lit, &all, scratch);
                batch.sel = Some(std::mem::take(scratch));
                *scratch = all;
            }
        }
    }
    batch.live_rows()
}

/// Ordering helper kept for symmetry with the scalar path (used in
/// tests to cross-check kernel decisions).
#[cfg(test)]
fn scalar_accept(v: &Value, op: CmpOp, lit: &Value) -> bool {
    v.sql_cmp(lit).map(|ord| op.eval(ord)).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[Option<i64>]) -> Column {
        let mut c = Column::with_type(volcano_rel::catalog::ColType::Int);
        for v in vals {
            match v {
                Some(i) => c.push_value(Value::Int(*i)),
                None => c.push_null(),
            }
        }
        c
    }

    #[test]
    fn kernel_matches_scalar_semantics() {
        let col = int_col(&[Some(1), None, Some(5), Some(10), Some(-3)]);
        let lits = [Value::Int(5), Value::float(4.5), Value::Null];
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let sel: Vec<u32> = (0..col.len() as u32).collect();
        let mut out = Vec::new();
        for lit in &lits {
            for &op in &ops {
                filter_term(&col, op, lit, &sel, &mut out);
                let expect: Vec<u32> = sel
                    .iter()
                    .copied()
                    .filter(|&i| scalar_accept(&col.value_at(i as usize), op, lit))
                    .collect();
                assert_eq!(out, expect, "op={op:?} lit={lit:?}");
            }
        }
    }

    #[test]
    fn apply_pred_narrows_in_conjunct_order() {
        let mut b = Batch::with_columns(2);
        for i in 0..100i64 {
            b.push_row(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        let pred = CompiledPred::new(vec![
            (0, CmpOp::Lt, Value::Int(50)),
            (1, CmpOp::Eq, Value::Int(3)),
        ]);
        let mut scratch = Vec::new();
        let n = apply_pred(&pred, &mut b, &mut scratch);
        let expect: Vec<u32> = (0..100u32).filter(|i| i < &50 && i % 7 == 3).collect();
        assert_eq!(n, expect.len());
        assert_eq!(b.sel.as_deref(), Some(expect.as_slice()));
    }
}
