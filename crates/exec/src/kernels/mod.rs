//! Vectorized kernels: tight column-at-a-time loops shared by the batch
//! operators.
//!
//! Each kernel takes whole columns (plus an optional selection vector)
//! and produces a new selection vector or gathered output, so the
//! per-row work is a handful of machine instructions with no virtual
//! dispatch and no per-row allocation.

pub mod agg;
pub mod hash;
pub mod pred;

pub use agg::{AccState, GroupTable, SumState};
pub use hash::hash_join_keys;
pub use pred::apply_pred;
