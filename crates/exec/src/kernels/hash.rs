//! Vectorized key hashing for the batch hash join.
//!
//! The batch join keys its table by a precomputed 64-bit hash and
//! verifies candidates with exact [`Column::rows_eq`] equality, so the
//! hash only has to agree with *value* equality, not compute it: two
//! rows whose key values are `Value`-equal must hash identically, and
//! NULL keys are reported in a separate mask (SQL: NULL never joins).
//!
//! The per-value hash folds a type tag with the payload (normalizing
//! `-0.0` to `0.0`, mirroring `F64`'s `Hash`), and combines columns with
//! the same rotate–xor–multiply mix as [`volcano_core::fxhash`] — cheap,
//! deterministic, and independent of how the column stores the value.

use std::hash::Hasher;
use volcano_core::fxhash::FxHasher;

use crate::batch::{Batch, Column};

const TAG_BOOL: u64 = 0x9ae1;
const TAG_INT: u64 = 0x517c;
const TAG_FLOAT: u64 = 0xc1b7;
const TAG_STR: u64 = 0x2722;

#[inline]
pub(crate) fn mix(h: u64, word: u64) -> u64 {
    // The FxHasher step, inlined for the hot loop.
    (h.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Fold the key value at physical row `i` of `col` into `h`, or return
/// `None` if it is NULL.
#[inline]
pub(crate) fn fold_value(h: u64, col: &Column, i: usize) -> Option<u64> {
    match col {
        Column::Int { data, valid } => valid[i].then(|| mix(h, mix(TAG_INT, data[i] as u64))),
        Column::Float { data, valid } => valid[i].then(|| {
            let v = if data[i] == 0.0 { 0.0f64 } else { data[i] };
            mix(h, mix(TAG_FLOAT, v.to_bits()))
        }),
        Column::Bool { data, valid } => valid[i].then(|| mix(h, mix(TAG_BOOL, data[i] as u64))),
        Column::Str { data, valid } => valid[i].then(|| mix(h, mix(TAG_STR, hash_str(&data[i])))),
        Column::Any(vals) => {
            use volcano_rel::Value::*;
            match &vals[i] {
                Null => None,
                Bool(b) => Some(mix(h, mix(TAG_BOOL, *b as u64))),
                Int(x) => Some(mix(h, mix(TAG_INT, *x as u64))),
                Float(x) => {
                    let v = if x.get() == 0.0 { 0.0f64 } else { x.get() };
                    Some(mix(h, mix(TAG_FLOAT, v.to_bits())))
                }
                Str(s) => Some(mix(h, mix(TAG_STR, hash_str(s)))),
            }
        }
    }
}

/// Hash the join-key columns of every *live* row of `batch`.
///
/// Appends one entry per live row to `hashes`; rows with any NULL key
/// value get `None` (they can never join). Both vectors are cleared
/// first and reused across calls.
pub fn hash_join_keys(
    batch: &Batch,
    key_positions: &[usize],
    hashes: &mut Vec<Option<u64>>,
    sel_scratch: &mut Vec<u32>,
) {
    hashes.clear();
    let live = batch.live_indices(sel_scratch);
    hashes.reserve(live.len());
    for &i in live {
        let i = i as usize;
        let mut h = Some(0u64);
        for &p in key_positions {
            h = h.and_then(|acc| fold_value(acc, &batch.columns[p], i));
        }
        hashes.push(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_rel::catalog::ColType;
    use volcano_rel::Value;

    #[test]
    fn hash_is_storage_independent() {
        // The same values in a typed column and in an Any column must
        // hash identically — a demoted column still joins correctly.
        let mut typed = Column::with_type(ColType::Int);
        typed.push_value(Value::Int(42));
        let mut any = Column::any();
        any.push_value(Value::str("force-any"));
        any.push_value(Value::Int(42));
        assert_eq!(fold_value(0, &typed, 0), fold_value(0, &any, 1));
    }

    #[test]
    fn zero_floats_hash_alike_and_types_differ() {
        let mut f = Column::with_type(ColType::Float);
        f.push_value(Value::float(0.0));
        f.push_value(Value::float(-0.0));
        assert_eq!(fold_value(0, &f, 0), fold_value(0, &f, 1));
        // Int(1) and Float(1.0) are not Value-equal; their hashes may
        // never be forced equal by payload coincidence.
        let mut i = Column::with_type(ColType::Int);
        i.push_value(Value::Int(1));
        let mut f1 = Column::with_type(ColType::Float);
        f1.push_value(Value::float(1.0));
        assert_ne!(fold_value(0, &i, 0), fold_value(0, &f1, 0));
    }

    #[test]
    fn null_keys_hash_to_none() {
        let mut c = Column::with_type(ColType::Int);
        c.push_value(Value::Int(1));
        c.push_null();
        let mut b = Batch::with_columns(0);
        b.columns = vec![c];
        b.set_physical_rows(2);
        let mut hashes = Vec::new();
        let mut scratch = Vec::new();
        hash_join_keys(&b, &[0], &mut hashes, &mut scratch);
        assert!(hashes[0].is_some());
        assert!(hashes[1].is_none());
    }
}
