//! Lower an optimized physical plan to an executable operator tree.
//!
//! Compilation walks the plan bottom-up, tracking each node's output
//! schema (a vector of attribute ids) so predicates, join keys, sort keys
//! and projections can be resolved to tuple positions. [`compile_node`]
//! builds a single operator over pre-built children, which the
//! EXPLAIN-ANALYZE instrumentation uses to interpose row counters at
//! every operator boundary.

use std::sync::Arc;

use volcano_rel::catalog::ColType;
use volcano_rel::{AggSpec, AttrId, Pred, RelAlg, RelPlan, TableId};

use crate::batch::{BoxedBatchOperator, DEFAULT_BATCH_SIZE};
use crate::database::{Database, SchemaSnapshot};
use crate::iterator::BoxedOperator;
use crate::ops::{
    aggregate::CompiledAgg, AggMode, BatchFilter, BatchHashAggregate, BatchHashJoin, BatchProject,
    BatchScan, BatchSource, CompiledPred, Filter, HashAggregate, HashJoin, MergeJoin, NestedLoops,
    Project, StreamAggregate, TableScan, TupleSource,
};
use crate::ops::{HashSetOp, MergeSetOp, SetOpKind};

/// An executable operator tree plus its output schema.
pub struct Compiled {
    /// The root operator.
    pub operator: BoxedOperator,
    /// Output attribute ids, in tuple position order.
    pub schema: Vec<AttrId>,
}

/// Configuration of the vectorized executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Rows per batch.
    pub batch_size: usize,
    /// Pages per morsel for parallel pipelines under a `gather` node;
    /// `None` uses [`crate::morsel::DEFAULT_MORSEL_PAGES`].
    pub morsel_pages: Option<usize>,
    /// Fault injection for the chaos suite: panic inside the worker that
    /// is dispensed the `n`-th morsel (1-based, cumulative across the
    /// pipelines of one gather). `None` disables injection.
    pub fail_morsel: Option<u64>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            batch_size: DEFAULT_BATCH_SIZE,
            morsel_pages: None,
            fail_morsel: None,
        }
    }
}

/// Which of the three execution engines runs a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Tuple-at-a-time Volcano iterators (`open`/`next`/`close`).
    #[default]
    Tuple,
    /// The vectorized batch engine: one operator per plan node,
    /// column-at-a-time kernels over selection-vectored batches.
    Batch(BatchConfig),
    /// The pipeline-fused engine: maximal fusable plan segments compiled
    /// into single [`crate::fused::FusedRegion`] operators, batch
    /// operators for the rest.
    Fused(BatchConfig),
}

impl Engine {
    /// Short lowercase name (`tuple` / `batch` / `fused`) for traces and
    /// the CLI's `SET EXECUTOR` echo.
    pub fn label(&self) -> &'static str {
        match self {
            Engine::Tuple => "tuple",
            Engine::Batch(_) => "batch",
            Engine::Fused(_) => "fused",
        }
    }

    /// The batch configuration, for the two engines that have one.
    pub fn batch_config(&self) -> Option<BatchConfig> {
        match self {
            Engine::Tuple => None,
            Engine::Batch(cfg) | Engine::Fused(cfg) => Some(*cfg),
        }
    }
}

impl From<Option<BatchConfig>> for Engine {
    /// Backward-compatible lift of the pre-fused "engine" signature:
    /// `None` was the tuple engine, `Some(cfg)` the batch engine.
    fn from(cfg: Option<BatchConfig>) -> Self {
        match cfg {
            Some(cfg) => Engine::Batch(cfg),
            None => Engine::Tuple,
        }
    }
}

impl BatchConfig {
    /// Config with a specific batch size (clamped to ≥ 1).
    pub fn with_batch_size(batch_size: usize) -> Self {
        BatchConfig {
            batch_size: batch_size.max(1),
            ..BatchConfig::default()
        }
    }

    /// Set the morsel granularity (pages per morsel, clamped to ≥ 1).
    pub fn with_morsel_pages(mut self, pages: usize) -> Self {
        self.morsel_pages = Some(pages.max(1));
        self
    }

    /// Inject a panic when the `n`-th morsel is dispensed (chaos tests).
    pub fn with_fail_morsel(mut self, n: u64) -> Self {
        self.fail_morsel = Some(n);
        self
    }
}

/// An executable *batch* operator tree plus its output schema.
pub struct CompiledBatch {
    /// The root batch operator.
    pub operator: BoxedBatchOperator,
    /// Output attribute ids, in column position order.
    pub schema: Vec<AttrId>,
    /// Scheduling counters of each morsel-parallel gather region in the
    /// tree (empty for serial plans); live while the plan executes, for
    /// post-run trace reporting.
    pub gathers: Vec<Arc<crate::morsel::MorselStats>>,
}

pub(crate) fn position(schema: &[AttrId], attr: AttrId) -> usize {
    schema
        .iter()
        .position(|&a| a == attr)
        .unwrap_or_else(|| panic!("attribute {attr:?} not in schema {schema:?}"))
}

pub(crate) fn compile_pred(schema: &[AttrId], pred: &Pred) -> CompiledPred {
    CompiledPred::new(
        pred.terms()
            .iter()
            .map(|c| (position(schema, c.attr), c.op, c.value.clone()))
            .collect(),
    )
}

pub(crate) fn table_schema(sch: &SchemaSnapshot, t: TableId) -> Vec<AttrId> {
    sch.catalog()
        .table(t)
        .columns
        .iter()
        .map(|c| c.attr)
        .collect()
}

/// The output schema of a plan node (attribute ids in position order).
pub fn schema_of(db: &Database, plan: &RelPlan) -> Vec<AttrId> {
    schema_of_at(&db.snapshot(), plan)
}

/// [`schema_of`] against a pinned schema snapshot.
pub fn schema_of_at(sch: &SchemaSnapshot, plan: &RelPlan) -> Vec<AttrId> {
    match &plan.alg {
        RelAlg::FileScan(t) | RelAlg::FilterScan(t, _) | RelAlg::IndexScan(t, _) => {
            table_schema(sch, *t)
        }
        RelAlg::Filter(_) | RelAlg::Sort(_) | RelAlg::Gather(_) => {
            schema_of_at(sch, &plan.inputs[0])
        }
        RelAlg::ProjectOp(attrs) => attrs.clone(),
        RelAlg::MergeJoin(_) | RelAlg::HybridHashJoin(_) | RelAlg::NestedLoops(_) => {
            let mut s = schema_of_at(sch, &plan.inputs[0]);
            s.extend(schema_of_at(sch, &plan.inputs[1]));
            s
        }
        RelAlg::MultiWayHashJoin { .. } => {
            let mut s = schema_of_at(sch, &plan.inputs[0]);
            s.extend(schema_of_at(sch, &plan.inputs[1]));
            s.extend(schema_of_at(sch, &plan.inputs[2]));
            s
        }
        RelAlg::HashUnion
        | RelAlg::HashIntersect
        | RelAlg::HashDifference
        | RelAlg::MergeUnion
        | RelAlg::MergeIntersect
        | RelAlg::MergeDifference => schema_of_at(sch, &plan.inputs[0]),
        RelAlg::HashAggregate(spec)
        | RelAlg::StreamAggregate(spec)
        | RelAlg::FinalHashAggregate(spec) => {
            let mut s = spec.group_by.clone();
            s.extend(spec.aggs.iter().map(|&(_, out)| out));
            s
        }
        RelAlg::PartialHashAggregate(spec, _) => spec.partial_attrs(),
    }
}

/// Resolve an aggregate spec against its *raw* input schema: group-by
/// positions and per-aggregate input positions.
pub(crate) fn compile_agg_spec(
    schema: &[AttrId],
    spec: &AggSpec,
) -> (Vec<usize>, Vec<CompiledAgg>) {
    let group = spec.group_by.iter().map(|&a| position(schema, a)).collect();
    let aggs = spec
        .aggs
        .iter()
        .map(|(f, _)| {
            use volcano_rel::AggFunc::*;
            match f {
                CountStar => CompiledAgg::CountStar,
                Sum(a) => CompiledAgg::Sum(position(schema, *a)),
                Min(a) => CompiledAgg::Min(position(schema, *a)),
                Max(a) => CompiledAgg::Max(position(schema, *a)),
                Avg(a) => CompiledAgg::Avg(position(schema, *a)),
            }
        })
        .collect();
    (group, aggs)
}

/// Resolve an aggregate spec against the *partial row layout* a final
/// aggregate consumes: group keys lead, each aggregate's partial value
/// follows (AVG's companion count column is found by the merge itself).
pub(crate) fn partial_layout_aggs(spec: &AggSpec) -> Vec<CompiledAgg> {
    let mut pos = spec.group_by.len();
    spec.aggs
        .iter()
        .map(|(f, _)| {
            use volcano_rel::AggFunc::*;
            let main = pos;
            pos += 1;
            match f {
                CountStar => CompiledAgg::CountStar,
                Sum(_) => CompiledAgg::Sum(main),
                Min(_) => CompiledAgg::Min(main),
                Max(_) => CompiledAgg::Max(main),
                Avg(_) => {
                    pos += 1;
                    CompiledAgg::Avg(main)
                }
            }
        })
        .collect()
}

/// Build the operator for `plan`'s root over pre-built `children`
/// (which must correspond to `plan.inputs`, in order).
pub fn compile_node(db: &Database, plan: &RelPlan, children: Vec<BoxedOperator>) -> BoxedOperator {
    compile_node_at(db, &db.snapshot(), plan, children)
}

/// [`compile_node`] against a pinned schema snapshot.
pub fn compile_node_at(
    db: &Database,
    sch: &SchemaSnapshot,
    plan: &RelPlan,
    mut children: Vec<BoxedOperator>,
) -> BoxedOperator {
    let child_schemas: Vec<Vec<AttrId>> =
        plan.inputs.iter().map(|c| schema_of_at(sch, c)).collect();
    match &plan.alg {
        RelAlg::FileScan(t) => Box::new(TableScan::new(sch.table(*t).clone())),
        RelAlg::IndexScan(t, attr) => {
            let index = sch
                .index(*t, *attr)
                .unwrap_or_else(|| panic!("no index on {t:?}.{attr:?}"))
                .clone();
            Box::new(crate::ops::IndexScan::new(sch.table(*t).clone(), index))
        }
        RelAlg::FilterScan(t, pred) => {
            let schema = table_schema(sch, *t);
            let cp = compile_pred(&schema, pred);
            Box::new(TableScan::with_pred(sch.table(*t).clone(), Some(cp)))
        }
        RelAlg::Filter(pred) => {
            let cp = compile_pred(&child_schemas[0], pred);
            Box::new(Filter::new(children.remove(0), cp))
        }
        RelAlg::ProjectOp(attrs) => {
            let positions = attrs
                .iter()
                .map(|&a| position(&child_schemas[0], a))
                .collect();
            Box::new(Project::new(children.remove(0), positions))
        }
        // The tuple engine has no morsel-parallel path: a gather executes
        // its subtree serially, which produces the same rows (operators
        // are degree-agnostic; the degree only matters to the batch
        // engine's parallel lowering).
        RelAlg::Gather(_) => children.remove(0),
        RelAlg::Sort(attrs) => {
            let keys = attrs
                .iter()
                .map(|&a| position(&child_schemas[0], a))
                .collect();
            // External sort over the database's buffer pool: run files
            // spill through the same disk the cost model charges.
            Box::new(crate::ops::ExternalSort::new(
                children.remove(0),
                keys,
                db.pool().clone(),
                db.sort_memory_rows(),
            ))
        }
        RelAlg::MergeJoin(p) => {
            // The key *order* the optimizer chose is visible in the left
            // input's delivered sort order (its prefix is a permutation
            // of the predicate's left attributes).
            let k = p.pairs().len();
            let left_order: Vec<AttrId> = plan.inputs[0]
                .delivered
                .sort
                .iter()
                .take(k)
                .copied()
                .collect();
            assert_eq!(
                left_order.len(),
                k,
                "merge join input must be sorted on all {k} key(s)"
            );
            let mut lkeys = Vec::with_capacity(k);
            let mut rkeys = Vec::with_capacity(k);
            for la in left_order {
                let &(_, ra) = p
                    .pairs()
                    .iter()
                    .find(|&&(pl, _)| pl == la)
                    .unwrap_or_else(|| panic!("sort key {la:?} is not a join key of {p}"));
                lkeys.push(position(&child_schemas[0], la));
                rkeys.push(position(&child_schemas[1], ra));
            }
            let right = children.remove(1);
            let left = children.remove(0);
            Box::new(MergeJoin::new(left, right, lkeys, rkeys))
        }
        RelAlg::HybridHashJoin(p) => {
            let lkeys = p
                .pairs()
                .iter()
                .map(|&(la, _)| position(&child_schemas[0], la))
                .collect();
            let rkeys = p
                .pairs()
                .iter()
                .map(|&(_, ra)| position(&child_schemas[1], ra))
                .collect();
            let right = children.remove(1);
            let left = children.remove(0);
            Box::new(HashJoin::new(left, right, lkeys, rkeys))
        }
        RelAlg::MultiWayHashJoin { inner, outer } => {
            let inner_a = inner
                .pairs()
                .iter()
                .map(|&(la, _)| position(&child_schemas[0], la))
                .collect();
            let inner_b = inner
                .pairs()
                .iter()
                .map(|&(_, ra)| position(&child_schemas[1], ra))
                .collect();
            // The rule's condition guarantees the outer-left attributes
            // all live in B.
            let outer_b = outer
                .pairs()
                .iter()
                .map(|&(la, _)| position(&child_schemas[1], la))
                .collect();
            let outer_c = outer
                .pairs()
                .iter()
                .map(|&(_, ra)| position(&child_schemas[2], ra))
                .collect();
            let c = children.remove(2);
            let b = children.remove(1);
            let a = children.remove(0);
            Box::new(crate::ops::MultiWayHash::new(
                a, b, c, inner_a, inner_b, outer_b, outer_c,
            ))
        }
        RelAlg::NestedLoops(p) => {
            let pairs = p
                .pairs()
                .iter()
                .map(|&(la, ra)| {
                    (
                        position(&child_schemas[0], la),
                        position(&child_schemas[1], ra),
                    )
                })
                .collect();
            let right = children.remove(1);
            let left = children.remove(0);
            Box::new(NestedLoops::new(left, right, pairs))
        }
        RelAlg::HashUnion | RelAlg::HashIntersect | RelAlg::HashDifference => {
            let kind = match &plan.alg {
                RelAlg::HashUnion => SetOpKind::Union,
                RelAlg::HashIntersect => SetOpKind::Intersect,
                _ => SetOpKind::Difference,
            };
            let right = children.remove(1);
            let left = children.remove(0);
            Box::new(HashSetOp::new(kind, left, right))
        }
        RelAlg::MergeUnion | RelAlg::MergeIntersect | RelAlg::MergeDifference => {
            let kind = match &plan.alg {
                RelAlg::MergeUnion => SetOpKind::Union,
                RelAlg::MergeIntersect => SetOpKind::Intersect,
                _ => SetOpKind::Difference,
            };
            let right = children.remove(1);
            let left = children.remove(0);
            Box::new(MergeSetOp::new(kind, left, right))
        }
        RelAlg::HashAggregate(spec) | RelAlg::StreamAggregate(spec) => {
            let (group, aggs) = compile_agg_spec(&child_schemas[0], spec);
            let child = children.remove(0);
            match &plan.alg {
                RelAlg::StreamAggregate(_) => Box::new(StreamAggregate::new(child, group, aggs)),
                _ => Box::new(HashAggregate::new(child, group, aggs)),
            }
        }
        RelAlg::PartialHashAggregate(spec, _) => {
            let (group, aggs) = compile_agg_spec(&child_schemas[0], spec);
            Box::new(HashAggregate::with_mode(
                children.remove(0),
                group,
                aggs,
                AggMode::Partial,
            ))
        }
        RelAlg::FinalHashAggregate(spec) => {
            let group: Vec<usize> = (0..spec.group_by.len()).collect();
            let aggs = partial_layout_aggs(spec);
            Box::new(HashAggregate::with_mode(
                children.remove(0),
                group,
                aggs,
                AggMode::Final,
            ))
        }
    }
}

/// Compile a plan against a database (the current schema snapshot).
pub fn compile(db: &Database, plan: &RelPlan) -> Compiled {
    compile_at(db, &db.snapshot(), plan)
}

/// [`compile`] against a pinned schema snapshot — every scan in the
/// tree resolves against the same schema state.
pub(crate) fn compile_at(db: &Database, sch: &SchemaSnapshot, plan: &RelPlan) -> Compiled {
    let children: Vec<BoxedOperator> = plan
        .inputs
        .iter()
        .map(|c| compile_at(db, sch, c).operator)
        .collect();
    Compiled {
        operator: compile_node_at(db, sch, plan, children),
        schema: schema_of_at(sch, plan),
    }
}

// ---------------------------------------------------------------------
// Batch-engine compilation.
// ---------------------------------------------------------------------

/// A subtree built for the batch engine: natively vectorized, or a
/// tuple operator awaiting an adapter. Keeping both forms during
/// compilation lets the lowering insert at most one adapter per engine
/// boundary instead of sandwiching every operator.
pub(crate) enum Built {
    /// Natively vectorized subtree.
    B(BoxedBatchOperator),
    /// Tuple-at-a-time subtree.
    T(BoxedOperator),
}

impl Built {
    /// Coerce to a batch operator (adapting a tuple subtree).
    pub(crate) fn into_batch(self, arity: usize, batch_size: usize) -> BoxedBatchOperator {
        match self {
            Built::B(op) => op,
            Built::T(op) => Box::new(TupleSource::new(op, arity, batch_size)),
        }
    }

    /// Coerce to a tuple operator (adapting a batch subtree).
    pub(crate) fn into_tuple(self) -> BoxedOperator {
        match self {
            Built::B(op) => Box::new(BatchSource::new(op)),
            Built::T(op) => op,
        }
    }
}

pub(crate) fn table_col_types(sch: &SchemaSnapshot, t: TableId) -> Vec<ColType> {
    sch.catalog()
        .table(t)
        .columns
        .iter()
        .map(|c| c.ty)
        .collect()
}

/// Build the batch-engine operator for `plan`'s root over pre-built
/// `children`, vectorizing scan, filter, projection, hash join, and
/// hash aggregation (all three phases) natively and falling back to the
/// tuple operator (sort, stream aggregate, set ops,
/// merge/nested/multiway joins, index scan) behind adapters. A
/// non-scan node is vectorized only when its inputs already are, so
/// adapters appear exactly at the engine boundaries of the plan.
pub(crate) fn compile_batch_node(
    db: &Database,
    sch: &SchemaSnapshot,
    plan: &RelPlan,
    mut children: Vec<Built>,
    cfg: BatchConfig,
) -> Built {
    let bs = cfg.batch_size;
    let child_schemas: Vec<Vec<AttrId>> =
        plan.inputs.iter().map(|c| schema_of_at(sch, c)).collect();
    match &plan.alg {
        RelAlg::FileScan(t) => Built::B(Box::new(BatchScan::new(
            sch.table(*t).clone(),
            table_col_types(sch, *t),
            None,
            bs,
        ))),
        RelAlg::FilterScan(t, pred) => {
            let schema = table_schema(sch, *t);
            let cp = compile_pred(&schema, pred);
            Built::B(Box::new(BatchScan::new(
                sch.table(*t).clone(),
                table_col_types(sch, *t),
                Some(cp),
                bs,
            )))
        }
        RelAlg::Filter(pred) if matches!(children[0], Built::B(_)) => {
            let cp = compile_pred(&child_schemas[0], pred);
            let child = children.remove(0).into_batch(child_schemas[0].len(), bs);
            Built::B(Box::new(BatchFilter::new(child, cp)))
        }
        RelAlg::ProjectOp(attrs) if matches!(children[0], Built::B(_)) => {
            let positions = attrs
                .iter()
                .map(|&a| position(&child_schemas[0], a))
                .collect();
            let child = children.remove(0).into_batch(child_schemas[0].len(), bs);
            Built::B(Box::new(BatchProject::new(child, positions)))
        }
        RelAlg::HybridHashJoin(p)
            if matches!(children[0], Built::B(_)) && matches!(children[1], Built::B(_)) =>
        {
            let lkeys = p
                .pairs()
                .iter()
                .map(|&(la, _)| position(&child_schemas[0], la))
                .collect();
            let rkeys = p
                .pairs()
                .iter()
                .map(|&(_, ra)| position(&child_schemas[1], ra))
                .collect();
            let right = children.remove(1).into_batch(child_schemas[1].len(), bs);
            let left = children.remove(0).into_batch(child_schemas[0].len(), bs);
            Built::B(Box::new(BatchHashJoin::new(left, right, lkeys, rkeys, bs)))
        }
        RelAlg::HashAggregate(spec) if matches!(children[0], Built::B(_)) => {
            let (group, aggs) = compile_agg_spec(&child_schemas[0], spec);
            let child = children.remove(0).into_batch(child_schemas[0].len(), bs);
            Built::B(Box::new(BatchHashAggregate::new(
                child,
                group,
                aggs,
                AggMode::Complete,
                bs,
            )))
        }
        RelAlg::PartialHashAggregate(spec, _) if matches!(children[0], Built::B(_)) => {
            let (group, aggs) = compile_agg_spec(&child_schemas[0], spec);
            let child = children.remove(0).into_batch(child_schemas[0].len(), bs);
            Built::B(Box::new(BatchHashAggregate::new(
                child,
                group,
                aggs,
                AggMode::Partial,
                bs,
            )))
        }
        RelAlg::FinalHashAggregate(spec) if matches!(children[0], Built::B(_)) => {
            let group: Vec<usize> = (0..spec.group_by.len()).collect();
            let aggs = partial_layout_aggs(spec);
            let child = children.remove(0).into_batch(child_schemas[0].len(), bs);
            Built::B(Box::new(BatchHashAggregate::new(
                child,
                group,
                aggs,
                AggMode::Final,
                bs,
            )))
        }
        // A gather over pre-built children is a serial pass-through (the
        // EXPLAIN ANALYZE path lands here: it instruments every plan node
        // individually, which a fused parallel pipeline cannot honour).
        // The morsel-parallel lowering happens in [`build_batch_tree`],
        // which intercepts gather nodes *before* compiling the subtree.
        RelAlg::Gather(_) => children.remove(0),
        // Everything else executes tuple-at-a-time; batch subtrees are
        // lowered through one adapter each.
        _ => {
            let tuple_children: Vec<BoxedOperator> =
                children.into_iter().map(Built::into_tuple).collect();
            Built::T(compile_node_at(db, sch, plan, tuple_children))
        }
    }
}

fn build_batch_tree(
    db: &Database,
    sch: &SchemaSnapshot,
    plan: &RelPlan,
    cfg: BatchConfig,
    gathers: &mut Vec<Arc<crate::morsel::MorselStats>>,
) -> Built {
    // A gather node executes its subtree as morsel-driven parallel
    // pipelines when the subtree's shape supports it; otherwise (or at
    // degree 1) it degrades to a serial pass-through with identical
    // results.
    if let RelAlg::Gather(n) = &plan.alg {
        if *n > 1 {
            if let Some(par) = crate::morsel::compile_parallel(sch, &plan.inputs[0]) {
                let op = crate::morsel::ParallelGather::new(Arc::new(par), *n as usize, cfg);
                gathers.push(op.stats());
                return Built::B(Box::new(op));
            }
        }
        return build_batch_tree(db, sch, &plan.inputs[0], cfg, gathers);
    }
    let children: Vec<Built> = plan
        .inputs
        .iter()
        .map(|c| build_batch_tree(db, sch, c, cfg, gathers))
        .collect();
    compile_batch_node(db, sch, plan, children, cfg)
}

/// Compile a plan for the batch engine (the current schema snapshot).
pub fn compile_batch(db: &Database, plan: &RelPlan, cfg: BatchConfig) -> CompiledBatch {
    compile_batch_at(db, &db.snapshot(), plan, cfg)
}

/// [`compile_batch`] against a pinned schema snapshot.
pub(crate) fn compile_batch_at(
    db: &Database,
    sch: &SchemaSnapshot,
    plan: &RelPlan,
    cfg: BatchConfig,
) -> CompiledBatch {
    let schema = schema_of_at(sch, plan);
    let mut gathers = Vec::new();
    let operator =
        build_batch_tree(db, sch, plan, cfg, &mut gathers).into_batch(schema.len(), cfg.batch_size);
    CompiledBatch {
        operator,
        schema,
        gathers,
    }
}
