//! A bounded, sharded cross-query plan cache.
//!
//! Optimization is the expensive step of serving a query: the memo search
//! explores every join order and access path each time, even when the
//! same query — up to its literal constants — ran a moment ago. The
//! cache keys optimized physical plans by the query's canonical *shape*
//! ([`volcano_sql::shape_key`]) plus its delivery goal, and serves later
//! executions by re-binding the stored template's parameter slots to the
//! new constants, skipping `find_best_plan` entirely.
//!
//! ## Soundness
//!
//! A served plan must be one the optimizer *could* have produced for the
//! current query. Two mechanisms protect that contract:
//!
//! * **Parameter-tagged predicates** ([`volcano_rel::Cmp::with_param`])
//!   make a predicate's identity include its slot number, so two
//!   comparisons that happen to share a value today never collapse into
//!   one term of a conjunction — re-binding a template always produces
//!   exactly the predicate structure direct lowering would have.
//! * **Epoch validation**: every entry records the database's stats
//!   epoch at optimization time. DDL, data loads, and stats refreshes
//!   bump the epoch; a lookup that finds a stale entry re-estimates the
//!   template under current statistics (the *cost-drift guard*) and
//!   either revalidates it or forces re-optimization.
//!
//! Cached plans remain *templates optimized under their first-seen
//! parameter values*: a parameter change alone never re-optimizes, which
//! is the standard prepared-statement trade-off.
//!
//! Counters satisfy `hits + misses + invalidations == lookups` by
//! construction — [`PlanCache::lookup`] increments exactly one of the
//! three per call — and the concurrency stress test holds the invariant
//! under parallel load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use volcano_rel::{estimated_plan_cost, Catalog, RelAlg, RelCost, RelModelOptions, RelPlan};
use volcano_rel::{RelProps, Value};

/// Number of independently locked shards. A small fixed power of two:
/// enough that threads hammering different shapes rarely contend, small
/// enough that draining counters stays trivial.
const SHARDS: usize = 8;

/// One cached plan: a parameter-tagged physical template plus the
/// evidence needed to decide whether it is still trustworthy.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The optimized physical plan, predicates carrying parameter slots.
    pub plan: RelPlan,
    /// The optimizer's estimated cost when the entry was (re)validated.
    pub cost: RelCost,
    /// Stats epoch the entry was optimized or last revalidated under.
    pub epoch: u64,
}

/// What a lookup found.
#[derive(Debug, Clone)]
pub enum CacheOutcome {
    /// A valid entry: execute the (re-bound) template, skip optimization.
    Hit(CacheEntry),
    /// No entry for this shape and goal.
    Miss,
    /// An entry existed but failed validation and was removed.
    Invalidated,
}

impl CacheOutcome {
    /// The outcome label used in trace events and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit(_) => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Invalidated => "invalidated",
        }
    }
}

/// Verdict of the caller-supplied validation closure.
#[derive(Debug, Clone, Copy)]
pub enum Validation {
    /// The entry is current: serve it unchanged.
    Valid,
    /// The entry is stale but its re-estimated cost is tolerable:
    /// serve it and stamp it with the new epoch and cost.
    Revalidate {
        /// The epoch to stamp on the entry.
        epoch: u64,
        /// The re-estimated cost under current statistics.
        cost: RelCost,
    },
    /// The entry has drifted beyond tolerance: drop it and re-optimize.
    Stale,
}

/// Monotone counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups performed (`hits + misses + invalidations`).
    pub lookups: u64,
    /// Lookups served from the cache (including revalidations).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found an entry and discarded it as stale.
    pub invalidations: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

impl PlanCacheStats {
    /// Machine-readable form, matching the style of
    /// `volcano_core::SearchStats::to_json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lookups\":{},\"hits\":{},\"misses\":{},\"invalidations\":{},\"insertions\":{},\"evictions\":{}}}",
            self.lookups, self.hits, self.misses, self.invalidations, self.insertions, self.evictions
        )
    }
}

#[derive(Default)]
struct Shard {
    /// Entries keyed by `(shape, goal)`, stamped with a recency tick.
    entries: HashMap<(u64, RelProps), (CacheEntry, u64)>,
    /// Shard-local logical clock for LRU stamps.
    tick: u64,
}

/// The sharded, bounded plan cache. All methods take `&self`; shards are
/// individually locked and counters are atomics, so concurrent serving
/// threads proceed without a global lock.
pub struct PlanCache {
    shards: [Mutex<Shard>; SHARDS],
    /// Total entry capacity (split evenly across shards).
    capacity: AtomicUsize,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` entries (minimum one per
    /// shard).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            capacity: AtomicUsize::new(capacity.max(SHARDS)),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, shape: u64) -> &Mutex<Shard> {
        &self.shards[(shape as usize) % SHARDS]
    }

    fn per_shard_capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed).div_ceil(SHARDS)
    }

    /// Change the total entry capacity; existing entries are trimmed on
    /// the next insert into an over-full shard. Counters are preserved.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity.max(SHARDS), Ordering::Relaxed);
    }

    /// The total entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Look up `(shape, goal)`. A present entry is judged by `validate`
    /// — typically an epoch comparison plus the cost-drift guard — and
    /// served, restamped, or discarded accordingly. Exactly one of the
    /// hit/miss/invalidation counters is incremented per call, so the
    /// reconciliation invariant holds by construction.
    pub fn lookup(
        &self,
        shape: u64,
        goal: &RelProps,
        validate: impl FnOnce(&CacheEntry) -> Validation,
    ) -> CacheOutcome {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(shape).lock().expect("plan-cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let key = (shape, goal.clone());
        match shard.entries.get_mut(&key) {
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CacheOutcome::Miss
            }
            Some((entry, stamp)) => match validate(entry) {
                Validation::Valid => {
                    *stamp = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    CacheOutcome::Hit(entry.clone())
                }
                Validation::Revalidate { epoch, cost } => {
                    entry.epoch = epoch;
                    entry.cost = cost;
                    *stamp = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    CacheOutcome::Hit(entry.clone())
                }
                Validation::Stale => {
                    shard.entries.remove(&key);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    CacheOutcome::Invalidated
                }
            },
        }
    }

    /// Insert (or replace) the entry for `(shape, goal)`, evicting the
    /// least-recently-used entries of the shard if it is over capacity.
    pub fn insert(&self, shape: u64, goal: RelProps, entry: CacheEntry) {
        let cap = self.per_shard_capacity();
        let mut shard = self.shard(shape).lock().expect("plan-cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.insert((shape, goal), (entry, tick));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while shard.entries.len() > cap {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity shard");
            shard.entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop every entry (DDL, or `SET PLAN_CACHE OFF`). Counters are
    /// preserved; invalidation counts only per-lookup discards.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .expect("plan-cache shard poisoned")
                .entries
                .clear();
        }
    }

    /// Number of currently cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan-cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Re-bind a cached plan template to fresh parameter values: every
/// predicate term tagged with slot `i` takes `params[i]`; untagged terms
/// and all other algorithm arguments are untouched. Panics if the
/// template references a slot past `params` (the serving layer binds the
/// full vector before looking up).
pub fn rebind_plan(plan: &RelPlan, params: &[Value]) -> RelPlan {
    plan.map_algs(&mut |alg| match alg {
        RelAlg::FilterScan(t, p) => RelAlg::FilterScan(*t, p.rebound(params)),
        RelAlg::Filter(p) => RelAlg::Filter(p.rebound(params)),
        other => other.clone(),
    })
}

/// The cost-drift guard: decide a stale entry's fate by re-estimating the
/// re-bound template under current statistics. Within `drift_factor` of
/// the recorded cost the entry is revalidated at `epoch`; beyond it the
/// entry is declared stale and the caller re-optimizes.
pub fn drift_validation(
    entry: &CacheEntry,
    catalog: &Catalog,
    options: &RelModelOptions,
    params: &[Value],
    epoch: u64,
    drift_factor: f64,
) -> Validation {
    let rebound = rebind_plan(&entry.plan, params);
    let cost = estimated_plan_cost(catalog, options, &rebound);
    if cost.total() <= entry.cost.total() * drift_factor {
        Validation::Revalidate { epoch, cost }
    } else {
        Validation::Stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_core::cost::Cost as _;
    use volcano_core::PhysicalProps;
    use volcano_rel::{AttrId, CmpOp, Pred, TableId};

    fn dummy_plan() -> RelPlan {
        use volcano_core::ids::GroupId;
        RelPlan {
            alg: RelAlg::FilterScan(
                TableId(0),
                Pred::conj(vec![volcano_rel::Cmp::with_param(
                    AttrId(0),
                    CmpOp::Lt,
                    7i64,
                    0,
                )]),
            ),
            delivered: RelProps::any(),
            local_cost: RelCost::zero(),
            cost: RelCost::new(1.0, 1.0),
            group: GroupId::from_index(0),
            inputs: vec![],
        }
    }

    fn entry(epoch: u64) -> CacheEntry {
        CacheEntry {
            plan: dummy_plan(),
            cost: RelCost::new(1.0, 1.0),
            epoch,
        }
    }

    #[test]
    fn counters_reconcile() {
        let cache = PlanCache::new(16);
        assert!(matches!(
            cache.lookup(1, &RelProps::any(), |_| Validation::Valid),
            CacheOutcome::Miss
        ));
        cache.insert(1, RelProps::any(), entry(0));
        assert!(matches!(
            cache.lookup(1, &RelProps::any(), |_| Validation::Valid),
            CacheOutcome::Hit(_)
        ));
        assert!(matches!(
            cache.lookup(1, &RelProps::any(), |_| Validation::Stale),
            CacheOutcome::Invalidated
        ));
        // The entry is gone after invalidation.
        assert!(matches!(
            cache.lookup(1, &RelProps::any(), |_| Validation::Valid),
            CacheOutcome::Miss
        ));
        let s = cache.stats();
        assert_eq!(s.lookups, 4);
        assert_eq!(s.hits + s.misses + s.invalidations, s.lookups);
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    }

    #[test]
    fn goal_is_part_of_the_key() {
        let cache = PlanCache::new(16);
        cache.insert(9, RelProps::any(), entry(0));
        assert!(matches!(
            cache.lookup(9, &RelProps::sorted(vec![AttrId(1)]), |_| {
                Validation::Valid
            }),
            CacheOutcome::Miss
        ));
    }

    #[test]
    fn revalidation_restamps_epoch_and_cost() {
        let cache = PlanCache::new(16);
        cache.insert(2, RelProps::any(), entry(0));
        let new_cost = RelCost::new(3.0, 0.0);
        let CacheOutcome::Hit(e) = cache.lookup(2, &RelProps::any(), |_| Validation::Revalidate {
            epoch: 5,
            cost: new_cost,
        }) else {
            panic!("expected hit")
        };
        assert_eq!(e.epoch, 5);
        assert_eq!(e.cost, new_cost);
        // The stored entry was updated, not just the returned copy.
        let CacheOutcome::Hit(e) = cache.lookup(2, &RelProps::any(), |got| {
            assert_eq!(got.epoch, 5);
            Validation::Valid
        }) else {
            panic!("expected hit")
        };
        assert_eq!(e.epoch, 5);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = PlanCache::new(SHARDS); // one entry per shard
        let shard0 = |i: u64| i * SHARDS as u64; // all map to shard 0
        cache.insert(shard0(1), RelProps::any(), entry(0));
        cache.insert(shard0(2), RelProps::any(), entry(0));
        // Capacity 1 in shard 0: the older entry is evicted.
        assert!(matches!(
            cache.lookup(shard0(1), &RelProps::any(), |_| Validation::Valid),
            CacheOutcome::Miss
        ));
        assert!(matches!(
            cache.lookup(shard0(2), &RelProps::any(), |_| Validation::Valid),
            CacheOutcome::Hit(_)
        ));
        assert_eq!(cache.stats().evictions, 1);
        // Shrinking and growing capacity takes effect on later inserts.
        cache.set_capacity(SHARDS * 4);
        for i in 3..7 {
            cache.insert(shard0(i), RelProps::any(), entry(0));
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn rebinding_replaces_only_tagged_slots() {
        let plan = dummy_plan();
        let rebound = rebind_plan(&plan, &[Value::Int(99)]);
        let RelAlg::FilterScan(_, p) = &rebound.alg else {
            panic!()
        };
        assert_eq!(p.terms()[0].value, Value::Int(99));
        assert_eq!(p.terms()[0].param, Some(0));
        // Costs and structure are untouched.
        assert_eq!(rebound.cost, plan.cost);
        assert_eq!(rebound.node_count(), plan.node_count());
    }
}
