//! Multi-session serving layer over a shared [`Database`].
//!
//! A [`Server`] wraps an `Arc<Database>` with admission control and
//! hands out [`Session`]s. Each session owns its prepared statements
//! and its own `SET EXECUTOR` / `SET BUDGET` / `SET PLAN_CACHE` /
//! `SET FEEDBACK` state —
//! the per-connection knobs a SQL shell exposes — while all sessions
//! share one catalog, one buffer pool, and one plan cache. Sessions are
//! plain values: move one per thread and execute concurrently; the
//! database underneath is `Send + Sync`.
//!
//! # Admission control
//!
//! The paper's search budgets make optimization an *anytime* activity:
//! a tripped budget degrades search to greedy promise-first completion
//! instead of failing. The serving layer uses exactly that degree of
//! freedom for overload: a fixed number of concurrency tickets bounds
//! how many executions run full exhaustive search at once, and what
//! happens when no ticket is free depends on the traffic class:
//!
//! - [`TrafficClass::Interactive`] never waits: it proceeds immediately
//!   with the *degraded* budget (greedy search). Latency is bounded by
//!   doing less work, not by queueing behind other queries.
//! - [`TrafficClass::Batch`] waits up to the configured patience for a
//!   ticket, then degrades and proceeds.
//! - [`TrafficClass::Background`] always waits for a ticket and always
//!   runs at full search quality.
//!
//! Overload therefore degrades plan quality — bounded, observable (the
//! [`SessionOutcome`] says so), and never cached (see
//! [`ExecOptions::budget`]) — rather than growing an unbounded queue.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use volcano_core::trace::Tracer;
use volcano_core::SearchBudget;
use volcano_rel::value::Tuple;
use volcano_rel::Value;
use volcano_sql::AstQuery;

use crate::compile::Engine;
use crate::database::{Database, ExecOptions, PrepareError, PreparedOutcome, PreparedStatement};

/// The latency class of a request, deciding how admission overload is
/// absorbed: by degrading search (interactive), by bounded waiting
/// (batch), or by unbounded waiting (background).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Latency-sensitive: never queues; degrades search under load.
    Interactive,
    /// Throughput-oriented: waits a bounded patience, then degrades.
    Batch,
    /// Maintenance: waits for a ticket, always full search quality.
    Background,
}

impl TrafficClass {
    /// Stable lowercase label (JSON exports, logs).
    pub fn label(&self) -> &'static str {
        match self {
            TrafficClass::Interactive => "interactive",
            TrafficClass::Batch => "batch",
            TrafficClass::Background => "background",
        }
    }
}

/// Serving-layer tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrency tickets: how many executions may run full-quality
    /// search at once.
    pub max_concurrent: usize,
    /// How long [`TrafficClass::Batch`] waits for a ticket before
    /// degrading.
    pub batch_patience: Duration,
    /// The budget applied to an execution admitted *without* a ticket.
    /// The default trips after one optimization goal, which completes
    /// the search greedily (promise-first) — the paper's anytime
    /// degradation.
    pub degraded_budget: SearchBudget,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_concurrent: 8,
            batch_patience: Duration::from_millis(50),
            degraded_budget: SearchBudget::unlimited().with_max_goals(1),
        }
    }
}

/// Point-in-time admission counters. `admitted_full +
/// admitted_degraded` equals the number of `admit` calls that have
/// returned, so the two tallies reconcile exactly against the request
/// count a workload kept on its side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Executions admitted with a ticket (full search quality).
    pub admitted_full: u64,
    /// Executions admitted without a ticket (degraded budget).
    pub admitted_degraded: u64,
    /// Tickets currently held.
    pub in_flight: usize,
    /// High-water mark of held tickets.
    pub peak_in_flight: usize,
}

struct AdmState {
    in_use: usize,
    peak: usize,
}

/// A counting semaphore with class-dependent acquisition: try-once
/// (interactive), bounded wait (batch), or unbounded wait (background).
/// Failure to acquire is not an error — the caller proceeds degraded.
pub struct AdmissionControl {
    max: usize,
    state: Mutex<AdmState>,
    available: Condvar,
    admitted_full: AtomicU64,
    admitted_degraded: AtomicU64,
}

/// A held concurrency ticket; released on drop.
pub struct Ticket<'a> {
    ctl: &'a AdmissionControl,
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let mut st = self.ctl.state.lock().unwrap();
        st.in_use -= 1;
        drop(st);
        self.ctl.available.notify_one();
    }
}

/// The admission decision for one execution: either a held ticket
/// (full quality) or permission to proceed degraded.
pub struct Admission<'a> {
    ticket: Option<Ticket<'a>>,
}

impl Admission<'_> {
    /// Was this execution admitted without a ticket?
    pub fn degraded(&self) -> bool {
        self.ticket.is_none()
    }
}

impl AdmissionControl {
    /// A semaphore with `max_concurrent` tickets.
    pub fn new(max_concurrent: usize) -> Self {
        assert!(max_concurrent > 0, "admission needs at least one ticket");
        AdmissionControl {
            max: max_concurrent,
            state: Mutex::new(AdmState { in_use: 0, peak: 0 }),
            available: Condvar::new(),
            admitted_full: AtomicU64::new(0),
            admitted_degraded: AtomicU64::new(0),
        }
    }

    /// Admit one execution of the given class; see the module docs for
    /// the per-class policy. Never fails — the result says whether the
    /// execution runs full-quality or degraded.
    pub fn admit(&self, class: TrafficClass, patience: Duration) -> Admission<'_> {
        let ticket = match class {
            TrafficClass::Interactive => self.try_ticket(),
            TrafficClass::Batch => self.wait_ticket(Some(patience)),
            TrafficClass::Background => self.wait_ticket(None),
        };
        match ticket {
            Some(t) => {
                self.admitted_full.fetch_add(1, Ordering::Relaxed);
                Admission { ticket: Some(t) }
            }
            None => {
                self.admitted_degraded.fetch_add(1, Ordering::Relaxed);
                Admission { ticket: None }
            }
        }
    }

    fn grant(&self, st: &mut AdmState) -> Ticket<'_> {
        st.in_use += 1;
        st.peak = st.peak.max(st.in_use);
        Ticket { ctl: self }
    }

    fn try_ticket(&self) -> Option<Ticket<'_>> {
        let mut st = self.state.lock().unwrap();
        (st.in_use < self.max).then(|| self.grant(&mut st))
    }

    /// Wait for a ticket, up to `patience` (`None` = forever).
    fn wait_ticket(&self, patience: Option<Duration>) -> Option<Ticket<'_>> {
        let deadline = patience.map(|p| Instant::now() + p);
        let mut st = self.state.lock().unwrap();
        loop {
            if st.in_use < self.max {
                return Some(self.grant(&mut st));
            }
            match deadline {
                None => st = self.available.wait(st).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    st = self.available.wait_timeout(st, d - now).unwrap().0;
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock().unwrap();
        AdmissionStats {
            admitted_full: self.admitted_full.load(Ordering::Relaxed),
            admitted_degraded: self.admitted_degraded.load(Ordering::Relaxed),
            in_flight: st.in_use,
            peak_in_flight: st.peak,
        }
    }
}

/// A database plus the serving-layer state shared by all its sessions.
pub struct Server {
    db: Arc<Database>,
    admission: Arc<AdmissionControl>,
    config: ServerConfig,
}

impl Server {
    /// Serve a freshly-owned database.
    pub fn new(db: Database, config: ServerConfig) -> Self {
        Self::over(Arc::new(db), config)
    }

    /// Serve an already-shared database.
    pub fn over(db: Arc<Database>, config: ServerConfig) -> Self {
        let admission = Arc::new(AdmissionControl::new(config.max_concurrent));
        Server {
            db,
            admission,
            config,
        }
    }

    /// The served database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared admission controller.
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// Open a session of the given traffic class. Sessions are
    /// independent values (own their prepared statements and settings)
    /// and can be moved to other threads.
    pub fn session(&self, class: TrafficClass) -> Session {
        Session {
            db: self.db.clone(),
            admission: self.admission.clone(),
            class,
            batch_patience: self.config.batch_patience,
            degraded_budget: self.config.degraded_budget.clone(),
            engine: Engine::Tuple,
            budget: None,
            use_cache: true,
            feedback: false,
            prepared: HashMap::new(),
        }
    }
}

/// Why a session-level execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// `EXECUTE name` with no statement of that name prepared in this
    /// session.
    UnknownStatement(String),
    /// Preparing or executing the statement failed (parse, lowering —
    /// including a table dropped since `PREPARE` — binding, or
    /// planning).
    Prepare(PrepareError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownStatement(name) => {
                write!(f, "no prepared statement named '{name}'")
            }
            SessionError::Prepare(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<PrepareError> for SessionError {
    fn from(e: PrepareError) -> Self {
        SessionError::Prepare(e)
    }
}

/// One prepared execution as seen by a session: the database-level
/// outcome plus how admission treated it.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Rows, cache verdict, search stats, plan cost.
    pub outcome: PreparedOutcome,
    /// `true` when this execution ran under the degraded budget
    /// (admitted without a ticket).
    pub degraded: bool,
}

impl SessionOutcome {
    /// The result rows (convenience).
    pub fn rows(self) -> Vec<Tuple> {
        self.outcome.rows
    }
}

/// One client's connection state: named prepared statements plus the
/// session-scoped `SET` knobs. All mutation is `&mut self` on the
/// session's own state; the shared [`Database`] is only ever touched
/// through `&self` methods, so any number of sessions run concurrently.
pub struct Session {
    db: Arc<Database>,
    admission: Arc<AdmissionControl>,
    class: TrafficClass,
    batch_patience: Duration,
    degraded_budget: SearchBudget,
    /// `SET EXECUTOR` — tuple, batch, or fused.
    engine: Engine,
    /// `SET BUDGET` — session-chosen search budget for full-quality
    /// admissions; `None` = unlimited.
    budget: Option<SearchBudget>,
    /// `SET PLAN_CACHE` — `false` bypasses the shared cache for this
    /// session only.
    use_cache: bool,
    /// `SET FEEDBACK` — `true` harvests actual cardinalities from this
    /// session's executions into the shared selectivity memory.
    feedback: bool,
    prepared: HashMap<String, PreparedStatement>,
}

impl Session {
    /// The shared database this session talks to.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// This session's traffic class.
    pub fn class(&self) -> TrafficClass {
        self.class
    }

    /// Change this session's traffic class.
    pub fn set_class(&mut self, class: TrafficClass) {
        self.class = class;
    }

    /// `SET EXECUTOR`: choose the engine for subsequent executions.
    pub fn set_executor(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The engine subsequent executions run on.
    pub fn executor(&self) -> Engine {
        self.engine
    }

    /// `SET BUDGET`: bound search for subsequent full-quality
    /// executions (`None` = unlimited).
    pub fn set_budget(&mut self, budget: Option<SearchBudget>) {
        self.budget = budget;
    }

    /// The session budget, if any.
    pub fn budget(&self) -> Option<&SearchBudget> {
        self.budget.as_ref()
    }

    /// `SET PLAN_CACHE`: enable/bypass the shared plan cache for this
    /// session (the database-wide switch is untouched).
    pub fn set_plan_cache(&mut self, on: bool) {
        self.use_cache = on;
    }

    /// Whether this session uses the shared plan cache.
    pub fn plan_cache_enabled(&self) -> bool {
        self.use_cache
    }

    /// `SET FEEDBACK`: enable adaptive-feedback harvesting for this
    /// session's executions (the database-wide switch is untouched).
    pub fn set_feedback(&mut self, on: bool) {
        self.feedback = on;
    }

    /// Whether this session harvests execution feedback.
    pub fn feedback_enabled(&self) -> bool {
        self.feedback
    }

    /// `PREPARE name AS sql`: parse and parameterize, storing the
    /// statement under `name` (replacing any previous one). Returns the
    /// number of explicit `$n` parameters.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<usize, SessionError> {
        let stmt = self.db.prepare(sql).map_err(SessionError::Prepare)?;
        let n = stmt.param_count();
        self.prepared.insert(name.to_string(), stmt);
        Ok(n)
    }

    /// `PREPARE` from an already-parsed query (the CLI's path).
    pub fn prepare_ast(&mut self, name: &str, ast: &AstQuery) -> usize {
        let stmt = self.db.prepare_ast(ast);
        let n = stmt.param_count();
        self.prepared.insert(name.to_string(), stmt);
        n
    }

    /// `DEALLOCATE name`; returns whether the statement existed.
    pub fn deallocate(&mut self, name: &str) -> bool {
        self.prepared.remove(name).is_some()
    }

    /// The prepared statement stored under `name`, if any.
    pub fn statement(&self, name: &str) -> Option<&PreparedStatement> {
        self.prepared.get(name)
    }

    /// Names of this session's prepared statements (sorted).
    pub fn statement_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.prepared.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// `EXECUTE name (params...)` through admission control.
    pub fn execute(&self, name: &str, params: &[Value]) -> Result<SessionOutcome, SessionError> {
        self.execute_traced(name, params, None)
    }

    /// [`Session::execute`] with a tracer receiving the plan-cache
    /// lookup event.
    pub fn execute_traced(
        &self,
        name: &str,
        params: &[Value],
        tracer: Option<&dyn Tracer>,
    ) -> Result<SessionOutcome, SessionError> {
        let stmt = self
            .prepared
            .get(name)
            .ok_or_else(|| SessionError::UnknownStatement(name.to_string()))?;
        self.run(stmt, params, tracer)
    }

    /// One-shot: prepare `sql` anonymously and execute it immediately
    /// under admission control (the statement is not stored).
    pub fn query(&self, sql: &str) -> Result<SessionOutcome, SessionError> {
        let stmt = self.db.prepare(sql).map_err(SessionError::Prepare)?;
        self.run(&stmt, &[], None)
    }

    /// Execute an externally-held statement with this session's
    /// settings and admission.
    pub fn run(
        &self,
        stmt: &PreparedStatement,
        params: &[Value],
        tracer: Option<&dyn Tracer>,
    ) -> Result<SessionOutcome, SessionError> {
        // Admit first: the ticket (or the degraded verdict) covers the
        // whole optimize + execute span and is released when `admission`
        // drops at the end of this call.
        let admission = self.admission.admit(self.class, self.batch_patience);
        let budget = if admission.degraded() {
            Some(self.degraded_budget.clone())
        } else {
            self.budget.clone()
        };
        let mut opts = ExecOptions::new()
            .with_executor(self.engine)
            .with_cache_bypass(!self.use_cache)
            .with_feedback(self.feedback);
        opts.budget = budget;
        let outcome = self
            .db
            .execute_prepared_opts(stmt, params, &opts, tracer)
            .map_err(SessionError::Prepare)?;
        Ok(SessionOutcome {
            outcome,
            degraded: admission.degraded(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_degrades_instead_of_queueing() {
        let ctl = AdmissionControl::new(1);
        let held = ctl.admit(TrafficClass::Interactive, Duration::ZERO);
        assert!(!held.degraded());
        // Ticket exhausted: the next interactive request proceeds
        // degraded without blocking.
        let overload = ctl.admit(TrafficClass::Interactive, Duration::ZERO);
        assert!(overload.degraded());
        drop(overload);
        drop(held);
        // Ticket released: full admission again.
        assert!(!ctl
            .admit(TrafficClass::Interactive, Duration::ZERO)
            .degraded());
        let s = ctl.stats();
        assert_eq!(s.admitted_full, 2);
        assert_eq!(s.admitted_degraded, 1);
        assert_eq!(s.peak_in_flight, 1);
    }

    #[test]
    fn batch_waits_then_degrades() {
        let ctl = AdmissionControl::new(1);
        let held = ctl.admit(TrafficClass::Batch, Duration::ZERO);
        assert!(!held.degraded());
        let start = Instant::now();
        let second = ctl.admit(TrafficClass::Batch, Duration::from_millis(30));
        assert!(second.degraded());
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "batch must wait its patience"
        );
    }

    #[test]
    fn background_waits_for_release() {
        let ctl = Arc::new(AdmissionControl::new(1));
        let held = ctl.admit(TrafficClass::Background, Duration::ZERO);
        assert!(!held.degraded());
        std::thread::scope(|s| {
            let ctl2 = ctl.clone();
            let waiter = s.spawn(move || {
                // Blocks until the main thread releases.
                let a = ctl2.admit(TrafficClass::Background, Duration::ZERO);
                assert!(!a.degraded(), "background never degrades");
            });
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            waiter.join().unwrap();
        });
        let s = ctl.stats();
        assert_eq!(s.admitted_full, 2);
        assert_eq!(s.admitted_degraded, 0);
        assert_eq!(s.in_flight, 0);
    }
}
