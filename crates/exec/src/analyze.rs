//! EXPLAIN ANALYZE support: execute a plan with per-operator
//! instrumentation — row counts, open/next invocation counts and
//! wall-clock time — and report the actuals next to the optimizer's
//! estimated cardinalities and costs, a direct check of the
//! selectivity and cost models.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use volcano_rel::value::Tuple;
use volcano_rel::{Catalog, RelPlan};

use crate::batch::{collect_batches, Batch, BatchOperator, BoxedBatchOperator};
use crate::compile::{compile_batch_node, compile_node_at, BatchConfig, Built};
use crate::database::Database;
use crate::iterator::{collect, BoxedOperator, Operator};

/// Shared measurement cell for one plan node.
#[derive(Default)]
struct Cell {
    rows: AtomicU64,
    opens: AtomicU64,
    next_calls: AtomicU64,
    elapsed_ns: AtomicU64,
    extra: Mutex<Vec<(&'static str, u64)>>,
}

/// Pass-through operator measuring the operator beneath it: rows
/// produced, open/next invocations, inclusive wall-clock, and — at
/// close — a snapshot of the operator's own counters
/// ([`Operator::metrics`]).
struct Instrumented {
    child: BoxedOperator,
    cell: Arc<Cell>,
}

impl Operator for Instrumented {
    fn open(&mut self) {
        let start = Instant::now();
        self.child.open();
        self.cell.opens.fetch_add(1, Ordering::Relaxed);
        self.cell
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn next(&mut self) -> Option<Tuple> {
        let start = Instant::now();
        let t = self.child.next();
        self.cell.next_calls.fetch_add(1, Ordering::Relaxed);
        if t.is_some() {
            self.cell.rows.fetch_add(1, Ordering::Relaxed);
        }
        self.cell
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        t
    }

    fn close(&mut self) {
        let start = Instant::now();
        self.child.close();
        self.cell
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // The operator tree is torn down after execution; capture the
        // operator's counters while they are still reachable. Operators
        // that are closed more than once just overwrite with the latest
        // (cumulative) values.
        *self.cell.extra.lock().unwrap() = self.child.metrics();
    }

    fn name(&self) -> &'static str {
        self.child.name()
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        self.child.metrics()
    }
}

/// Pass-through batch operator measuring the batch operator beneath it.
/// Counts *live* rows (so `actual_rows` is comparable across engines)
/// and, at close, appends batch-shape statistics — batches produced,
/// average rows per batch, selection-vector density — ahead of the
/// operator's own kernel counters.
struct InstrumentedBatch {
    child: BoxedBatchOperator,
    cell: Arc<Cell>,
    batches: u64,
    live_rows: u64,
    physical_rows: u64,
}

impl BatchOperator for InstrumentedBatch {
    fn open(&mut self) {
        let start = Instant::now();
        self.child.open();
        self.cell.opens.fetch_add(1, Ordering::Relaxed);
        self.cell
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn next_batch(&mut self, out: &mut Batch) -> bool {
        let start = Instant::now();
        let more = self.child.next_batch(out);
        self.cell.next_calls.fetch_add(1, Ordering::Relaxed);
        if more {
            self.batches += 1;
            self.live_rows += out.live_rows() as u64;
            self.physical_rows += out.physical_rows() as u64;
            self.cell
                .rows
                .fetch_add(out.live_rows() as u64, Ordering::Relaxed);
        }
        self.cell
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        more
    }

    fn close(&mut self) {
        let start = Instant::now();
        self.child.close();
        self.cell
            .elapsed_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let mut extra = vec![("batches", self.batches)];
        if let Some(avg) = self.live_rows.checked_div(self.batches) {
            extra.push(("avg_batch_rows", avg));
        }
        if let Some(pct) = (self.live_rows * 100).checked_div(self.physical_rows) {
            extra.push(("sel_density_pct", pct));
        }
        extra.extend(self.child.metrics());
        *self.cell.extra.lock().unwrap() = extra;
    }

    fn name(&self) -> &'static str {
        self.child.name()
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        self.child.metrics()
    }
}

/// Per-operator measurement, in plan pre-order.
#[derive(Debug, Clone)]
pub struct NodeMeasurement {
    /// Operator description (with catalog names).
    pub description: String,
    /// Executable operator name (e.g. `hash_join`).
    pub operator: &'static str,
    /// Depth in the plan tree.
    pub depth: usize,
    /// Rows the optimizer's logical-property model predicted.
    pub est_rows: f64,
    /// Cumulative estimated cost of this subtree (`RelCost::total`).
    pub est_cost: f64,
    /// Rows actually produced by this operator.
    pub actual_rows: u64,
    /// Times `open` was invoked.
    pub opens: u64,
    /// Times `next` was invoked.
    pub next_calls: u64,
    /// Inclusive wall-clock spent in this subtree.
    pub elapsed: Duration,
    /// Operator-specific counters (e.g. `build_rows`, `runs_spilled`).
    pub extra: Vec<(&'static str, u64)>,
}

/// The result of an analyzed execution.
pub struct Analyzed {
    /// The query result.
    pub rows: Vec<Tuple>,
    /// Per-operator measurements, in plan pre-order.
    pub nodes: Vec<NodeMeasurement>,
}

fn fmt_dur(d: Duration) -> String {
    let us = d.as_nanos() as f64 / 1_000.0;
    if us < 1_000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{:.3}s", us / 1_000_000.0)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl Analyzed {
    /// Per-node actual output row counts in plan pre-order — the exact
    /// vector `volcano_rel::feedback::observations` consumes (the
    /// harvest walk and the instrumentation share the same pre-order).
    pub fn actual_rows(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.actual_rows).collect()
    }

    /// Inclusive-minus-children ("self") time for each node, derived
    /// from the pre-order depth vector.
    fn self_times(&self) -> Vec<Duration> {
        let mut out: Vec<Duration> = self.nodes.iter().map(|n| n.elapsed).collect();
        for (i, n) in self.nodes.iter().enumerate() {
            let mut j = i + 1;
            while j < self.nodes.len() && self.nodes[j].depth > n.depth {
                if self.nodes[j].depth == n.depth + 1 {
                    out[i] = out[i].saturating_sub(self.nodes[j].elapsed);
                }
                j += 1;
            }
        }
        out
    }

    /// Render an `EXPLAIN ANALYZE`-style report: one line per operator,
    /// estimated cost and rows next to actual rows and timings.
    pub fn report(&self) -> String {
        let selfs = self.self_times();
        let mut out = String::new();
        for (n, self_time) in self.nodes.iter().zip(selfs) {
            let _ = write!(
                out,
                "{:indent$}{}  (cost={:.2} est {:.0} rows) (actual {} rows, {} nexts, {} total, {} self)",
                "",
                n.description,
                n.est_cost,
                n.est_rows,
                n.actual_rows,
                n.next_calls,
                fmt_dur(n.elapsed),
                fmt_dur(self_time),
                indent = n.depth * 2
            );
            if !n.extra.is_empty() {
                let _ = write!(out, " [");
                for (i, (k, v)) in n.extra.iter().enumerate() {
                    let sep = if i == 0 { "" } else { ", " };
                    let _ = write!(out, "{sep}{k}={v}");
                }
                let _ = write!(out, "]");
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable export: the per-operator measurements as a JSON
    /// object (`{"result_rows": N, "nodes": [...]}`), nodes in plan
    /// pre-order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"result_rows\":{},\"nodes\":[", self.rows.len());
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"operator\":\"{}\",\"description\":\"{}\",\"depth\":{},\
                 \"est_rows\":{},\"est_cost\":{},\"actual_rows\":{},\
                 \"opens\":{},\"next_calls\":{},\"elapsed_us\":{}",
                json_escape(n.operator),
                json_escape(&n.description),
                n.depth,
                finite(n.est_rows),
                finite(n.est_cost),
                n.actual_rows,
                n.opens,
                n.next_calls,
                n.elapsed.as_micros()
            );
            let _ = write!(out, ",\"metrics\":{{");
            for (j, (k, v)) in n.extra.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(k), v);
            }
            let _ = write!(out, "}}}}");
        }
        out.push_str("]}");
        out
    }
}

/// Build the instrumented operator tree; measurements are recorded in
/// pre-order (parent before children).
fn instrument(
    db: &Database,
    sch: &crate::database::SchemaSnapshot,
    catalog: &Catalog,
    plan: &RelPlan,
    depth: usize,
    counters: &mut Vec<(NodeMeasurement, Arc<Cell>)>,
) -> BoxedOperator {
    let cell = Arc::new(Cell::default());
    let slot = counters.len();
    counters.push((
        NodeMeasurement {
            description: volcano_rel::explain::alg_description(catalog, &plan.alg),
            operator: "",
            depth,
            est_rows: volcano_rel::estimate::estimated_rows(catalog, plan),
            est_cost: plan.cost.total(),
            actual_rows: 0,
            opens: 0,
            next_calls: 0,
            elapsed: Duration::ZERO,
            extra: Vec::new(),
        },
        cell.clone(),
    ));
    let children: Vec<BoxedOperator> = plan
        .inputs
        .iter()
        .map(|c| instrument(db, sch, catalog, c, depth + 1, counters))
        .collect();
    let op = compile_node_at(db, sch, plan, children);
    counters[slot].0.operator = op.name();
    Box::new(Instrumented { child: op, cell })
}

fn drain_counters(counters: Vec<(NodeMeasurement, Arc<Cell>)>) -> Vec<NodeMeasurement> {
    counters
        .into_iter()
        .map(|(mut m, cell)| {
            m.actual_rows = cell.rows.load(Ordering::Relaxed);
            m.opens = cell.opens.load(Ordering::Relaxed);
            m.next_calls = cell.next_calls.load(Ordering::Relaxed);
            m.elapsed = Duration::from_nanos(cell.elapsed_ns.load(Ordering::Relaxed));
            m.extra = std::mem::take(&mut cell.extra.lock().unwrap());
            m
        })
        .collect()
}

/// Execute a plan with per-operator instrumentation.
pub fn execute_analyzed(db: &Database, catalog: &Catalog, plan: &RelPlan) -> Analyzed {
    let sch = db.snapshot();
    execute_analyzed_at(db, &sch, catalog, plan)
}

/// [`execute_analyzed`] against a caller-pinned schema snapshot — the
/// feedback path instruments the same snapshot the prepared execution
/// lowered on, so concurrent DDL cannot change the plan's tables
/// between planning and measurement.
pub fn execute_analyzed_at(
    db: &Database,
    sch: &crate::database::SchemaSnapshot,
    catalog: &Catalog,
    plan: &RelPlan,
) -> Analyzed {
    let mut counters = Vec::new();
    let mut op = instrument(db, sch, catalog, plan, 0, &mut counters);
    let rows = collect(op.as_mut());
    Analyzed {
        rows,
        nodes: drain_counters(counters),
    }
}

/// Build the instrumented batch tree, mirroring [`instrument`] over the
/// batch lowering. Each plan node is wrapped in the instrumentation
/// matching its engine (batch or tuple); the adapters the lowering
/// inserts at engine boundaries are not themselves plan nodes, so their
/// cost lands in the parent's self time.
fn instrument_batch(
    db: &Database,
    sch: &crate::database::SchemaSnapshot,
    catalog: &Catalog,
    plan: &RelPlan,
    depth: usize,
    cfg: BatchConfig,
    counters: &mut Vec<(NodeMeasurement, Arc<Cell>)>,
) -> Built {
    let cell = Arc::new(Cell::default());
    let slot = counters.len();
    counters.push((
        NodeMeasurement {
            description: volcano_rel::explain::alg_description(catalog, &plan.alg),
            operator: "",
            depth,
            est_rows: volcano_rel::estimate::estimated_rows(catalog, plan),
            est_cost: plan.cost.total(),
            actual_rows: 0,
            opens: 0,
            next_calls: 0,
            elapsed: Duration::ZERO,
            extra: Vec::new(),
        },
        cell.clone(),
    ));
    let children: Vec<Built> = plan
        .inputs
        .iter()
        .map(|c| instrument_batch(db, sch, catalog, c, depth + 1, cfg, counters))
        .collect();
    match compile_batch_node(db, sch, plan, children, cfg) {
        Built::B(op) => {
            counters[slot].0.operator = op.name();
            Built::B(Box::new(InstrumentedBatch {
                child: op,
                cell,
                batches: 0,
                live_rows: 0,
                physical_rows: 0,
            }))
        }
        Built::T(op) => {
            counters[slot].0.operator = op.name();
            Built::T(Box::new(Instrumented { child: op, cell }))
        }
    }
}

/// Execute a plan on the batch engine with per-operator
/// instrumentation. Node measurements carry batch-shape metrics
/// (batches, average rows per batch, selection-vector density) and
/// per-kernel timings alongside the estimated-vs-actual columns.
pub fn execute_analyzed_batch(
    db: &Database,
    catalog: &Catalog,
    plan: &RelPlan,
    cfg: BatchConfig,
) -> Analyzed {
    let sch = db.snapshot();
    execute_analyzed_batch_at(db, &sch, catalog, plan, cfg)
}

/// [`execute_analyzed_batch`] against a caller-pinned schema snapshot
/// (see [`execute_analyzed_at`]).
pub fn execute_analyzed_batch_at(
    db: &Database,
    sch: &crate::database::SchemaSnapshot,
    catalog: &Catalog,
    plan: &RelPlan,
    cfg: BatchConfig,
) -> Analyzed {
    let mut counters = Vec::new();
    let schema_len = crate::compile::schema_of_at(sch, plan).len();
    let mut op = instrument_batch(db, sch, catalog, plan, 0, cfg, &mut counters)
        .into_batch(schema_len, cfg.batch_size);
    let rows = collect_batches(op.as_mut());
    Analyzed {
        rows,
        nodes: drain_counters(counters),
    }
}

/// `EXPLAIN ANALYZE` output for the pipeline-fused engine: the result
/// rows plus the fused compilation/execution report (pipelines fused,
/// operators per pipeline, fallback segments, adapters, per-pipeline
/// row/batch/time counters).
#[derive(Debug)]
pub struct AnalyzedFused {
    /// Result rows.
    pub rows: Vec<Tuple>,
    /// The fused report, its per-pipeline counters now populated.
    pub report: crate::fused::FusedReport,
}

/// Execute a plan on the pipeline-fused engine and report fused-pipeline
/// metrics. A fused region is a single compiled loop — there are no
/// per-plan-node seams to instrument — so the analysis is per *pipeline*
/// (rows, batches, wall time), not per operator. Gather regions run
/// serially, mirroring [`execute_analyzed_batch`], so pipeline counters
/// cover the whole input rather than one worker's share.
pub fn execute_analyzed_fused(db: &Database, plan: &RelPlan, cfg: BatchConfig) -> AnalyzedFused {
    let sch = db.snapshot();
    let compiled = crate::fused::compile_fused_with(db, &sch, plan, cfg, true);
    let mut op = compiled.operator;
    let rows = collect_batches(op.as_mut());
    AnalyzedFused {
        rows,
        report: compiled.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_core::{PhysicalProps, SearchOptions};
    use volcano_rel::builder::{join_on, select_one};
    use volcano_rel::{Cmp, ColumnDef, QueryBuilder, RelModel, RelOptimizer, RelProps};

    #[test]
    fn analyzed_execution_counts_every_operator() {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            300.0,
            vec![ColumnDef::int("id", 300.0), ColumnDef::int("dept", 10.0)],
        );
        c.add_table("dept", 10.0, vec![ColumnDef::int("id", 10.0)]);
        let db = Database::in_memory(c.clone());
        db.generate(9);
        let model = RelModel::with_defaults(c.clone());
        let q = QueryBuilder::new(model.catalog());
        let expr = join_on(
            select_one(q.scan("emp"), Cmp::lt(q.attr("emp", "id"), 100i64)),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        );
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();

        let analyzed = execute_analyzed(&db, &c, &plan);
        // One measurement per plan node, root first.
        assert_eq!(analyzed.nodes.len(), plan.node_count());
        assert_eq!(analyzed.nodes[0].depth, 0);
        // The root's actual row count equals the result size.
        assert_eq!(analyzed.nodes[0].actual_rows as usize, analyzed.rows.len());
        // Every node has an operator name, an estimate, and was opened.
        for n in &analyzed.nodes {
            assert!(!n.operator.is_empty(), "{n:?}");
            assert!(n.est_rows > 0.0, "{n:?}");
            assert!(n.opens >= 1, "{n:?}");
            // next is called at least once more than rows produced (the
            // final None), except operators short-circuited by parents.
            assert!(n.next_calls >= n.actual_rows, "{n:?}");
        }
        // The root's estimated cost equals the winner's total cost.
        assert!((analyzed.nodes[0].est_cost - plan.cost.total()).abs() < 1e-9);
        // Some operator surfaced its own counters (a scan always does).
        assert!(
            analyzed.nodes.iter().any(|n| !n.extra.is_empty()),
            "no operator-specific metrics were captured"
        );
        // Instrumented execution returns the same rows as the plain one.
        let plain = db.execute(&plan);
        crate::naive::assert_same_rows(analyzed.rows.clone(), plain);
        // The report shows estimates next to actuals.
        let report = analyzed.report();
        assert!(report.contains("actual"), "{report}");
        assert!(report.contains("cost="), "{report}");
        assert!(
            report.contains("dept") || report.contains("emp"),
            "{report}"
        );
    }

    #[test]
    fn analyzed_json_export_is_well_formed() {
        let mut c = Catalog::new();
        c.add_table("t", 50.0, vec![ColumnDef::int("a", 50.0)]);
        let db = Database::in_memory(c.clone());
        db.generate(4);
        let model = RelModel::with_defaults(c.clone());
        let q = QueryBuilder::new(model.catalog());
        let expr = q.scan("t");
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();

        let analyzed = execute_analyzed(&db, &c, &plan);
        let json = analyzed.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"result_rows\":50"), "{json}");
        assert!(json.contains("\"operator\":\"file_scan\""), "{json}");
        assert!(json.contains("\"est_rows\":50"), "{json}");
        assert!(json.contains("\"metrics\":{"), "{json}");
        // Balanced braces/brackets (no string values contain either).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }
}
