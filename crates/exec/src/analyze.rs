//! EXPLAIN ANALYZE support: execute a plan with per-operator row
//! counters and report actual row counts next to the optimizer's
//! estimates — a direct check of the selectivity model.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use volcano_rel::value::Tuple;
use volcano_rel::{Catalog, RelPlan};

use crate::compile::compile_node;
use crate::database::Database;
use crate::iterator::{collect, BoxedOperator, Operator};

/// A pass-through operator counting the rows that flow out of its child.
struct Counted {
    child: BoxedOperator,
    rows: Arc<AtomicU64>,
}

impl Operator for Counted {
    fn open(&mut self) {
        self.child.open();
    }

    fn next(&mut self) -> Option<Tuple> {
        let t = self.child.next();
        if t.is_some() {
            self.rows.fetch_add(1, Ordering::Relaxed);
        }
        t
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Per-operator measurement, in plan pre-order.
#[derive(Debug, Clone)]
pub struct NodeMeasurement {
    /// Operator description (with catalog names).
    pub description: String,
    /// Depth in the plan tree.
    pub depth: usize,
    /// Rows actually produced by this operator.
    pub actual_rows: u64,
}

/// The result of an analyzed execution.
pub struct Analyzed {
    /// The query result.
    pub rows: Vec<Tuple>,
    /// Per-operator measurements, in plan pre-order.
    pub nodes: Vec<NodeMeasurement>,
}

impl Analyzed {
    /// Render an `EXPLAIN ANALYZE`-style report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "{:indent$}{}  (actual {} rows)",
                "",
                n.description,
                n.actual_rows,
                indent = n.depth * 2
            );
        }
        out
    }
}

/// Build the instrumented operator tree; measurements are recorded in
/// pre-order (parent before children).
fn instrument(
    db: &Database,
    catalog: &Catalog,
    plan: &RelPlan,
    depth: usize,
    counters: &mut Vec<(NodeMeasurement, Arc<AtomicU64>)>,
) -> BoxedOperator {
    let rows = Arc::new(AtomicU64::new(0));
    counters.push((
        NodeMeasurement {
            description: volcano_rel::explain::alg_description(catalog, &plan.alg),
            depth,
            actual_rows: 0,
        },
        rows.clone(),
    ));
    let children: Vec<BoxedOperator> = plan
        .inputs
        .iter()
        .map(|c| instrument(db, catalog, c, depth + 1, counters))
        .collect();
    Box::new(Counted {
        child: compile_node(db, plan, children),
        rows,
    })
}

/// Execute a plan with per-operator instrumentation.
pub fn execute_analyzed(db: &Database, catalog: &Catalog, plan: &RelPlan) -> Analyzed {
    let mut counters = Vec::new();
    let mut op = instrument(db, catalog, plan, 0, &mut counters);
    let rows = collect(op.as_mut());
    let nodes = counters
        .into_iter()
        .map(|(mut m, ctr)| {
            m.actual_rows = ctr.load(Ordering::Relaxed);
            m
        })
        .collect();
    Analyzed { rows, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_core::{PhysicalProps, SearchOptions};
    use volcano_rel::builder::{join_on, select_one};
    use volcano_rel::{Cmp, ColumnDef, QueryBuilder, RelModel, RelOptimizer, RelProps};

    #[test]
    fn analyzed_execution_counts_every_operator() {
        let mut c = Catalog::new();
        c.add_table(
            "emp",
            300.0,
            vec![ColumnDef::int("id", 300.0), ColumnDef::int("dept", 10.0)],
        );
        c.add_table("dept", 10.0, vec![ColumnDef::int("id", 10.0)]);
        let db = Database::in_memory(c.clone());
        db.generate(9);
        let model = RelModel::with_defaults(c.clone());
        let q = QueryBuilder::new(model.catalog());
        let expr = join_on(
            select_one(q.scan("emp"), Cmp::lt(q.attr("emp", "id"), 100i64)),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        );
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();

        let analyzed = execute_analyzed(&db, &c, &plan);
        // One measurement per plan node, root first.
        assert_eq!(analyzed.nodes.len(), plan.node_count());
        assert_eq!(analyzed.nodes[0].depth, 0);
        // The root's actual row count equals the result size.
        assert_eq!(analyzed.nodes[0].actual_rows as usize, analyzed.rows.len());
        // Instrumented execution returns the same rows as the plain one.
        let plain = db.execute(&plan);
        crate::naive::assert_same_rows(analyzed.rows.clone(), plain);
        // The report names the operators and their counts.
        let report = analyzed.report();
        assert!(report.contains("actual"), "{report}");
        assert!(
            report.contains("dept") || report.contains("emp"),
            "{report}"
        );
    }
}
