//! Differential tests for vectorized two-phase parallel aggregation.
//!
//! Every aggregate query shape (grouped and grand-total, each aggregate
//! function, NULL-bearing inputs) is executed on all three engines —
//! tuple (the oracle), batch, and fused — across the parallel-degree
//! ladder {1, 2, 4, 8} and batch sizes {1, default, 1024}, over skewed
//! and high-cardinality group distributions. Whatever the
//! configuration, the row *multiset* must be identical: integer sums
//! accumulate exactly (i64 with checked overflow promotion), so even
//! `SUM`/`AVG` results are bit-identical between the serial plan and
//! the two-phase parallel plan that splits them into per-worker
//! partials merged above the gather.
//!
//! The property tests pin the algebra that makes two-phase aggregation
//! correct: partial states merge associatively — any partition of the
//! input into worker chunks, merged in any order, must equal the
//! one-shot aggregation.
//!
//! `VOLCANO_THREADS=<n>` pins the sweep to one degree (used by the CI
//! serial and 8-way legs).

mod common;

use common::testkit::{
    assert_same_multiset, high_cardinality_rows, skewed_rows, thread_counts, Lcg,
};
use proptest::prelude::*;
use volcano_core::PhysicalProps;
use volcano_exec::kernels::agg::{CompiledAgg, GroupScratch, GroupTable};
use volcano_exec::{Batch, BatchConfig, Column, Database};
use volcano_rel::catalog::ColType;
use volcano_rel::value::Tuple;
use volcano_rel::{
    explain_plan, Catalog, ColumnDef, RelAlg, RelModel, RelModelOptions, RelPlan, RelProps, Value,
};
use volcano_sql::plan_query;

/// Aggregate query list: one per function, a multi-aggregate row, a
/// grand total, and a sorted grouping (sort above the final merge).
const AGG_QUERIES: &[&str] = &[
    "SELECT cust, COUNT(*) FROM sales GROUP BY cust",
    "SELECT cust, SUM(amount) FROM sales GROUP BY cust",
    "SELECT cust, MIN(amount), MAX(amount) FROM sales GROUP BY cust",
    "SELECT cust, AVG(amount) FROM sales GROUP BY cust",
    "SELECT cust, COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) \
     FROM sales GROUP BY cust",
    "SELECT COUNT(*), SUM(amount), AVG(amount) FROM sales",
    "SELECT cust, SUM(amount) FROM sales GROUP BY cust ORDER BY cust",
];

/// The `sales` catalog. The statistics claim a large table so the cost
/// model favours two-phase parallel plans at degree > 1; the actual
/// heap holds whatever rows the test inserts (statistics are estimates,
/// not a contract).
fn sales_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "sales",
        1_000_000.0,
        vec![
            ColumnDef::int("cust", 100.0),
            ColumnDef::int("amount", 10_000.0),
        ],
    );
    c
}

fn make_db(rows: &[(Option<i64>, Option<i64>)]) -> Database {
    let catalog = sales_catalog();
    let table = catalog.table_by_name("sales").unwrap().id;
    let db = Database::in_memory(catalog);
    let as_value = |x: Option<i64>| x.map(Value::Int).unwrap_or(Value::Null);
    for &(k, v) in rows {
        db.insert(table, vec![as_value(k), as_value(v)]);
    }
    db
}

/// Does the plan split the aggregation: a final merge above a gather
/// above a per-worker partial aggregation?
fn is_two_phase(plan: &RelPlan) -> bool {
    fn walk(p: &RelPlan) -> bool {
        if let RelAlg::Gather(_) = p.alg {
            return matches!(p.inputs[0].alg, RelAlg::PartialHashAggregate(..));
        }
        p.inputs.iter().any(walk)
    }
    matches!(plan.alg, RelAlg::FinalHashAggregate(_)) || plan.inputs.iter().any(walk)
}

/// Optimize `sql` at `degree` and execute it on all three engines at
/// every batch size, asserting identical multisets. Integer columns
/// make the assertion exact even for SUM/AVG under parallelism.
fn assert_agg_agrees(db: &Database, sql: &str, degree: u32) {
    let mut catalog = sales_catalog();
    let q = plan_query(sql, &mut catalog).expect("query must parse");
    let model = RelModel::new(
        catalog.clone(),
        RelModelOptions::default().with_parallel_degree(degree),
    );
    let goal = RelProps::sorted(q.order_by.clone());
    let plan = {
        use volcano_core::SearchOptions;
        use volcano_rel::RelOptimizer;
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&q.expr);
        opt.find_best_plan(root, goal, None)
            .unwrap_or_else(|e| panic!("{sql}: optimization failed: {e}"))
    };
    // Grouped queries must split under a parallel model. Grand totals
    // (no group keys) may legitimately stay single-phase: with one
    // output row, the optimizer is free to price a stream aggregate
    // directly above the gather instead.
    if degree > 1 && sql.contains("GROUP BY") {
        assert!(
            is_two_phase(&plan),
            "{sql} deg={degree}: expected a two-phase parallel aggregation, got\n{}",
            explain_plan(&catalog, &plan)
        );
    }
    let tuple_rows = db.execute(&plan);
    for batch_size in [Some(1), None, Some(1024)] {
        let cfg = match batch_size {
            Some(n) => BatchConfig::with_batch_size(n),
            None => BatchConfig::default(),
        };
        let tag = format!("{sql}: deg={degree} batch={batch_size:?}");
        let batch_rows = db.execute_batch(&plan, cfg);
        let fused_rows = db.execute_fused(&plan, cfg);
        assert_same_multiset(&tuple_rows, &batch_rows, &format!("{tag} [batch]"));
        assert_same_multiset(&tuple_rows, &fused_rows, &format!("{tag} [fused]"));
    }
}

#[test]
fn skewed_groups_agree_across_engines_and_degrees() {
    let db = make_db(&skewed_rows(4_000, 7));
    for degree in thread_counts() {
        for sql in AGG_QUERIES {
            assert_agg_agrees(&db, sql, degree);
        }
    }
}

#[test]
fn high_cardinality_groups_agree_across_engines_and_degrees() {
    let db = make_db(&high_cardinality_rows(3_000, 11));
    for degree in thread_counts() {
        for sql in AGG_QUERIES {
            assert_agg_agrees(&db, sql, degree);
        }
    }
}

#[test]
fn empty_input_grand_total_yields_one_row_everywhere() {
    let db = make_db(&[]);
    for degree in thread_counts() {
        for sql in [
            "SELECT COUNT(*), SUM(amount), AVG(amount) FROM sales",
            "SELECT cust, COUNT(*) FROM sales GROUP BY cust",
        ] {
            assert_agg_agrees(&db, sql, degree);
        }
    }
    // The grand total over no rows is exactly one row on the oracle.
    let mut catalog = sales_catalog();
    let q = plan_query("SELECT COUNT(*), SUM(amount) FROM sales", &mut catalog).unwrap();
    let model = RelModel::new(catalog, RelModelOptions::default());
    let plan = {
        use volcano_core::SearchOptions;
        use volcano_rel::RelOptimizer;
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&q.expr);
        opt.find_best_plan(root, RelProps::any(), None).unwrap()
    };
    assert_eq!(
        db.execute(&plan),
        vec![vec![Value::Int(0), Value::Null]],
        "grand total over empty input"
    );
}

/// Integer sums must be exact past 2^53 — and identical under
/// parallelism, because per-worker partials are exact i64 sums.
#[test]
fn huge_integer_sums_are_exact_at_every_degree() {
    let base = 1i64 << 53;
    let rows: Vec<(Option<i64>, Option<i64>)> =
        (0..64).map(|i| (Some(i % 4), Some(base + i))).collect();
    let db = make_db(&rows);
    for degree in thread_counts() {
        assert_agg_agrees(
            &db,
            "SELECT cust, SUM(amount) FROM sales GROUP BY cust",
            degree,
        );
    }
    // The values themselves stay exact integers (no float rounding):
    // group 0 sums 16 terms of ~2^53, far past f64's exact range.
    let mut catalog = sales_catalog();
    let q = plan_query(
        "SELECT cust, SUM(amount) FROM sales GROUP BY cust",
        &mut catalog,
    )
    .unwrap();
    let model = RelModel::new(catalog, RelModelOptions::default());
    let plan = {
        use volcano_core::SearchOptions;
        use volcano_rel::RelOptimizer;
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&q.expr);
        opt.find_best_plan(root, RelProps::any(), None).unwrap()
    };
    for row in db.execute(&plan) {
        let Value::Int(k) = row[0] else {
            panic!("integer group key")
        };
        let exact: i64 = (0..64).filter(|i| i % 4 == k).map(|i| base + i).sum();
        assert_eq!(row[1], Value::Int(exact), "group {k} must sum exactly");
    }
}

// ---------------------------------------------------------------------
// Property tests: partial/final merge algebra.
// ---------------------------------------------------------------------

const PROP_AGGS: [CompiledAgg; 5] = [
    CompiledAgg::CountStar,
    CompiledAgg::Sum(1),
    CompiledAgg::Min(1),
    CompiledAgg::Max(1),
    CompiledAgg::Avg(1),
];

fn rows_to_batch(rows: &[(i64, Option<i64>)]) -> Batch {
    let mut k = Column::with_type(ColType::Int);
    let mut v = Column::with_type(ColType::Int);
    for &(key, val) in rows {
        k.push_value(Value::Int(key));
        match val {
            Some(x) => v.push_value(Value::Int(x)),
            None => v.push_null(),
        }
    }
    let mut b = Batch::with_columns(0);
    b.columns = vec![k, v];
    b.set_physical_rows(rows.len());
    b
}

fn emitted_rows(table: &GroupTable, partial: bool) -> Vec<Tuple> {
    let mut out = Batch::default();
    table.emit(0..table.len(), &PROP_AGGS, partial, &mut out);
    let mut rows: Vec<Tuple> = (0..out.live_rows()).map(|i| out.row_at_live(i)).collect();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rows
}

/// One-shot aggregation of `rows`.
fn complete_rows(rows: &[(i64, Option<i64>)]) -> Vec<Tuple> {
    let mut scratch = GroupScratch::default();
    let mut t = GroupTable::new(1, &PROP_AGGS);
    if !rows.is_empty() {
        t.accumulate(&rows_to_batch(rows), &[0], &PROP_AGGS, &mut scratch);
    }
    emitted_rows(&t, false)
}

/// Two-phase aggregation: partition `rows` by `assign`, aggregate each
/// chunk separately, and merge the partial outputs in `order`.
fn two_phase_rows(
    rows: &[(i64, Option<i64>)],
    assign: &[usize],
    order: &[usize],
    workers: usize,
) -> Vec<Tuple> {
    let mut scratch = GroupScratch::default();
    let mut partials: Vec<Batch> = Vec::new();
    for w in 0..workers {
        let chunk: Vec<(i64, Option<i64>)> = rows
            .iter()
            .zip(assign)
            .filter(|&(_, &a)| a % workers == w)
            .map(|(&r, _)| r)
            .collect();
        let mut t = GroupTable::new(1, &PROP_AGGS);
        if !chunk.is_empty() {
            t.accumulate(&rows_to_batch(&chunk), &[0], &PROP_AGGS, &mut scratch);
        }
        let mut out = Batch::default();
        t.emit(0..t.len(), &PROP_AGGS, true, &mut out);
        partials.push(out);
    }
    let mut fin = GroupTable::new(1, &PROP_AGGS);
    for &w in order {
        let p = &partials[w % workers];
        if p.live_rows() > 0 {
            fin.merge_partial(p, &PROP_AGGS, &mut scratch);
        }
    }
    emitted_rows(&fin, false)
}

/// Decode a generated `(key, value, null_marker)` triple: a marker of 0
/// makes the value NULL (≈ one in eight rows).
fn decode_rows(raw: &[(i64, i64, u8)]) -> Vec<(i64, Option<i64>)> {
    raw.iter()
        .map(|&(k, v, n)| (k, if n == 0 { None } else { Some(v) }))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any partition of the input across workers, merged in any order,
    /// equals the one-shot aggregation — the associativity and
    /// commutativity two-phase parallel aggregation relies on. Exact on
    /// integers: per-worker sums are precise i64 partials.
    #[test]
    fn partial_final_merge_is_partition_invariant(
        raw in proptest::collection::vec((-5i64..5, -10_000i64..10_000, 0u8..8), 0..120),
        assign_seed in any::<u64>(),
        workers in 1usize..5,
    ) {
        let rows = decode_rows(&raw);
        let assign: Vec<usize> = {
            let mut rng = Lcg(assign_seed);
            rows.iter().map(|_| rng.next() as usize).collect()
        };
        let expect = complete_rows(&rows);
        let forward: Vec<usize> = (0..workers).collect();
        let reverse: Vec<usize> = (0..workers).rev().collect();
        prop_assert_eq!(&two_phase_rows(&rows, &assign, &forward, workers), &expect);
        prop_assert_eq!(&two_phase_rows(&rows, &assign, &reverse, workers), &expect);
    }

    /// Merging a stream of partials one batch at a time equals merging
    /// them grouped — the final aggregate cannot care how the gather
    /// interleaves worker outputs.
    #[test]
    fn merge_is_associative_over_partial_batches(
        raw_chunks in proptest::collection::vec(
            proptest::collection::vec((-3i64..3, -100i64..100, 0u8..8), 0..30),
            1..5,
        ),
    ) {
        let mut scratch = GroupScratch::default();
        let chunks: Vec<Vec<(i64, Option<i64>)>> =
            raw_chunks.iter().map(|c| decode_rows(c)).collect();
        let all: Vec<(i64, Option<i64>)> = chunks.iter().flatten().copied().collect();
        let expect = complete_rows(&all);

        let mut fin = GroupTable::new(1, &PROP_AGGS);
        for chunk in &chunks {
            let mut w = GroupTable::new(1, &PROP_AGGS);
            if !chunk.is_empty() {
                w.accumulate(&rows_to_batch(chunk), &[0], &PROP_AGGS, &mut scratch);
            }
            // Deliver this worker's groups in several small batches.
            let total = w.len();
            let mut from = 0;
            while from < total {
                let to = (from + 7).min(total);
                let mut out = Batch::default();
                w.emit(from..to, &PROP_AGGS, true, &mut out);
                fin.merge_partial(&out, &PROP_AGGS, &mut scratch);
                from = to;
            }
        }
        prop_assert_eq!(&emitted_rows(&fin, false), &expect);
    }
}
