//! Property-based tests for morsel partitioning and dispensing.
//!
//! Whatever the table size, morsel granularity, and worker count, the
//! work-stealing machinery must hand out *exactly* the pages of the
//! table, each exactly once — a dropped or duplicated morsel silently
//! corrupts query results, so these invariants hold unconditionally.

use proptest::prelude::*;
use std::sync::Arc;
use volcano_exec::morsel::{partition_pages, StealQueue};
use volcano_exec::MorselStats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The morsels tile `0..n_pages` exactly: contiguous, ordered,
    /// non-overlapping, nothing missing — their union is the full scan.
    #[test]
    fn partition_tiles_the_table(n_pages in 0usize..5_000, morsel_pages in 0usize..6_000) {
        let morsels = partition_pages(n_pages, morsel_pages);
        let mut next = 0usize;
        for m in &morsels {
            prop_assert_eq!(m.start, next, "gap or overlap before page {}", next);
            prop_assert!(m.end > m.start, "empty morsel at {}", m.start);
            next = m.end;
        }
        prop_assert_eq!(next, n_pages, "morsels do not cover the table");
    }

    /// No morsel exceeds the requested granularity (clamped to ≥ 1),
    /// and the morsel count is exactly ⌈n_pages / granularity⌉.
    #[test]
    fn partition_respects_granularity(n_pages in 0usize..5_000, morsel_pages in 0usize..6_000) {
        let step = morsel_pages.max(1);
        let morsels = partition_pages(n_pages, morsel_pages);
        for m in &morsels {
            prop_assert!(m.len() <= step, "morsel [{}, {}) exceeds {} pages", m.start, m.end, step);
        }
        prop_assert_eq!(morsels.len(), n_pages.div_ceil(step));
    }

    /// Degenerate granularities are safe: zero clamps to one page per
    /// morsel, and a huge granularity yields one whole-table morsel.
    #[test]
    fn partition_degenerate_granularities(n_pages in 1usize..2_000) {
        prop_assert_eq!(partition_pages(n_pages, 0).len(), n_pages);
        let whole = partition_pages(n_pages, usize::MAX);
        prop_assert_eq!(whole.len(), 1);
        prop_assert_eq!(whole[0].start, 0);
        prop_assert_eq!(whole[0].end, n_pages);
    }

    /// A steal queue dispenses every morsel exactly once, no matter how
    /// many workers the morsels are dealt across or which single worker
    /// does the draining (exercising both own-queue pops and steals).
    #[test]
    fn steal_queue_dispenses_each_morsel_once(
        n_pages in 0usize..800,
        morsel_pages in 0usize..1_000,
        workers in 1usize..12,
        drainer_pick in 0usize..12,
    ) {
        let expected = partition_pages(n_pages, morsel_pages);
        let stats = Arc::new(MorselStats::default());
        let q = StealQueue::new(expected.clone(), workers, stats.clone(), None);
        let drainer = drainer_pick % q.workers();
        let mut seen = Vec::new();
        while let Some(m) = q.pop(drainer) {
            seen.push(m);
        }
        prop_assert!(q.pop(drainer).is_none(), "queue must stay empty once drained");
        seen.sort_by_key(|m| m.start);
        prop_assert_eq!(&seen, &expected);
        prop_assert_eq!(stats.dispatched(), expected.len() as u64);
        prop_assert!(stats.stolen() <= stats.dispatched());
    }
}
