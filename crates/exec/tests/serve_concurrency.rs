//! Concurrent multi-session serving stress suite.
//!
//! `threads × sessions` workers hammer one shared [`Database`] through
//! serving-layer [`Session`]s with a mixed PREPARE / EXECUTE / INSERT /
//! one-shot-query workload while a chaos thread bumps the stats epoch,
//! refreshes statistics, and drops a table mid-run. The suite asserts
//! the system-wide ledgers reconcile *exactly* — not approximately:
//!
//! * plan-cache counters: `hits + misses + invalidations == lookups`,
//!   and `lookups` equals the number of executions that reached the
//!   cache probe (successful executions; a lowering failure over the
//!   dropped table probes nothing);
//! * the stats epoch advances by exactly one per insert, explicit bump,
//!   stats refresh, and drop — concurrent bumps are never lost;
//! * admission: `admitted_full + admitted_degraded` equals the number
//!   of admissions requested;
//! * a query over a never-mutated table returns the identical rows in
//!   every one of its thousands of concurrent executions.
//!
//! Set `VOLCANO_THREADS` to scale the worker count (CI runs 1 and 8).

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::testkit::diff_catalog;
use volcano_exec::{
    Database, PrepareError, Server, ServerConfig, Session, SessionError, TrafficClass,
};
use volcano_rel::value::Tuple;
use volcano_rel::Value;

fn assert_send_sync<T: Send + Sync>() {}

/// The tentpole's compile-time claim: the database and the whole
/// serving layer can be shared freely across threads.
#[test]
fn database_and_serving_layer_are_send_and_sync() {
    assert_send_sync::<Database>();
    assert_send_sync::<Server>();
    assert_send_sync::<Session>();
    assert_send_sync::<volcano_exec::AdmissionControl>();
}

fn worker_count() -> usize {
    std::env::var("VOLCANO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: usize| n.clamp(1, 16))
        .unwrap_or(4)
}

/// Per-worker tallies the final reconciliation sums up.
#[derive(Default)]
struct WorkerLedger {
    /// Admissions this worker requested (every EXECUTE / one-shot).
    admissions: u64,
    /// Executions that returned rows (and so probed the plan cache).
    successes: u64,
    /// Rows inserted into `emp` (each bumps the epoch once).
    inserts: u64,
}

const REGION_SQL: &str = "SELECT region.id FROM region ORDER BY region.id";
const DEPT_SQL: &str = "SELECT dept.id FROM dept, region \
     WHERE dept.region = region.id ORDER BY dept.id";
const STATIC_SQL: &str = "SELECT dept.id, dept.region FROM dept ORDER BY dept.id";
const EMP_SQL: &str = "SELECT emp.id FROM emp WHERE emp.salary < $0";
const AGG_SQL: &str = "SELECT emp.dept, COUNT(*) FROM emp GROUP BY emp.dept ORDER BY emp.dept";

#[test]
fn sessions_under_ddl_chaos_reconcile_exactly() {
    let workers = worker_count();
    let iters = 80usize;

    let db = Arc::new(Database::in_memory(diff_catalog()));
    db.generate(29);
    let emp = db.catalog().table_by_name("emp").unwrap().id;
    // Tickets below the worker count so interactive traffic really gets
    // degraded admissions under load.
    let server = Server::over(
        db.clone(),
        ServerConfig {
            max_concurrent: 2.min(workers),
            batch_patience: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );

    // The oracle for the never-mutated table, computed single-threaded.
    let static_rows: Vec<Tuple> = {
        let s = server.session(TrafficClass::Background);
        let out = s.query(STATIC_SQL).expect("static oracle");
        out.rows()
    };
    let epoch_start = db.epoch();
    let mut base_admissions = 1u64; // the oracle query above

    // Warm one shape so hit/invalidated paths are exercised from the
    // first concurrent iteration.
    {
        let mut s = server.session(TrafficClass::Batch);
        s.prepare("warm", EMP_SQL).unwrap();
        s.execute("warm", &[Value::Int(40)]).unwrap();
        base_admissions += 1;
    }
    let base_successes = base_admissions;

    let region_dropped = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    let (ledgers, chaos_events) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let class = match w % 3 {
                0 => TrafficClass::Interactive,
                1 => TrafficClass::Batch,
                _ => TrafficClass::Background,
            };
            let mut session = server.session(class);
            let db = db.clone();
            let region_dropped = region_dropped.clone();
            let static_rows = static_rows.clone();
            handles.push(scope.spawn(move || {
                let mut ledger = WorkerLedger::default();
                session.prepare("emp", EMP_SQL).unwrap();
                session.prepare("static", STATIC_SQL).unwrap();
                session.prepare("region", REGION_SQL).unwrap();
                let run =
                    |session: &Session, name: &str, params: &[Value], ledger: &mut WorkerLedger| {
                        ledger.admissions += 1;
                        match session.execute(name, params) {
                            Ok(out) => {
                                ledger.successes += 1;
                                Some(out)
                            }
                            Err(SessionError::Prepare(PrepareError::Lower(_))) => {
                                // Only the dropped table may fail, and only
                                // once the chaos thread started dropping it.
                                assert!(
                                    region_dropped.load(Ordering::Acquire),
                                    "lowering failed before any drop happened"
                                );
                                None
                            }
                            Err(e) => panic!("worker {w}: unexpected error: {e}"),
                        }
                    };
                for i in 0..iters {
                    match i % 8 {
                        // Statements over the growing table: parameters
                        // vary so rebinding is exercised.
                        0..=2 => {
                            run(&session, "emp", &[Value::Int((i % 90) as i64)], &mut ledger);
                        }
                        // The static table: rows must be identical on
                        // every execution, concurrent DDL or not.
                        3 => {
                            if let Some(out) = run(&session, "static", &[], &mut ledger) {
                                assert_eq!(
                                    out.rows(),
                                    static_rows,
                                    "worker {w}: static query diverged mid-chaos"
                                );
                            }
                        }
                        // The sacrificial table (dropped mid-run).
                        4 => {
                            run(&session, "region", &[], &mut ledger);
                        }
                        // Re-PREPARE over the same name, then one-shot
                        // queries (anonymous prepare + execute).
                        5 => {
                            session.prepare("emp", EMP_SQL).unwrap();
                            ledger.admissions += 1;
                            match session.query(if i % 2 == 0 { AGG_SQL } else { DEPT_SQL }) {
                                Ok(_) => ledger.successes += 1,
                                Err(SessionError::Prepare(PrepareError::Lower(_))) => {
                                    assert!(region_dropped.load(Ordering::Acquire));
                                }
                                Err(e) => panic!("worker {w}: unexpected error: {e}"),
                            }
                        }
                        // Grow emp: each insert bumps the epoch once.
                        6 => {
                            for k in 0..3 {
                                db.insert(
                                    emp,
                                    vec![
                                        Value::Int(1_000_000 + (w * iters + i * 3 + k) as i64),
                                        Value::Int((i % 20) as i64),
                                        Value::Int((i % 100) as i64),
                                    ],
                                );
                                ledger.inserts += 1;
                            }
                        }
                        // Refresh statistics from a worker, too (tallied
                        // below as `worker_refreshes`).
                        _ => {
                            db.refresh_stats();
                            ledger.admissions += 1;
                            match session.execute("emp", &[Value::Int(50)]) {
                                Ok(_) => ledger.successes += 1,
                                Err(SessionError::Prepare(PrepareError::Lower(_))) => {
                                    assert!(region_dropped.load(Ordering::Acquire));
                                }
                                Err(e) => panic!("worker {w}: unexpected error: {e}"),
                            }
                        }
                    }
                }
                ledger
            }));
        }

        // DDL chaos: explicit epoch bumps, stats refreshes, and one
        // mid-run DROP TABLE. Event counts are fixed so the final
        // epoch arithmetic is exact.
        let chaos = {
            let db = db.clone();
            let region_dropped = region_dropped.clone();
            let done = done.clone();
            scope.spawn(move || {
                let mut bumps = 0u64;
                let mut refreshes = 0u64;
                for round in 0..40 {
                    if done.load(Ordering::Acquire) && round >= 10 {
                        break;
                    }
                    db.bump_epoch();
                    bumps += 1;
                    if round % 5 == 4 {
                        db.refresh_stats();
                        refreshes += 1;
                    }
                    if round == 8 {
                        // Announce first: a worker observing the failure
                        // must find the flag already set.
                        region_dropped.store(true, Ordering::Release);
                        assert!(db.drop_table("region"), "region existed");
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                (bumps, refreshes)
            })
        };

        let ledgers: Vec<WorkerLedger> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, Ordering::Release);
        (ledgers, chaos.join().unwrap())
    });

    let (chaos_bumps, chaos_refreshes) = chaos_events;
    let total_admissions: u64 = base_admissions + ledgers.iter().map(|l| l.admissions).sum::<u64>();
    let total_successes: u64 = base_successes + ledgers.iter().map(|l| l.successes).sum::<u64>();
    let total_inserts: u64 = ledgers.iter().map(|l| l.inserts).sum();
    // Workers refresh stats on every `i % 8 == 7` iteration.
    let worker_refreshes = (workers * (iters / 8)) as u64;

    // (1) Plan-cache counters reconcile exactly: every success probed
    // the cache exactly once; nothing else did.
    let s = db.plan_cache().stats();
    assert_eq!(
        s.lookups,
        s.hits + s.misses + s.invalidations,
        "cache counters do not reconcile"
    );
    assert_eq!(
        s.lookups, total_successes,
        "lookups diverged from successful executions"
    );

    // (2) No lost epoch bumps: inserts + refreshes + explicit bumps +
    // the drop, each exactly once. Feedback is off in this suite, so
    // its epoch-bump term must be exactly zero.
    assert_eq!(db.feedback_stats().epoch_bumps, 0, "feedback is off");
    let expected_epoch =
        epoch_start + total_inserts + worker_refreshes + chaos_refreshes + chaos_bumps + 1; // the drop
    assert_eq!(
        db.epoch(),
        expected_epoch,
        "epoch bumps were lost or double-counted"
    );

    // (3) Admission ledger: every request was admitted exactly once,
    // full or degraded.
    let a = server.admission().stats();
    assert_eq!(
        a.admitted_full + a.admitted_degraded,
        total_admissions,
        "admissions do not reconcile"
    );
    assert_eq!(a.in_flight, 0, "tickets leaked");
    assert!(
        a.peak_in_flight <= 2.min(workers),
        "ticket cap exceeded: {}",
        a.peak_in_flight
    );
    // With more workers than tickets, interactive traffic must actually
    // have been degraded at least once.
    if workers >= 4 {
        assert!(
            a.admitted_degraded > 0,
            "no degradation despite {workers} workers on {} tickets",
            2.min(workers)
        );
    }

    // (4) The dropped table is gone; survivors still answer.
    let survivor = server.session(TrafficClass::Interactive);
    assert!(matches!(
        survivor.query(REGION_SQL),
        Err(SessionError::Prepare(PrepareError::Lower(_)))
    ));
    assert_eq!(survivor.query(STATIC_SQL).unwrap().rows(), static_rows);
}

/// Adaptive feedback under chaos: every worker session runs with
/// `SET FEEDBACK ON` (on a rotating engine) while a chaos thread bumps
/// epochs and refreshes statistics, racing the feedback merges on the
/// same copy-on-write catalog. The ledgers must still reconcile
/// *exactly*:
///
/// * the epoch advances by exactly one per insert, refresh, explicit
///   bump, and material feedback merge — the database's own
///   `epoch_bumps` counter closes the arithmetic, so a torn or lost
///   feedback write shows up as an off-by-n here;
/// * plan-cache counters reconcile (`lookups == successes`,
///   `hits + misses + invalidations == lookups`), and live entries
///   equal `insertions - evictions` — feedback-driven invalidations
///   never leak entries;
/// * every selectivity-memory cell is a valid merge result: selectivity
///   finite in (0, 1], observation count ≥ 1.
#[test]
fn feedback_under_chaos_reconciles_exactly() {
    use volcano_exec::{BatchConfig, Engine};

    let workers = worker_count();
    let iters = 60usize;

    let db = Arc::new(Database::in_memory(diff_catalog()));
    db.generate(31);
    db.set_feedback_enabled(true);
    let emp = db.catalog().table_by_name("emp").unwrap().id;
    let server = Server::over(
        db.clone(),
        ServerConfig {
            max_concurrent: 2.min(workers),
            batch_patience: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );
    let epoch_start = db.epoch();
    let done = Arc::new(AtomicBool::new(false));

    let (ledgers, chaos_events) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let mut session = server.session(match w % 3 {
                0 => TrafficClass::Interactive,
                1 => TrafficClass::Batch,
                _ => TrafficClass::Background,
            });
            session.set_executor(match w % 3 {
                0 => Engine::Tuple,
                1 => Engine::Batch(BatchConfig::default()),
                _ => Engine::Fused(BatchConfig::default()),
            });
            let db = db.clone();
            handles.push(scope.spawn(move || {
                let mut ledger = WorkerLedger::default();
                session.prepare("emp", EMP_SQL).unwrap();
                for i in 0..iters {
                    match i % 6 {
                        // Executions with varying parameters: every one
                        // harvests observations into the shared memory.
                        0..=3 => {
                            ledger.admissions += 1;
                            session
                                .execute("emp", &[Value::Int((i % 90) as i64)])
                                .unwrap_or_else(|e| panic!("worker {w}: {e}"));
                            ledger.successes += 1;
                        }
                        // Join one-shots exercise join-key observations.
                        4 => {
                            ledger.admissions += 1;
                            session
                                .query(DEPT_SQL)
                                .unwrap_or_else(|e| panic!("worker {w}: {e}"));
                            ledger.successes += 1;
                        }
                        // Grow emp: races the feedback snapshot swaps.
                        _ => {
                            db.insert(
                                emp,
                                vec![
                                    Value::Int(2_000_000 + (w * iters + i) as i64),
                                    Value::Int((i % 20) as i64),
                                    Value::Int((i % 100) as i64),
                                ],
                            );
                            ledger.inserts += 1;
                        }
                    }
                }
                ledger
            }));
        }

        let chaos = {
            let db = db.clone();
            let done = done.clone();
            scope.spawn(move || {
                let mut bumps = 0u64;
                let mut refreshes = 0u64;
                for round in 0..40 {
                    if done.load(Ordering::Acquire) && round >= 10 {
                        break;
                    }
                    db.bump_epoch();
                    bumps += 1;
                    if round % 4 == 3 {
                        db.refresh_stats();
                        refreshes += 1;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                (bumps, refreshes)
            })
        };

        let ledgers: Vec<WorkerLedger> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, Ordering::Release);
        (ledgers, chaos.join().unwrap())
    });

    let (chaos_bumps, chaos_refreshes) = chaos_events;
    let total_admissions: u64 = ledgers.iter().map(|l| l.admissions).sum();
    let total_successes: u64 = ledgers.iter().map(|l| l.successes).sum();
    let total_inserts: u64 = ledgers.iter().map(|l| l.inserts).sum();

    // (1) Cache counters reconcile; feedback-driven invalidations do
    // not leak entries.
    let s = db.plan_cache().stats();
    assert_eq!(s.lookups, s.hits + s.misses + s.invalidations);
    assert_eq!(s.lookups, total_successes);
    assert_eq!(
        db.plan_cache().len() as u64,
        s.insertions - s.evictions,
        "evicted entries leaked"
    );

    // (2) Exact epoch arithmetic, feedback bumps included: the
    // database's own counter must close the ledger to the bump.
    let fb = db.feedback_stats();
    let expected_epoch =
        epoch_start + total_inserts + chaos_refreshes + chaos_bumps + fb.epoch_bumps;
    assert_eq!(
        db.epoch(),
        expected_epoch,
        "epoch bumps were lost or double-counted (feedback bumps: {})",
        fb.epoch_bumps
    );

    // (3) Feedback really ran, and no merge was torn: every cell is a
    // valid smoothed selectivity.
    assert!(fb.applications > 0, "no feedback was applied");
    assert!(fb.applications <= total_successes);
    assert!(fb.observations >= fb.applications);
    let snap = db.snapshot();
    let memory = snap.catalog().feedback();
    assert_eq!(memory.len() as u64, fb.cells);
    assert!(fb.cells > 0, "memory stayed empty");
    for (key, cell) in memory.iter() {
        assert!(
            cell.sel.is_finite() && cell.sel > 0.0 && cell.sel <= 1.0,
            "torn selectivity cell {key:?}: {cell:?}"
        );
        assert!(cell.n >= 1, "cell {key:?} merged zero observations");
    }

    // (4) Admission ledger still closes.
    let a = server.admission().stats();
    assert_eq!(a.admitted_full + a.admitted_degraded, total_admissions);
    assert_eq!(a.in_flight, 0, "tickets leaked");
}
