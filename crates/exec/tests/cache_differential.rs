//! Differential fuzz suite for the plan cache.
//!
//! Seeded random parameterized queries are executed two ways — through
//! `prepare` / `execute_prepared` (plan cache on) and through a cold
//! parse → lower → optimize → execute oracle that never touches the
//! cache — under both the tuple and the vectorized batch engine. All
//! four paths must produce identical row *multisets*, and the identical
//! row *sequence* whenever the query carries an ORDER BY.
//!
//! Each query runs with several independently drawn parameter vectors,
//! so after the first (miss) every execution of a shape must be a warm
//! hit that skips the optimizer entirely (`search: None` — the
//! acceptance check for "warm-cache execution never calls
//! `find_best_plan`").
//!
//! The generator mixes explicit `$n` placeholders with plain literals:
//! the oracle lowers literals as literals while the prepared path
//! auto-parameterizes them, so the suite also differentially tests
//! constant extraction.
//!
//! Case count defaults to 200 and is capped via `CACHE_FUZZ_CASES`
//! (CI sets a smaller value). Failures are *shrunk* by a greedy
//! structural minimizer (the vendored proptest shim does not shrink):
//! predicates, joins, the ORDER BY, and parameter magnitudes are
//! removed or reduced while the failure reproduces, and the minimal
//! SQL + parameter vectors are printed.

mod common;

use common::testkit::{diff_catalog as catalog, sorted_copy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use volcano_core::SearchOptions;
use volcano_exec::{BatchConfig, Database};
use volcano_rel::value::Tuple;
use volcano_rel::{RelModel, RelOptimizer, RelProps, Value};
use volcano_sql::{lower_with_params, parse};

/// Columns the generator may filter on: (qualified name, table depth
/// needed, value range for parameter draws).
const FILTER_COLS: &[(&str, usize, i64)] = &[
    ("emp.id", 1, 2000),
    ("emp.dept", 1, 20),
    ("emp.salary", 1, 100),
    ("dept.id", 2, 20),
    ("dept.region", 2, 4),
    ("region.id", 3, 4),
];

const OPS: &[&str] = &["<", "<=", "=", ">", ">=", "!="];

/// One filter predicate: index into [`FILTER_COLS`], operator index,
/// and the bound — either an explicit parameter slot or an inline
/// literal (auto-parameterized by `prepare`, kept literal by the
/// oracle).
#[derive(Debug, Clone, PartialEq)]
struct FilterSpec {
    col: usize,
    op: usize,
    literal: bool,
}

/// A generated query plus the parameter vectors to run it with. Values
/// are stored positionally for *all* filters; literal filters splice
/// theirs into the SQL text instead of the parameter vector.
#[derive(Debug, Clone, PartialEq)]
struct Case {
    /// 1 = emp; 2 = emp ⋈ dept; 3 = emp ⋈ dept ⋈ region.
    tables: usize,
    filters: Vec<FilterSpec>,
    order_by: bool,
    /// One value per filter, per run.
    value_sets: Vec<Vec<i64>>,
}

impl Case {
    /// Render to SQL, splicing literal filter values from `values`.
    /// Explicit filters get `$0..` slots in filter order.
    fn sql(&self, values: &[i64]) -> String {
        let mut from = vec!["emp"];
        let mut joins: Vec<String> = Vec::new();
        if self.tables >= 2 {
            from.push("dept");
            joins.push("emp.dept = dept.id".to_string());
        }
        if self.tables >= 3 {
            from.push("region");
            joins.push("dept.region = region.id".to_string());
        }
        let mut conds = joins;
        let mut slot = 0;
        for (f, v) in self.filters.iter().zip(values) {
            let (col, _, _) = FILTER_COLS[f.col];
            let op = OPS[f.op];
            if f.literal {
                conds.push(format!("{col} {op} {v}"));
            } else {
                conds.push(format!("{col} {op} ${slot}"));
                slot += 1;
            }
        }
        let mut sql = format!("SELECT emp.id FROM {}", from.join(", "));
        if !conds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conds.join(" AND "));
        }
        if self.order_by {
            sql.push_str(" ORDER BY emp.id");
        }
        sql
    }

    /// The user-supplied parameter vector for one run: values of the
    /// non-literal filters, in filter order.
    fn user_params(&self, values: &[i64]) -> Vec<Value> {
        self.filters
            .iter()
            .zip(values)
            .filter(|(f, _)| !f.literal)
            .map(|(_, v)| Value::Int(*v))
            .collect()
    }
}

fn random_case(rng: &mut StdRng) -> Case {
    let tables = rng.gen_range(1usize..=3);
    let n_filters = rng.gen_range(0usize..=3);
    let eligible: Vec<usize> = FILTER_COLS
        .iter()
        .enumerate()
        .filter(|(_, (_, depth, _))| *depth <= tables)
        .map(|(i, _)| i)
        .collect();
    let filters: Vec<FilterSpec> = (0..n_filters)
        .map(|_| FilterSpec {
            col: eligible[rng.gen_range(0..eligible.len())],
            op: rng.gen_range(0..OPS.len()),
            literal: rng.gen_bool(0.3),
        })
        .collect();
    let runs = rng.gen_range(2usize..=3);
    let value_sets = (0..runs)
        .map(|_| {
            filters
                .iter()
                .map(|f| rng.gen_range(0..FILTER_COLS[f.col].2))
                .collect()
        })
        .collect();
    Case {
        tables,
        filters,
        order_by: rng.gen_bool(0.5),
        value_sets,
    }
}

/// The cold, cache-free oracle: parse the literal SQL, lower with the
/// user parameters, optimize from scratch, run the tuple engine.
fn oracle_rows(db: &Database, sql: &str, params: &[Value]) -> Result<Vec<Tuple>, String> {
    let ast = parse(sql).map_err(|e| format!("oracle parse: {e}"))?;
    let mut catalog = (*db.catalog()).clone();
    let q =
        lower_with_params(&ast, &mut catalog, params).map_err(|e| format!("oracle lower: {e}"))?;
    let model = RelModel::with_defaults(catalog.clone());
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.expr);
    let plan = opt
        .find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
        .map_err(|e| format!("oracle optimize: {e}"))?;
    Ok(db.execute(&plan))
}

/// Run every parameter vector of a case through the cached path (both
/// engines) and the oracle; `Err` describes the first divergence.
fn run_case(db: &Database, case: &Case) -> Result<(), String> {
    // Shapes from earlier cases may still be cached; use this case's
    // first run to learn whether its shape is already warm.
    let sql = case.sql(&case.value_sets[0]);
    let stmt = db
        .prepare(&sql)
        .map_err(|e| format!("prepare failed: {e}"))?;
    for (run, values) in case.value_sets.iter().enumerate() {
        // Literal filters are baked into the oracle's SQL text but are
        // auto-parameterized slots in the prepared template.
        let run_sql = case.sql(values);
        let params = case.user_params(values);
        let want = oracle_rows(db, &run_sql, &params)?;
        // Re-prepare per run: literal splices change the text, but the
        // shape must be identical, so runs after the first must hit.
        let stmt = if run == 0 {
            stmt.clone()
        } else {
            db.prepare(&run_sql)
                .map_err(|e| format!("re-prepare failed: {e}"))?
        };
        let tuple = db
            .execute_prepared_traced(&stmt, &params, None, None)
            .map_err(|e| format!("run {run}: prepared (tuple) failed: {e}"))?;
        let batch = db
            .execute_prepared_traced(&stmt, &params, Some(BatchConfig::default()), None)
            .map_err(|e| format!("run {run}: prepared (batch) failed: {e}"))?;
        if run > 0 {
            for (engine, out) in [("tuple", &tuple), ("batch", &batch)] {
                if out.cache != "hit" || out.search.is_some() {
                    return Err(format!(
                        "run {run} ({engine}): expected a warm hit with no search, got {} (searched: {})",
                        out.cache,
                        out.search.is_some()
                    ));
                }
            }
        }
        if case.order_by {
            if tuple.rows != want {
                return Err(format!(
                    "run {run}: tuple engine ordered rows diverge from oracle"
                ));
            }
            if batch.rows != want {
                return Err(format!(
                    "run {run}: batch engine ordered rows diverge from oracle"
                ));
            }
        } else {
            let want = sorted_copy(&want);
            if sorted_copy(&tuple.rows) != want {
                return Err(format!(
                    "run {run}: tuple engine multiset diverges from oracle"
                ));
            }
            if sorted_copy(&batch.rows) != want {
                return Err(format!(
                    "run {run}: batch engine multiset diverges from oracle"
                ));
            }
        }
    }
    Ok(())
}

/// Greedy structural shrinking: repeatedly try the simplest reductions
/// and keep any that still fail, until none do.
fn shrink(db: &Database, case: &Case) -> Case {
    let mut best = case.clone();
    loop {
        let mut candidates: Vec<Case> = Vec::new();
        // Drop one filter.
        for i in 0..best.filters.len() {
            let mut c = best.clone();
            c.filters.remove(i);
            for vs in &mut c.value_sets {
                vs.remove(i);
            }
            candidates.push(c);
        }
        // Drop a join level (only if no filter needs it).
        if best.tables > 1 {
            let mut c = best.clone();
            c.tables -= 1;
            if c.filters.iter().all(|f| FILTER_COLS[f.col].1 <= c.tables) {
                candidates.push(c);
            }
        }
        // Drop the ORDER BY.
        if best.order_by {
            let mut c = best.clone();
            c.order_by = false;
            candidates.push(c);
        }
        // Keep only the first failing run.
        if best.value_sets.len() > 1 {
            for keep in 0..best.value_sets.len() {
                let mut c = best.clone();
                c.value_sets = vec![best.value_sets[keep].clone()];
                candidates.push(c);
            }
        }
        // Halve parameter magnitudes.
        if best.value_sets.iter().flatten().any(|v| *v > 1) {
            let mut c = best.clone();
            for vs in &mut c.value_sets {
                for v in vs.iter_mut() {
                    *v /= 2;
                }
            }
            candidates.push(c);
        }
        match candidates
            .into_iter()
            .find(|c| *c != best && run_case(db, c).is_err())
        {
            Some(simpler) => best = simpler,
            None => return best,
        }
    }
}

fn fuzz_cases() -> usize {
    std::env::var("CACHE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

#[test]
fn cached_execution_is_indistinguishable_from_cold_planning() {
    let db = Database::in_memory(catalog());
    db.generate(42);
    let cases = fuzz_cases();
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    for i in 0..cases {
        let case = random_case(&mut rng);
        if let Err(msg) = run_case(&db, &case) {
            let minimal = shrink(&db, &case);
            let err = run_case(&db, &minimal).expect_err("shrunk case must still fail");
            panic!(
                "case {i}/{cases} failed: {msg}\n\
                 minimal reproduction:\n  sql: {}\n  runs: {:?}\n  error: {err}",
                minimal.sql(&minimal.value_sets[0]),
                minimal
                    .value_sets
                    .iter()
                    .map(|vs| minimal.user_params(vs))
                    .collect::<Vec<_>>(),
            );
        }
    }
    // The run must have exercised the cache for real: every case does
    // at least one warm execution per engine.
    let stats = db.plan_cache().stats();
    assert!(stats.hits > cases as u64, "{stats:?}");
    assert_eq!(
        stats.lookups,
        stats.hits + stats.misses + stats.invalidations
    );
}

/// The same differential, pinned to a handful of hand-written queries
/// that cover every operator family the generator can emit — a fast,
/// deterministic floor under the randomized sweep.
#[test]
fn pinned_shapes_agree_across_all_paths() {
    let db = Database::in_memory(catalog());
    db.generate(7);
    let pinned = [
        Case {
            tables: 1,
            filters: vec![],
            order_by: true,
            value_sets: vec![vec![], vec![]],
        },
        Case {
            tables: 1,
            filters: vec![
                FilterSpec {
                    col: 2,
                    op: 0,
                    literal: false,
                },
                FilterSpec {
                    col: 1,
                    op: 2,
                    literal: true,
                },
            ],
            order_by: true,
            value_sets: vec![vec![50, 3], vec![10, 7], vec![99, 0]],
        },
        Case {
            tables: 3,
            filters: vec![
                FilterSpec {
                    col: 2,
                    op: 0,
                    literal: false,
                },
                FilterSpec {
                    col: 4,
                    op: 2,
                    literal: false,
                },
            ],
            order_by: false,
            value_sets: vec![vec![60, 2], vec![30, 1]],
        },
    ];
    for (i, case) in pinned.iter().enumerate() {
        if let Err(msg) = run_case(&db, case) {
            panic!(
                "pinned case {i} failed: {msg}\nsql: {}",
                case.sql(&case.value_sets[0])
            );
        }
    }
}
