//! The anytime guarantee end to end: trip the budget mid-search on the
//! paper's fig4 8-relation join chain, then actually *execute* the
//! degraded plan and compare its rows against the logical-algebra oracle.

use std::time::{Duration, Instant};

use volcano_core::{BudgetOutcome, PhysicalProps, SearchBudget, SearchOptions, TripReason};
use volcano_exec::{assert_same_rows, evaluate_logical, Database};
use volcano_rel::builder::join;
use volcano_rel::{
    Catalog, ColumnDef, JoinPred, QueryBuilder, RelExpr, RelModel, RelModelOptions, RelOptimizer,
    RelProps, Value,
};

/// Tiny cardinalities with sparse join keys so the naive oracle stays
/// cheap (an n-way chain join yields a few dozen rows, not millions);
/// 8 relations still gives a search space large enough for budgets to
/// trip mid-search, since goal counts are data-independent.
fn chain_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 0..n {
        c.add_table(
            &format!("t{i}"),
            8.0 + i as f64,
            vec![ColumnDef::int("a", 6.0), ColumnDef::int("b", 6.0)],
        );
    }
    c
}

fn chain_query(model: &RelModel, n: usize) -> RelExpr {
    let q = QueryBuilder::new(model.catalog());
    let mut e = q.scan("t0");
    for i in 1..n {
        e = join(
            e,
            q.scan(&format!("t{i}")),
            JoinPred::eq(
                q.attr(&format!("t{}", i - 1), "b"),
                q.attr(&format!("t{i}"), "a"),
            ),
        );
    }
    e
}

/// Execute `plan` and compare against the oracle rows for `expr`
/// (realigning columns, since join commutativity permutes the schema).
fn execute_and_check(db: &Database, expr: &RelExpr, plan: &volcano_rel::RelPlan) {
    let compiled = volcano_exec::compile(db, plan);
    let phys_schema = compiled.schema.clone();
    let mut op = compiled.operator;
    let got_raw = volcano_exec::collect(op.as_mut());
    let oracle = evaluate_logical(db, expr);
    let positions: Vec<usize> = oracle
        .schema
        .iter()
        .map(|a| {
            phys_schema
                .iter()
                .position(|b| b == a)
                .unwrap_or_else(|| panic!("attr {a:?} missing from physical schema"))
        })
        .collect();
    let got: Vec<Vec<Value>> = got_raw
        .into_iter()
        .map(|t| positions.iter().map(|&i| t[i].clone()).collect())
        .collect();
    assert_same_rows(got, oracle.rows);
}

fn setup(n: usize) -> (Database, RelModel) {
    let catalog = chain_catalog(n);
    let db = Database::in_memory(catalog.clone());
    db.generate(42);
    let model = RelModel::new(catalog, RelModelOptions::paper_fig4());
    (db, model)
}

/// A goal-cap trip on the 8-relation chain: the degraded plan must run on
/// the executor and produce exactly the oracle's rows.
#[test]
fn degraded_plan_executes_correctly() {
    let n = 8;
    let (db, model) = setup(n);
    let expr = chain_query(&model, n);

    let opts = SearchOptions {
        budget: SearchBudget::default().with_max_goals(10),
        ..SearchOptions::default()
    };
    let mut opt = RelOptimizer::new(&model, opts);
    let root = opt.insert_tree(&expr);
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    assert_eq!(
        opt.stats().outcome,
        BudgetOutcome::Degraded(TripReason::GoalLimit),
        "a 10-goal cap must trip on an 8-relation chain"
    );
    execute_and_check(&db, &expr, &plan);
}

/// A wall-clock deadline trip: the optimizer returns within the deadline
/// plus 50 ms, reports `Degraded(deadline)`, and the plan still executes
/// to the oracle's rows.
#[test]
fn deadline_trip_honored_and_plan_executes() {
    let n = 8;
    let (db, model) = setup(n);
    let expr = chain_query(&model, n);

    let deadline = Duration::from_millis(10);
    let opts = SearchOptions {
        budget: SearchBudget::default().with_deadline(deadline),
        ..SearchOptions::default()
    };
    let mut opt = RelOptimizer::new(&model, opts);
    let root = opt.insert_tree(&expr);
    let start = Instant::now();
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    let took = start.elapsed();
    if opt.stats().outcome.is_degraded() {
        assert_eq!(
            opt.stats().outcome,
            BudgetOutcome::Degraded(TripReason::Deadline)
        );
        assert!(
            took < deadline + Duration::from_millis(50),
            "deadline {deadline:?} overshot: returned after {took:?}"
        );
    }
    execute_and_check(&db, &expr, &plan);
}

/// The degraded plan's cost is an upper bound: never cheaper than the
/// exhaustive optimum on the same query (checked on a 6-relation chain,
/// where the exhaustive baseline is still fast).
#[test]
fn degraded_cost_upper_bounds_exhaustive_optimum() {
    let n = 6;
    let (db, model) = setup(n);
    let expr = chain_query(&model, n);

    let mut exhaustive = RelOptimizer::new(&model, SearchOptions::default());
    let eroot = exhaustive.insert_tree(&expr);
    let best = exhaustive
        .find_best_plan(eroot, RelProps::any(), None)
        .unwrap();

    let opts = SearchOptions {
        budget: SearchBudget::default().with_max_goals(6),
        ..SearchOptions::default()
    };
    let mut budgeted = RelOptimizer::new(&model, opts);
    let broot = budgeted.insert_tree(&expr);
    let plan = budgeted
        .find_best_plan(broot, RelProps::any(), None)
        .unwrap();

    assert!(budgeted.stats().outcome.is_degraded());
    assert!(
        plan.cost.total() + 1e-6 >= best.cost.total(),
        "degraded plan ({}) beat the exhaustive optimum ({})",
        plan.cost,
        best.cost
    );
    // Both are valid executable plans over the same data.
    execute_and_check(&db, &expr, &plan);
    execute_and_check(&db, &expr, &best);
}
