//! Concurrency stress test for the plan cache.
//!
//! Worker threads hammer `execute_prepared` on a small set of
//! overlapping query shapes (so they race on the same cache entries and
//! shards) while a chaos thread continuously bumps the stats epoch and
//! flips cache capacity — driving the hit / revalidate / invalidate
//! paths concurrently. The suite must finish without panics or
//! deadlocks, every execution must return the correct rows, and the
//! cache counters must reconcile exactly:
//! `hits + misses + invalidations == lookups`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use volcano_exec::Database;
use volcano_rel::value::Tuple;
use volcano_rel::{Catalog, ColumnDef, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        500.0,
        vec![
            ColumnDef::int("id", 500.0),
            ColumnDef::int("dept", 10.0),
            ColumnDef::int("salary", 50.0),
        ],
    );
    c.add_table("dept", 10.0, vec![ColumnDef::int("id", 10.0)]);
    c
}

const SHAPES: &[&str] = &[
    "SELECT emp.id FROM emp WHERE emp.salary < $0 ORDER BY emp.id",
    "SELECT emp.id FROM emp WHERE emp.salary >= $0",
    "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id AND emp.salary < $0",
    "SELECT emp.dept, COUNT(*) FROM emp GROUP BY emp.dept ORDER BY emp.dept",
    "SELECT dept.id FROM dept WHERE dept.id < $0 ORDER BY dept.id",
    "SELECT emp.id FROM emp WHERE emp.dept = $0 ORDER BY emp.id",
];

const THREADS: usize = 4;
const ITERS_PER_THREAD: usize = 120;

#[test]
fn concurrent_prepared_executions_reconcile() {
    let db = Database::in_memory(catalog());
    db.generate(23);
    let stmts: Vec<_> = SHAPES
        .iter()
        .map(|s| db.prepare(s).expect("prepare"))
        .collect();

    // Golden answers per (shape, param), computed single-threaded up
    // front. Statistics never change in this test (the chaos thread
    // bumps the raw epoch only), so plans may be re-optimized but the
    // answers must not move.
    let param_space: Vec<i64> = vec![5, 20, 45];
    let mut golden: Vec<Vec<Vec<Tuple>>> = Vec::new();
    for stmt in &stmts {
        let mut per_param = Vec::new();
        for p in &param_space {
            let params: Vec<Value> = (0..stmt.param_count()).map(|_| Value::Int(*p)).collect();
            let mut rows = db
                .execute_prepared(stmt, &params, None)
                .expect("golden run");
            rows.sort();
            per_param.push(rows);
        }
        golden.push(per_param);
    }
    db.plan_cache().clear();

    let stop = AtomicBool::new(false);
    let executions = AtomicU64::new(0);
    let baseline = db.plan_cache().stats();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = &db;
            let stmts = &stmts;
            let golden = &golden;
            let param_space = &param_space;
            let executions = &executions;
            scope.spawn(move || {
                // Cheap deterministic per-thread sequence; overlapping
                // shapes across threads is the point.
                for i in 0..ITERS_PER_THREAD {
                    let s = (i * 7 + t * 3) % stmts.len();
                    let p = (i + t) % param_space.len();
                    let stmt = &stmts[s];
                    let params: Vec<Value> = (0..stmt.param_count())
                        .map(|_| Value::Int(param_space[p]))
                        .collect();
                    let mut rows = db
                        .execute_prepared(stmt, &params, None)
                        .expect("concurrent execution");
                    rows.sort();
                    assert_eq!(
                        rows, golden[s][p],
                        "thread {t} iter {i}: shape {s} param {p} returned wrong rows"
                    );
                    executions.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Chaos thread: epoch bumps force constant re-validation;
        // capacity flips force eviction churn.
        let db = &db;
        let stop = &stop;
        scope.spawn(move || {
            let mut cap = 64usize;
            while !stop.load(Ordering::Relaxed) {
                db.bump_epoch();
                cap = if cap == 64 { 8 } else { 64 };
                db.set_plan_cache_capacity(cap);
                std::thread::yield_now();
            }
        });
        // Watch the execution counter, then stop the chaos thread so
        // the scope's implicit join can't deadlock on it.
        while executions.load(Ordering::Relaxed) < (THREADS * ITERS_PER_THREAD) as u64 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let total = THREADS as u64 * ITERS_PER_THREAD as u64;
    assert_eq!(executions.load(Ordering::Relaxed), total);

    // Counters reconcile exactly: every execution performed exactly one
    // lookup, and every lookup resolved to exactly one of the three
    // outcomes. No counts were lost to races.
    let s = db.plan_cache().stats();
    let lookups = s.lookups - baseline.lookups;
    let hits = s.hits - baseline.hits;
    let misses = s.misses - baseline.misses;
    let invalidations = s.invalidations - baseline.invalidations;
    assert_eq!(lookups, total, "one lookup per execution");
    assert_eq!(
        hits + misses + invalidations,
        lookups,
        "counters must reconcile: {s:?}"
    );
    // The workload genuinely exercised contention: some warm hits and
    // at least one miss per shape must have happened.
    assert!(misses >= SHAPES.len() as u64, "{s:?}");
    assert!(hits > 0, "{s:?}");
}
