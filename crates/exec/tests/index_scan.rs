//! Indexes as order-delivering access paths: the optimizer picks index
//! scans when the order pays, execution honours it, and merge joins run
//! without any sort operator at all.

use volcano_core::{PhysicalProps, SearchOptions};
use volcano_exec::{assert_same_rows, evaluate_logical, Database};
use volcano_rel::builder::join_on;
use volcano_rel::{
    Catalog, ColumnDef, QueryBuilder, RelAlg, RelModel, RelOptimizer, RelPlan, RelProps,
};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "orders",
        3_000.0,
        vec![
            ColumnDef::int("id", 3_000.0),
            ColumnDef::int("cust", 100.0).indexed(),
        ],
    );
    c.add_table(
        "customers",
        2_500.0,
        vec![
            ColumnDef::int("id", 100.0).indexed(),
            ColumnDef::int("region", 10.0),
        ],
    );
    c
}

fn optimize(model: &RelModel, expr: &volcano_rel::RelExpr, props: RelProps) -> RelPlan {
    let mut opt = RelOptimizer::new(model, SearchOptions::default());
    let root = opt.insert_tree(expr);
    opt.find_best_plan(root, props, None).unwrap()
}

#[test]
fn order_by_indexed_column_uses_index_scan_without_sort() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let cust = q.attr("orders", "cust");
    let plan = optimize(&model, &q.scan("orders"), RelProps::sorted(vec![cust]));
    assert!(
        matches!(plan.alg, RelAlg::IndexScan(_, _)),
        "index scan should deliver the order directly:\n{}",
        plan.explain()
    );
    assert_eq!(plan.count_algs(|a| matches!(a, RelAlg::Sort(_))), 0);
}

#[test]
fn unordered_goal_still_prefers_heap_scan() {
    // Without an order to exploit, the cheaper heap scan wins.
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let plan = optimize(&model, &q.scan("orders"), RelProps::any());
    assert!(
        matches!(plan.alg, RelAlg::FileScan(_)),
        "{}",
        plan.explain()
    );
}

#[test]
fn merge_join_over_two_indexes_needs_no_sorts() {
    let model = RelModel::with_defaults(catalog());
    let q = QueryBuilder::new(model.catalog());
    let cust = q.attr("orders", "cust");
    let expr = join_on(
        q.scan("orders"),
        q.scan("customers"),
        cust,
        q.attr("customers", "id"),
    );
    // Require the join result sorted by customer: both inputs can come
    // pre-sorted from their indexes, so the whole plan is sort-free.
    let plan = optimize(&model, &expr, RelProps::sorted(vec![cust]));
    assert!(
        matches!(plan.alg, RelAlg::MergeJoin(_)),
        "expected a merge join over index scans:\n{}",
        plan.explain()
    );
    assert_eq!(
        plan.count_algs(|a| matches!(a, RelAlg::Sort(_))),
        0,
        "no sorts anywhere:\n{}",
        plan.explain()
    );
    assert_eq!(plan.count_algs(|a| matches!(a, RelAlg::IndexScan(_, _))), 2);
}

#[test]
fn index_plans_execute_correctly_and_in_order() {
    let cat = catalog();
    let db = Database::in_memory(cat.clone());
    db.generate(11);
    let model = RelModel::with_defaults(cat);
    let q = QueryBuilder::new(model.catalog());
    let cust = q.attr("orders", "cust");
    let expr = join_on(
        q.scan("orders"),
        q.scan("customers"),
        cust,
        q.attr("customers", "id"),
    );
    let plan = optimize(&model, &expr, RelProps::sorted(vec![cust]));

    let compiled = volcano_exec::compile(&db, &plan);
    let phys = compiled.schema.clone();
    let mut op = compiled.operator;
    let rows = volcano_exec::collect(op.as_mut());
    // Sorted on orders.cust (position in physical schema).
    let pos = phys.iter().position(|&a| a == cust).unwrap();
    for w in rows.windows(2) {
        assert!(w[0][pos] <= w[1][pos], "join output must be index-ordered");
    }
    // And identical to the oracle.
    let oracle = evaluate_logical(&db, &expr);
    let positions: Vec<usize> = oracle
        .schema
        .iter()
        .map(|a| phys.iter().position(|b| b == a).unwrap())
        .collect();
    let aligned: Vec<_> = rows
        .into_iter()
        .map(|t| positions.iter().map(|&i| t[i].clone()).collect::<Vec<_>>())
        .collect();
    assert_same_rows(aligned, oracle.rows);
}

#[test]
fn index_scan_skips_deleted_rows() {
    let mut c = Catalog::new();
    c.add_table("t", 10.0, vec![ColumnDef::int("k", 10.0).indexed()]);
    let t = c.table_by_name("t").unwrap().id;
    let k = c.attr("t", "k");
    let db = Database::in_memory(c.clone());
    for i in 0..10 {
        db.insert(t, vec![volcano_rel::Value::Int(i)]);
    }
    // Delete some rows straight from the heap (dangling index entries).
    let mut rids = Vec::new();
    db.table(t).scan(|rid, _| rids.push(rid));
    db.table(t).delete(rids[3]);
    db.table(t).delete(rids[7]);

    let model = RelModel::with_defaults(c);
    let q = QueryBuilder::new(model.catalog());
    let plan = optimize(&model, &q.scan("t"), RelProps::sorted(vec![k]));
    let rows = db.execute(&plan);
    assert_eq!(rows.len(), 8, "deleted rows must not resurface");
}
