//! Invalidation property tests: prepared executions interleaved with
//! DDL, data loads, and statistics refreshes.
//!
//! A seeded random schedule of operations runs against one database,
//! and after every step the suite re-checks the cache's safety
//! contract:
//!
//! * **(a) no stale plan over dropped objects** — once a table is
//!   dropped, executing a prepared statement that references it fails
//!   at lowering (name resolution), *before* any cache probe, so a
//!   cached template can never be served for it;
//! * **(b) cold-cache oracle equality** — every successful prepared
//!   execution returns exactly what a from-scratch parse → lower →
//!   optimize → execute under the *current* catalog returns;
//! * **(c) epoch monotonicity** — the stats epoch never decreases, and
//!   strictly increases across inserts, drops, and stats refreshes;
//!   cache counters always reconcile (`hits + misses + invalidations
//!   == lookups`).

use proptest::prelude::*;
use volcano_core::SearchOptions;
use volcano_exec::Database;
use volcano_rel::value::Tuple;
use volcano_rel::{Catalog, ColumnDef, RelModel, RelOptimizer, RelProps, Value};
use volcano_sql::{lower_with_params, parse};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        300.0,
        vec![
            ColumnDef::int("id", 300.0),
            ColumnDef::int("dept", 10.0),
            ColumnDef::int("salary", 50.0),
        ],
    );
    c.add_table("dept", 10.0, vec![ColumnDef::int("id", 10.0)]);
    c
}

/// The prepared workload: statements over emp alone, the join, and
/// dept alone (the last keeps working after `DROP TABLE emp`).
const STATEMENTS: &[&str] = &[
    "SELECT emp.id FROM emp WHERE emp.salary < $0 ORDER BY emp.id",
    "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id AND emp.salary < $0",
    "SELECT dept.id FROM dept WHERE dept.id < $0 ORDER BY dept.id",
    "SELECT emp.dept, COUNT(*) FROM emp GROUP BY emp.dept ORDER BY emp.dept",
];

/// Does a statement reference `emp` (and so must fail once it drops)?
const TOUCHES_EMP: [bool; 4] = [true, true, false, true];

fn oracle_rows(db: &Database, sql: &str, params: &[Value]) -> Result<Vec<Tuple>, String> {
    let ast = parse(sql).map_err(|e| e.to_string())?;
    let mut catalog = (*db.catalog()).clone();
    let q = lower_with_params(&ast, &mut catalog, params).map_err(|e| e.to_string())?;
    let model = RelModel::with_defaults(catalog.clone());
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.expr);
    let plan = opt
        .find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
        .map_err(|e| e.to_string())?;
    Ok(db.execute(&plan))
}

fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("CACHE_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(|n: u32| (n / 4).max(8))
            .unwrap_or(48)
    ))]
    #[test]
    fn interleaved_ddl_never_serves_a_stale_plan(
        ops in proptest::collection::vec((0u8..6, 0i64..50), 6..24)
    ) {
        let db = Database::in_memory(catalog());
        db.generate(17);
        let stmts: Vec<_> = STATEMENTS
            .iter()
            .map(|sql| (sql, db.prepare(sql).expect("prepare")))
            .collect();
        let emp = db.catalog().table_by_name("emp").unwrap().id;
        let mut emp_dropped = false;
        let mut last_epoch = db.epoch();
        let mut next_row = 100_000i64;

        for (op, arg) in ops {
            match op {
                // Execute one of the prepared statements.
                0..=2 => {
                    let idx = (arg as usize) % stmts.len();
                    let (sql, stmt) = &stmts[idx];
                    let params: Vec<Value> = (0..stmt.param_count())
                        .map(|_| Value::Int(arg))
                        .collect();
                    let got = db.execute_prepared(stmt, &params, None);
                    if emp_dropped && TOUCHES_EMP[idx] {
                        // (a) dropped object: must fail at lowering, not
                        // serve a cached plan.
                        prop_assert!(
                            got.is_err(),
                            "{sql}: executed over a dropped table"
                        );
                    } else {
                        let got = got.expect("prepared execution");
                        // (b) equality with the cold oracle under the
                        // *current* catalog.
                        let want = oracle_rows(&db, sql, &params).expect("oracle");
                        prop_assert_eq!(
                            sorted_copy(&got),
                            sorted_copy(&want),
                            "{} with {:?} diverged from cold oracle",
                            sql,
                            params
                        );
                    }
                }
                // Load more rows (bumps the epoch per insert).
                3 => {
                    if !emp_dropped {
                        for i in 0..5 {
                            db.insert(
                                emp,
                                vec![
                                    Value::Int(next_row + i),
                                    Value::Int(arg % 10),
                                    Value::Int(arg),
                                ],
                            );
                        }
                        next_row += 5;
                        prop_assert!(db.epoch() > last_epoch, "inserts must bump the epoch");
                    }
                }
                // Refresh statistics from the stored data.
                4 => {
                    let before = db.epoch();
                    db.refresh_stats();
                    prop_assert!(db.epoch() > before, "refresh_stats must bump the epoch");
                }
                // Drop the emp table (at most once per schedule).
                _ => {
                    if !emp_dropped && arg < 10 {
                        let before = db.epoch();
                        prop_assert!(db.drop_table("emp"));
                        prop_assert!(db.epoch() > before, "DDL must bump the epoch");
                        prop_assert_eq!(db.plan_cache().len(), 0, "drop must clear the cache");
                        emp_dropped = true;
                    }
                }
            }
            // (c) epochs are monotone and counters reconcile, always.
            prop_assert!(db.epoch() >= last_epoch);
            last_epoch = db.epoch();
            let s = db.plan_cache().stats();
            prop_assert_eq!(s.lookups, s.hits + s.misses + s.invalidations);
        }
    }
}

/// Growing a table 10× and refreshing stats must trip the cost-drift
/// guard: the cached template re-estimates far above its recorded cost
/// and the next execution re-optimizes instead of serving it.
#[test]
fn stats_growth_forces_reoptimization() {
    let db = Database::in_memory(catalog());
    db.generate(3);
    let stmt = db
        .prepare("SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id AND emp.salary < $0")
        .unwrap();
    let cold = db
        .execute_prepared_traced(&stmt, &[Value::Int(25)], None, None)
        .unwrap();
    assert_eq!(cold.cache, "miss");

    let emp = db.catalog().table_by_name("emp").unwrap().id;
    for i in 0..3000 {
        db.insert(
            emp,
            vec![Value::Int(1000 + i), Value::Int(i % 10), Value::Int(i % 50)],
        );
    }
    db.refresh_stats();
    assert!(db.catalog().table(emp).card > 3000.0);

    let after = db
        .execute_prepared_traced(&stmt, &[Value::Int(25)], None, None)
        .unwrap();
    assert_eq!(
        after.cache, "invalidated",
        "10x data growth must re-optimize, not serve the stale template"
    );
    assert!(after.search.is_some());
    // The re-optimized entry is current again: next execution hits.
    let warm = db
        .execute_prepared_traced(&stmt, &[Value::Int(25)], None, None)
        .unwrap();
    assert_eq!(warm.cache, "hit");
    assert!(warm.search.is_none());
    let s = db.plan_cache().stats();
    assert_eq!(s.invalidations, 1);
    assert_eq!(s.lookups, s.hits + s.misses + s.invalidations);
}

/// Regression: executing a prepared statement whose table was dropped
/// after `PREPARE` must return a clean [`PrepareError::Lower`] — it
/// used to reach the executor and panic on the missing heap file. The
/// same contract holds one level up, through a serving-layer session.
#[test]
fn stale_prepared_statement_after_drop_errors_cleanly() {
    use volcano_exec::{PrepareError, Server, ServerConfig, SessionError, TrafficClass};

    let db = Database::in_memory(catalog());
    db.generate(23);
    let stmt = db
        .prepare("SELECT emp.id FROM emp WHERE emp.salary < $0")
        .unwrap();
    // Warm the cache so a stale template exists when the table goes.
    db.execute_prepared(&stmt, &[Value::Int(25)], None).unwrap();
    assert!(db.drop_table("emp"));

    let err = db
        .execute_prepared(&stmt, &[Value::Int(25)], None)
        .unwrap_err();
    assert!(
        matches!(err, PrepareError::Lower(_)),
        "expected a lowering error, got {err}"
    );
    // No cache probe happened for the failed execution.
    let s = db.plan_cache().stats();
    assert_eq!(s.lookups, s.hits + s.misses + s.invalidations);

    // Session path: EXECUTE over a statement prepared before the drop.
    let server = Server::new(Database::in_memory(catalog()), ServerConfig::default());
    server.db().generate(23);
    let mut session = server.session(TrafficClass::Interactive);
    session
        .prepare("q", "SELECT emp.id FROM emp WHERE emp.salary < $0")
        .unwrap();
    session.execute("q", &[Value::Int(25)]).unwrap();
    assert!(server.db().drop_table("emp"));
    let err = session.execute("q", &[Value::Int(25)]).unwrap_err();
    assert!(
        matches!(err, SessionError::Prepare(PrepareError::Lower(_))),
        "expected a lowering error through the session, got {err}"
    );
    // Statements over surviving tables keep working in the same session.
    session
        .prepare("d", "SELECT dept.id FROM dept WHERE dept.id < $0")
        .unwrap();
    session.execute("d", &[Value::Int(5)]).unwrap();
}

/// A stats refresh that does not change the numbers keeps cached plans
/// servable: the drift guard revalidates them in place (a hit), and the
/// entry is restamped so later lookups skip the re-estimate.
#[test]
fn unchanged_stats_revalidate_without_reoptimizing() {
    let db = Database::in_memory(catalog());
    db.generate(5);
    // Align the catalog's estimates with the data before caching, so
    // the later refresh is a true no-op.
    db.refresh_stats();
    let stmt = db
        .prepare("SELECT emp.id FROM emp WHERE emp.salary < $0 ORDER BY emp.id")
        .unwrap();
    db.execute_prepared(&stmt, &[Value::Int(30)], None).unwrap();
    db.refresh_stats();
    let out = db
        .execute_prepared_traced(&stmt, &[Value::Int(12)], None, None)
        .unwrap();
    assert_eq!(out.cache, "hit", "unchanged stats must not invalidate");
    assert!(out.search.is_none());
    assert_eq!(db.plan_cache().stats().invalidations, 0);
}
