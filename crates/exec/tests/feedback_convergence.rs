//! Convergence suite for feedback-driven adaptive re-optimization.
//!
//! The scenario the optimizer paper's static cost model cannot win: a
//! Zipf-skewed `status` column whose catalog statistics claim 100
//! evenly-likely values. The equality predicate on the hot key is
//! estimated at 1% selectivity but actually passes the majority of the
//! table, so the first optimization caches a plan built for a tiny join
//! input. With `SET FEEDBACK ON`, executing that plan harvests the
//! *actual* per-term selectivity into the catalog's memory, bumps the
//! stats epoch (the merge is material), and the next cache probe
//! re-costs the entry under observed statistics — the drift guard trips,
//! the entry is evicted, and re-optimization under the memory-aware
//! model lands on the oracle plan.
//!
//! The oracle is computed by *forced-stats* optimization: a fresh
//! database whose selectivity memory is primed directly with the true
//! hot-key fraction, so its very first plan is what a clairvoyant
//! optimizer would pick. Convergence must happen within K = 5
//! executions on every engine (tuple, batch, fused), results must stay
//! the same multiset throughout, and with feedback OFF the plan must
//! never move — the ablation that pins "feedback off reproduces today's
//! behaviour bit-identically" at the executor level.

mod common;

use std::sync::Mutex;

use common::testkit::{assert_same_multiset, converges_within, sorted_copy, zipf_keys};
use volcano_core::trace::{TraceEvent, Tracer};
use volcano_exec::{BatchConfig, Database, Engine, ExecOptions};
use volcano_rel::value::Tuple;
use volcano_rel::{explain_plan, Catalog, Cmp, CmpOp, ColumnDef, Observation, RelPlan, Value};

/// The convergence bar: the oracle plan must be reached within this
/// many executions of the prepared statement.
const K: usize = 5;

/// Rows in `emp`; matches the catalog's claimed cardinality so the
/// predicate selectivity is the only statistic the estimates get wrong.
const EMP_ROWS: usize = 2000;

/// The parameterized probe query: an equality on the skewed column
/// feeding a join. The `$0` slot is what the selectivity memory keys
/// on, so observations generalize across bound values.
const SQL: &str = "SELECT emp.id FROM emp, dept \
                   WHERE emp.dept = dept.id AND emp.status = $0 \
                   ORDER BY emp.id";

/// Statistics claim uniform: `status` spreads over 100 distinct values,
/// `dept` is a 1000-row dimension table.
fn feedback_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        EMP_ROWS as f64,
        vec![
            ColumnDef::int("id", EMP_ROWS as f64),
            ColumnDef::int("status", 100.0),
            ColumnDef::int("dept", 20.0),
        ],
    );
    c.add_table(
        "dept",
        1000.0,
        vec![ColumnDef::int("id", 1000.0), ColumnDef::int("region", 4.0)],
    );
    c
}

/// A populated database plus the *true* selectivity of `status = 0`:
/// `status` is drawn Zipf(2.0) over 100 keys, so the hot key absorbs
/// ~60% of the rows where the catalog claims 1%.
fn populated_db() -> (Database, f64) {
    let catalog = feedback_catalog();
    let emp = catalog.table_by_name("emp").unwrap().id;
    let dept = catalog.table_by_name("dept").unwrap().id;
    let db = Database::in_memory(catalog);
    let status = zipf_keys(EMP_ROWS, 100, 2.0, 42);
    let hot = status.iter().filter(|&&s| s == 0).count();
    for (i, &s) in status.iter().enumerate() {
        db.insert(
            emp,
            vec![
                Value::Int(i as i64),
                Value::Int(s),
                Value::Int((i % 20) as i64),
            ],
        );
    }
    for i in 0..1000i64 {
        db.insert(dept, vec![Value::Int(i), Value::Int(i % 4)]);
    }
    let sel = hot as f64 / EMP_ROWS as f64;
    assert!(sel > 0.5, "Zipf(2.0) hot key must dominate, got {sel}");
    (db, sel)
}

fn engines() -> [Engine; 3] {
    [
        Engine::Tuple,
        Engine::Batch(BatchConfig::default()),
        Engine::Fused(BatchConfig::default()),
    ]
}

fn explain(db: &Database, plan: &RelPlan) -> String {
    explain_plan(db.snapshot().catalog(), plan)
}

/// The oracle plan for `SQL` bound to the hot key, by forced-stats
/// optimization: prime a fresh database's selectivity memory with the
/// true hot-key fraction and take the first plan it produces.
fn oracle_explain(engine: Engine, true_sel: f64) -> String {
    let (db, _) = populated_db();
    let catalog = db.snapshot().catalog().clone();
    let status = catalog.table_by_name("emp").unwrap().columns[1].attr;
    let key = volcano_rel::term_key(&Cmp::with_param(status, CmpOp::Eq, 0i64, 0));
    db.apply_feedback(&[Observation {
        key,
        observed: true_sel,
        estimated: 0.01,
    }]);
    let stmt = db.prepare(SQL).unwrap();
    let opts = ExecOptions::new().with_executor(engine);
    let out = db
        .execute_prepared_opts(&stmt, &[Value::Int(0)], &opts, None)
        .unwrap();
    explain(&db, &out.plan)
}

/// Collects [`TraceEvent::FeedbackApplied`] payloads and plan-cache
/// lookup outcomes.
#[derive(Default)]
struct FeedbackTracer {
    applied: Mutex<Vec<(u64, bool)>>,
    lookups: Mutex<Vec<&'static str>>,
}

impl Tracer for FeedbackTracer {
    fn event(&self, e: TraceEvent) {
        match e {
            TraceEvent::FeedbackApplied {
                observations,
                epoch_bumped,
            } => self
                .applied
                .lock()
                .unwrap()
                .push((observations, epoch_bumped)),
            TraceEvent::PlanCacheLookup { outcome, .. } => {
                self.lookups.lock().unwrap().push(outcome)
            }
            _ => {}
        }
    }

    fn enabled(&self) -> bool {
        true
    }
}

/// The harness: execute the prepared statement under `engine` with
/// feedback on, asserting (1) the first plan differs from the oracle,
/// (2) the oracle plan is reached within K executions, (3) the row
/// multiset never changes, (4) the trace shows feedback being applied
/// and the cache being invalidated (not silently re-missed).
fn assert_converges(engine: Engine) {
    let (db, true_sel) = populated_db();
    let oracle = oracle_explain(engine, true_sel);
    db.set_feedback_enabled(true);
    let stmt = db.prepare(SQL).unwrap();
    let opts = ExecOptions::new().with_executor(engine);
    let tracer = FeedbackTracer::default();
    let tag = format!("engine {}", engine.label());

    let first = db
        .execute_prepared_opts(&stmt, &[Value::Int(0)], &opts, Some(&tracer))
        .unwrap();
    let wrong = explain(&db, &first.plan);
    assert_ne!(
        wrong, oracle,
        "{tag}: static estimates must pick a different plan than the oracle \
         or this suite tests nothing"
    );
    let expected: Vec<Tuple> = sorted_copy(&first.rows);
    assert!(!expected.is_empty(), "{tag}: hot key must produce rows");

    let converged = converges_within(K, |i| {
        let out = db
            .execute_prepared_opts(&stmt, &[Value::Int(0)], &opts, Some(&tracer))
            .unwrap();
        assert_same_multiset(&expected, &out.rows, &format!("{tag} execution {i}"));
        explain(&db, &out.plan) == oracle
    });
    assert!(
        converged.is_some(),
        "{tag}: did not converge to the oracle plan within {K} executions;\n\
         wrong plan:\n{wrong}\noracle plan:\n{oracle}"
    );

    let applied = tracer.applied.lock().unwrap();
    assert!(
        applied.iter().all(|&(n, _)| n > 0),
        "{tag}: every feedback application must carry observations: {applied:?}"
    );
    assert!(
        applied.iter().any(|&(_, bumped)| bumped),
        "{tag}: a material merge must bump the epoch: {applied:?}"
    );
    let lookups = tracer.lookups.lock().unwrap();
    assert!(
        lookups.contains(&"invalidated"),
        "{tag}: convergence must go through drift invalidation, got {lookups:?}"
    );
    let stats = db.feedback_stats();
    assert!(stats.enabled && stats.cells > 0 && stats.epoch_bumps > 0);
}

#[test]
fn tuple_engine_converges_to_the_oracle_plan() {
    assert_converges(Engine::Tuple);
}

#[test]
fn batch_engine_converges_to_the_oracle_plan() {
    assert_converges(Engine::Batch(BatchConfig::default()));
}

#[test]
fn fused_engine_converges_to_the_oracle_plan() {
    assert_converges(Engine::Fused(BatchConfig::default()));
}

/// Ablation: with feedback OFF (the default), the same workload never
/// moves the plan, never touches the selectivity memory, and never
/// bumps the epoch — executor-level proof that feedback off reproduces
/// the static optimizer's behaviour bit-identically. (The estimator
/// identity itself — empty memory ≡ static formulas to the bit — is
/// pinned by the property suite in `volcano-rel`.)
#[test]
fn feedback_off_never_moves_the_plan() {
    for engine in engines() {
        let (db, _) = populated_db();
        let stmt = db.prepare(SQL).unwrap();
        let opts = ExecOptions::new().with_executor(engine);
        let epoch = db.epoch();
        let first = db
            .execute_prepared_opts(&stmt, &[Value::Int(0)], &opts, None)
            .unwrap();
        let baseline = explain(&db, &first.plan);
        for i in 0..K {
            let out = db
                .execute_prepared_opts(&stmt, &[Value::Int(0)], &opts, None)
                .unwrap();
            assert_eq!(out.cache, "hit", "engine {} exec {i}", engine.label());
            assert_eq!(
                explain(&db, &out.plan),
                baseline,
                "engine {} exec {i}: plan moved with feedback off",
                engine.label()
            );
        }
        assert_eq!(db.epoch(), epoch, "feedback off must not bump the epoch");
        let stats = db.feedback_stats();
        assert_eq!(
            (stats.observations, stats.applications, stats.cells),
            (0, 0, 0),
            "feedback off must leave the memory untouched"
        );
    }
}

/// The first feedback-ON execution plans under an *empty* memory, so
/// its plan is identical to the feedback-OFF plan — turning the switch
/// on changes nothing until an observation has actually been merged.
#[test]
fn first_feedback_execution_plans_like_feedback_off() {
    for engine in engines() {
        let (db_off, _) = populated_db();
        let (db_on, _) = populated_db();
        db_on.set_feedback_enabled(true);
        let opts = ExecOptions::new().with_executor(engine);
        let off = db_off
            .execute_prepared_opts(&db_off.prepare(SQL).unwrap(), &[Value::Int(0)], &opts, None)
            .unwrap();
        let on = db_on
            .execute_prepared_opts(&db_on.prepare(SQL).unwrap(), &[Value::Int(0)], &opts, None)
            .unwrap();
        assert_eq!(
            explain(&db_off, &off.plan),
            explain(&db_on, &on.plan),
            "engine {}: empty memory must plan bit-identically",
            engine.label()
        );
        assert_same_multiset(&off.rows, &on.rows, engine.label());
    }
}

/// Feedback persists: exporting the converged memory and importing it
/// into a cold database makes its *first* optimization pick the oracle
/// plan — the restart story for adaptive statistics.
#[test]
fn exported_memory_primes_a_cold_database() {
    let engine = Engine::Tuple;
    let (db, true_sel) = populated_db();
    let oracle = oracle_explain(engine, true_sel);
    db.set_feedback_enabled(true);
    let stmt = db.prepare(SQL).unwrap();
    let opts = ExecOptions::new().with_executor(engine);
    let converged = converges_within(K + 1, |_| {
        let out = db
            .execute_prepared_opts(&stmt, &[Value::Int(0)], &opts, None)
            .unwrap();
        explain(&db, &out.plan) == oracle
    });
    assert!(converged.is_some());

    let bytes = db.export_feedback();
    let (cold, _) = populated_db();
    assert!(cold.import_feedback(&bytes) > 0);
    let out = cold
        .execute_prepared_opts(&cold.prepare(SQL).unwrap(), &[Value::Int(0)], &opts, None)
        .unwrap();
    assert_eq!(
        explain(&cold, &out.plan),
        oracle,
        "imported memory must produce the oracle plan on the first try"
    );
}
