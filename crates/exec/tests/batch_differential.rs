//! Differential tests: the vectorized batch engine must be observably
//! identical to the tuple engine on every plan the optimizer produces.
//!
//! Every SQL golden-plan query and a sweep of fig4-style generated
//! select–join queries are optimized once (with a serial-vs-parallel
//! exploration drift guard: both must pick the same plan) and executed
//! under the tuple engine and under the batch engine at batch sizes 1,
//! 4, and 1024. The engines must produce identical *multisets* of rows
//! always, and the identical row *sequence* whenever the root plan
//! carries a sort property. Batch size 1 is the degenerate case whose
//! behaviour must collapse to tuple-at-a-time semantics.
//!
//! The catalog, query list, and comparison discipline live in the
//! shared [`common::testkit`] so the parallel and cache suites compare
//! against the same goldens.

mod common;

use common::testkit::{assert_same_multiset, optimize_drift_guarded};
use volcano_bench::workload::{generate_query, WorkloadConfig};
use volcano_core::PhysicalProps;
use volcano_exec::{BatchConfig, Database};
use volcano_rel::{RelModel, RelModelOptions, RelPlan, RelProps};
use volcano_sql::plan_query;

const BATCH_SIZES: [usize; 3] = [1, 4, 1024];

/// Execute `plan` under both engines and every batch size; assert the
/// outputs agree.
fn assert_engines_agree(db: &Database, plan: &RelPlan, tag: &str) {
    let tuple_rows = db.execute(plan);
    let ordered = !plan.delivered.sort.is_empty();
    for bs in BATCH_SIZES {
        let batch_rows = db.execute_batch(plan, BatchConfig::with_batch_size(bs));
        if ordered {
            assert_eq!(
                tuple_rows, batch_rows,
                "{tag}: batch_size={bs}: ordered output diverged"
            );
        } else {
            assert_same_multiset(&tuple_rows, &batch_rows, &format!("{tag}: batch_size={bs}"));
        }
    }
}

// ---------------------------------------------------------------------
// SQL golden-plan queries (same catalog and query list as the golden
// plan and hotpath differential suites).
// ---------------------------------------------------------------------

#[test]
fn sql_golden_queries_agree_across_engines() {
    for sql in common::testkit::SQL_QUERIES {
        let mut catalog = common::testkit::diff_catalog();
        let q = plan_query(sql, &mut catalog).expect("query must parse");
        let model = RelModel::with_defaults(catalog.clone());
        let plan = optimize_drift_guarded(
            &model,
            &q.expr,
            RelProps::sorted(q.order_by.clone()),
            &catalog,
            sql,
        );
        let db = Database::in_memory(catalog);
        db.generate(42);
        assert_engines_agree(&db, &plan, sql);
    }
}

// ---------------------------------------------------------------------
// fig4-style generated select–join queries (paper §4.2 workload).
// ---------------------------------------------------------------------

#[test]
fn fig4_generated_plans_agree_across_engines() {
    for n in [2usize, 3] {
        for seed in 0..3u64 {
            let q = generate_query(&WorkloadConfig::relations(n), seed);
            let model = RelModel::new(q.catalog.clone(), RelModelOptions::paper_fig4());
            let tag = format!("fig4 n={n} seed={seed}");
            let plan = optimize_drift_guarded(&model, &q.expr, RelProps::any(), &q.catalog, &tag);
            let db = Database::in_memory(q.catalog.clone());
            db.generate(seed);
            assert_engines_agree(&db, &plan, &tag);
        }
    }
}

/// The same fig4 workload, but demanding a sorted result: the root plan
/// carries a sort property, so the engines must agree on exact row
/// order (not just the multiset).
#[test]
fn fig4_sorted_goal_agrees_across_engines() {
    for seed in 0..2u64 {
        let q = generate_query(&WorkloadConfig::relations(2), seed);
        // Sort on the first output attribute of the join's left input.
        let table = q.catalog.table_by_name("t0").unwrap();
        let key = table.columns[0].attr;
        let model = RelModel::new(q.catalog.clone(), RelModelOptions::paper_fig4());
        let tag = format!("fig4-sorted seed={seed}");
        let plan = optimize_drift_guarded(
            &model,
            &q.expr,
            RelProps::sorted(vec![key]),
            &q.catalog,
            &tag,
        );
        assert!(
            !plan.delivered.sort.is_empty(),
            "{tag}: expected a sort-delivering plan"
        );
        let db = Database::in_memory(q.catalog.clone());
        db.generate(seed);
        assert_engines_agree(&db, &plan, &tag);
    }
}
