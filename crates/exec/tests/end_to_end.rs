//! The strongest correctness test in the repository: generate data,
//! optimize a logical query, execute the chosen physical plan, and
//! compare the result against the naive logical-algebra oracle — whatever
//! plan the optimizer picked.

use volcano_core::{PhysicalProps, SearchOptions};
use volcano_exec::{assert_same_rows, evaluate_logical, Database};
use volcano_rel::builder::{aggregate, difference, intersect, join_on, project, select_one, union};
use volcano_rel::{
    AggFunc, AggSpec, Catalog, Cmp, ColumnDef, QueryBuilder, RelExpr, RelModel, RelModelOptions,
    RelOptimizer, RelProps, Value,
};

fn small_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        200.0,
        vec![
            ColumnDef::int("id", 200.0),
            ColumnDef::int("dept", 10.0),
            ColumnDef::int("salary", 50.0),
        ],
    );
    c.add_table(
        "dept",
        10.0,
        vec![ColumnDef::int("id", 10.0), ColumnDef::int("region", 3.0)],
    );
    c.add_table(
        "region",
        3.0,
        vec![ColumnDef::int("id", 3.0), ColumnDef::str("name", 8, 3.0)],
    );
    c
}

/// Optimize `expr` for `props` and execute; compare with the oracle.
/// Join commutativity permutes output columns, so the executed rows are
/// re-aligned to the logical expression's schema before comparison.
fn check(db: &Database, model: &RelModel, expr: &RelExpr, props: RelProps) {
    let mut opt = RelOptimizer::new(model, SearchOptions::default());
    let root = opt.insert_tree(expr);
    let plan = opt.find_best_plan(root, props, None).expect("plan");
    let compiled = volcano_exec::compile(db, &plan);
    let phys_schema = compiled.schema.clone();
    let mut op = compiled.operator;
    let got_raw = volcano_exec::collect(op.as_mut());
    let oracle = evaluate_logical(db, expr);
    let positions: Vec<usize> = oracle
        .schema
        .iter()
        .map(|a| {
            phys_schema
                .iter()
                .position(|b| b == a)
                .unwrap_or_else(|| panic!("attr {a:?} missing from physical schema"))
        })
        .collect();
    let got: Vec<Vec<Value>> = got_raw
        .into_iter()
        .map(|t| positions.iter().map(|&i| t[i].clone()).collect())
        .collect();
    assert_same_rows(got, oracle.rows);
}

fn setup() -> (Database, RelModel) {
    let catalog = small_catalog();
    let db = Database::in_memory(catalog.clone());
    db.generate(42);
    let model = RelModel::with_defaults(catalog);
    (db, model)
}

#[test]
fn scan_and_filter() {
    let (db, model) = setup();
    let q = QueryBuilder::new(model.catalog());
    check(&db, &model, &q.scan("emp"), RelProps::any());
    check(
        &db,
        &model,
        &select_one(q.scan("emp"), Cmp::eq(q.attr("emp", "dept"), 3i64)),
        RelProps::any(),
    );
    check(
        &db,
        &model,
        &select_one(q.scan("emp"), Cmp::lt(q.attr("emp", "salary"), 25i64)),
        RelProps::any(),
    );
}

#[test]
fn two_way_join_all_strategies() {
    let (db, model) = setup();
    let q = QueryBuilder::new(model.catalog());
    let expr = join_on(
        q.scan("emp"),
        q.scan("dept"),
        q.attr("emp", "dept"),
        q.attr("dept", "id"),
    );
    // Unordered goal (hash join territory).
    check(&db, &model, &expr, RelProps::any());
    // Ordered goal (merge join or sort-on-top).
    check(
        &db,
        &model,
        &expr,
        RelProps::sorted(vec![q.attr("emp", "dept")]),
    );
}

#[test]
fn sorted_output_is_actually_sorted() {
    let (db, model) = setup();
    let q = QueryBuilder::new(model.catalog());
    let key = q.attr("emp", "salary");
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.scan("emp"));
    let plan = opt
        .find_best_plan(root, RelProps::sorted(vec![key]), None)
        .unwrap();
    let rows = db.execute(&plan);
    assert_eq!(rows.len(), 200);
    // salary is column 2.
    for w in rows.windows(2) {
        assert!(w[0][2] <= w[1][2], "output not sorted");
    }
}

#[test]
fn three_way_join_with_selections() {
    let (db, model) = setup();
    let q = QueryBuilder::new(model.catalog());
    let expr = join_on(
        join_on(
            select_one(q.scan("emp"), Cmp::lt(q.attr("emp", "salary"), 30i64)),
            q.scan("dept"),
            q.attr("emp", "dept"),
            q.attr("dept", "id"),
        ),
        q.scan("region"),
        q.attr("dept", "region"),
        q.attr("region", "id"),
    );
    check(&db, &model, &expr, RelProps::any());
}

#[test]
fn projection() {
    let (db, model) = setup();
    let q = QueryBuilder::new(model.catalog());
    let expr = project(
        q.scan("emp"),
        vec![q.attr("emp", "dept"), q.attr("emp", "id")],
    );
    check(&db, &model, &expr, RelProps::any());
}

#[test]
fn set_operations() {
    let mut c = Catalog::new();
    c.add_table("r", 80.0, vec![ColumnDef::int("x", 10.0)]);
    c.add_table("s", 60.0, vec![ColumnDef::int("x", 10.0)]);
    let db = Database::in_memory(c.clone());
    db.generate(7);
    let model = RelModel::with_defaults(c);
    let q = QueryBuilder::new(model.catalog());
    check(
        &db,
        &model,
        &union(q.scan("r"), q.scan("s")),
        RelProps::any(),
    );
    check(
        &db,
        &model,
        &intersect(q.scan("r"), q.scan("s")),
        RelProps::any(),
    );
    check(
        &db,
        &model,
        &difference(q.scan("r"), q.scan("s")),
        RelProps::any(),
    );
    // Sorted goals exercise the merge variants.
    let x = q.attr("r", "x");
    check(
        &db,
        &model,
        &intersect(q.scan("r"), q.scan("s")),
        RelProps::sorted(vec![x]),
    );
}

#[test]
fn aggregation_both_strategies() {
    let (db, model) = setup();
    let q = QueryBuilder::new(model.catalog());
    let mut cat2 = model.catalog().clone();
    let dept = q.attr("emp", "dept");
    let salary = q.attr("emp", "salary");
    let spec = AggSpec {
        group_by: vec![dept],
        aggs: vec![
            (AggFunc::CountStar, cat2.fresh_attr()),
            (AggFunc::Sum(salary), cat2.fresh_attr()),
            (AggFunc::Min(salary), cat2.fresh_attr()),
            (AggFunc::Max(salary), cat2.fresh_attr()),
            (AggFunc::Avg(salary), cat2.fresh_attr()),
        ],
    };
    let expr = aggregate(q.scan("emp"), spec.clone());
    check(&db, &model, &expr, RelProps::any());
    // Sorted goal forces the stream-aggregate path.
    check(&db, &model, &expr, RelProps::sorted(vec![dept]));
}

#[test]
fn grand_total_on_empty_table() {
    let mut c = Catalog::new();
    c.add_table("empty", 5.0, vec![ColumnDef::int("x", 5.0)]);
    let x = c.attr("empty", "x");
    let count_out = c.fresh_attr();
    let sum_out = c.fresh_attr();
    // NOTE: the table is registered with card 5 but never populated.
    let db = Database::in_memory(c.clone());
    let model = RelModel::with_defaults(c);
    let q = QueryBuilder::new(model.catalog());
    let expr = aggregate(
        q.scan("empty"),
        AggSpec {
            group_by: vec![],
            aggs: vec![(AggFunc::CountStar, count_out), (AggFunc::Sum(x), sum_out)],
        },
    );
    check(&db, &model, &expr, RelProps::any());
    let got = {
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&expr);
        let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
        db.execute(&plan)
    };
    assert_eq!(got, vec![vec![Value::Int(0), Value::Null]]);
}

#[test]
fn random_queries_match_oracle() {
    use volcano_bench::{generate_query, WorkloadConfig};
    for n in 2..=4usize {
        for seed in 0..5u64 {
            let mut cfg = WorkloadConfig::relations(n);
            cfg.min_card = 30;
            cfg.max_card = 120;
            let gq = generate_query(&cfg, 1000 * n as u64 + seed);
            let db = Database::in_memory(gq.catalog.clone());
            db.generate(seed);
            let model = RelModel::new(gq.catalog.clone(), RelModelOptions::default());
            check(&db, &model, &gq.expr, RelProps::any());
        }
    }
}

#[test]
fn exchange_produces_same_rows() {
    use volcano_exec::ops::Exchange;
    use volcano_exec::{collect, compile};
    let (db, model) = setup();
    let q = QueryBuilder::new(model.catalog());
    let expr = join_on(
        q.scan("emp"),
        q.scan("dept"),
        q.attr("emp", "dept"),
        q.attr("dept", "id"),
    );
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    let direct = db.execute(&plan);
    let compiled = compile(&db, &plan);
    let mut exchanged = Exchange::new(compiled.operator, 64);
    let via_thread = collect(&mut exchanged);
    assert_same_rows(direct, via_thread);
}

#[test]
fn io_counters_reflect_scans() {
    let mut c = Catalog::new();
    c.add_table(
        "big",
        2000.0,
        vec![
            ColumnDef::int("x", 100.0),
            ColumnDef::str("pad", 92, 2000.0),
        ],
    );
    let db = volcano_exec::Database::with_pool_size(c.clone(), 8);
    db.generate(1);
    db.reset_io_stats();
    let model = RelModel::with_defaults(c);
    let q = QueryBuilder::new(model.catalog());
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.scan("big"));
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    let rows = db.execute(&plan);
    assert_eq!(rows.len(), 2000);
    let (reads, _) = db.io_stats();
    // ~100 bytes per row, 4 KiB pages → ≈ 40 rows/page → ≈ 50+ pages.
    // With a tiny 8-page pool the scan must read most pages from disk.
    assert!(reads >= 40, "expected a real scan, saw {reads} page reads");
}

#[test]
fn external_sort_spills_through_the_full_pipeline() {
    let catalog = small_catalog();
    let db = Database::with_pool_size(catalog.clone(), 8);
    db.generate(42);
    // Force run spilling: only 32 tuples in memory per sort.
    db.set_sort_memory_rows(32);
    db.reset_io_stats();
    let model = RelModel::with_defaults(catalog);
    let q = QueryBuilder::new(model.catalog());
    let key = q.attr("emp", "salary");
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.scan("emp"));
    let plan = opt
        .find_best_plan(root, RelProps::sorted(vec![key]), None)
        .unwrap();
    let rows = db.execute(&plan);
    assert_eq!(rows.len(), 200);
    for w in rows.windows(2) {
        assert!(w[0][2] <= w[1][2], "spilled sort output must be ordered");
    }
    let (reads, writes) = db.io_stats();
    // Run-file pages evicted from the small pool prove the spill went
    // through the disk; merge reads may still be absorbed by the cache.
    assert!(
        writes > 0,
        "run files must hit the disk (reads {reads}, writes {writes})"
    );
}
