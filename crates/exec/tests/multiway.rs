//! The §6 extensibility demonstration: a three-way hash join added via a
//! single multi-operator implementation rule.

use volcano_core::{PhysicalProps, SearchOptions};
use volcano_rel::builder::join;
use volcano_rel::{
    Catalog, ColumnDef, JoinPred, QueryBuilder, RelAlg, RelModel, RelModelOptions, RelOptimizer,
    RelPlan, RelProps,
};

/// A chain a–b–c with huge intermediate result (low-distinct keys): the
/// fused operator's saved intermediate construction dominates.
fn chain_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table("a", 5_000.0, vec![ColumnDef::int("x", 10.0)]);
    c.add_table(
        "b",
        5_000.0,
        vec![ColumnDef::int("x", 10.0), ColumnDef::int("y", 10.0)],
    );
    c.add_table("c", 5_000.0, vec![ColumnDef::int("y", 10.0)]);
    c
}

fn optimize(enable_multiway: bool) -> RelPlan {
    let catalog = chain_catalog();
    let opts = RelModelOptions {
        enable_multiway_join: enable_multiway,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(catalog, opts);
    let q = QueryBuilder::new(model.catalog());
    let expr = join(
        join(
            q.scan("a"),
            q.scan("b"),
            JoinPred::eq(q.attr("a", "x"), q.attr("b", "x")),
        ),
        q.scan("c"),
        JoinPred::eq(q.attr("b", "y"), q.attr("c", "y")),
    );
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    opt.find_best_plan(root, RelProps::any(), None).unwrap()
}

#[test]
fn multiway_join_wins_on_large_intermediates() {
    let with = optimize(true);
    let without = optimize(false);
    assert_eq!(
        with.count_algs(|a| matches!(a, RelAlg::MultiWayHashJoin { .. })),
        1,
        "the fused operator must be chosen:\n{}",
        with.explain()
    );
    assert!(
        with.cost.total() < without.cost.total(),
        "fused {} must beat the binary cascade {}",
        with.cost,
        without.cost
    );
    // The fused plan has three scan inputs directly under one join.
    assert_eq!(with.inputs.len(), 3);
}

#[test]
fn multiway_condition_rejects_wrong_shapes() {
    // Outer predicate rooted in `a` (not `b`): the probe cascade does not
    // apply, so the rule's condition must reject and the optimizer falls
    // back to binary joins — while still producing a valid plan.
    let mut c = Catalog::new();
    c.add_table(
        "a",
        1_000.0,
        vec![ColumnDef::int("x", 10.0), ColumnDef::int("z", 10.0)],
    );
    c.add_table("b", 1_000.0, vec![ColumnDef::int("x", 10.0)]);
    c.add_table("d", 1_000.0, vec![ColumnDef::int("z", 10.0)]);
    let opts = RelModelOptions {
        enable_multiway_join: true,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(c, opts);
    let q = QueryBuilder::new(model.catalog());
    let expr = join(
        join(
            q.scan("a"),
            q.scan("b"),
            JoinPred::eq(q.attr("a", "x"), q.attr("b", "x")),
        ),
        q.scan("d"),
        // outer-left attribute comes from `a`, not `b`.
        JoinPred::eq(q.attr("a", "z"), q.attr("d", "z")),
    );
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    assert!(plan.cost.total() > 0.0);
    // NOTE: commutativity may still reshape the query so that the
    // condition is met in an equivalent form; what matters is that the
    // original (invalid) shape was not fused blindly — validated by the
    // execution oracle test below either way.
}

#[test]
fn multiway_join_executes_correctly() {
    use volcano_exec::{assert_same_rows, evaluate_logical, Database};
    let mut c = Catalog::new();
    c.add_table("a", 60.0, vec![ColumnDef::int("x", 5.0)]);
    c.add_table(
        "b",
        50.0,
        vec![ColumnDef::int("x", 5.0), ColumnDef::int("y", 4.0)],
    );
    c.add_table("c", 40.0, vec![ColumnDef::int("y", 4.0)]);
    let opts = RelModelOptions {
        enable_multiway_join: true,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(c.clone(), opts);
    let q = QueryBuilder::new(model.catalog());
    let expr = join(
        join(
            q.scan("a"),
            q.scan("b"),
            JoinPred::eq(q.attr("a", "x"), q.attr("b", "x")),
        ),
        q.scan("c"),
        JoinPred::eq(q.attr("b", "y"), q.attr("c", "y")),
    );
    let db = Database::in_memory(c);
    db.generate(5);
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    let plan = opt.find_best_plan(root, RelProps::any(), None).unwrap();
    assert!(
        plan.count_algs(|a| matches!(a, RelAlg::MultiWayHashJoin { .. })) == 1,
        "want the fused operator in this plan:\n{}",
        plan.explain()
    );

    let compiled = volcano_exec::compile(&db, &plan);
    let phys = compiled.schema.clone();
    let mut op = compiled.operator;
    let raw = volcano_exec::collect(op.as_mut());
    let oracle = evaluate_logical(&db, &expr);
    let positions: Vec<usize> = oracle
        .schema
        .iter()
        .map(|a| phys.iter().position(|b| b == a).expect("attr"))
        .collect();
    let aligned: Vec<_> = raw
        .into_iter()
        .map(|t| positions.iter().map(|&i| t[i].clone()).collect())
        .collect();
    assert_same_rows(aligned, oracle.rows);
}
