//! Chaos and stress tests for morsel-driven parallel execution.
//!
//! Two failure axes:
//!
//! 1. **Injected worker death.** `BatchConfig::with_fail_morsel(n)`
//!    makes the worker dispensed the `n`-th morsel panic mid-query. The
//!    query must fail with a clean, attributable panic — never a
//!    deadlock, never a silently truncated result — and the same
//!    database must answer the next (uninjected) query correctly: a
//!    dead worker poisons nothing.
//!
//! 2. **Concurrent parallel executions under cache chaos.** Four
//!    threads hammer prepared statements through the parallel batch
//!    engine while a chaos thread bumps the stats epoch, forcing
//!    constant plan re-validation. Every execution must return the
//!    correct rows and the plan-cache counters must reconcile exactly:
//!    `hits + misses + invalidations == lookups`.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use common::testkit::{assert_same_multiset, sorted_copy, sql_cases, DiffCase};
use volcano_exec::{BatchConfig, Database};
use volcano_rel::value::Tuple;
use volcano_rel::{RelAlg, RelModelOptions, RelPlan, Value};

fn has_gather(plan: &RelPlan) -> bool {
    matches!(plan.alg, RelAlg::Gather(_)) || plan.inputs.iter().any(has_gather)
}

/// Golden cases whose plans actually contain a gather at degree 4 —
/// injection into a serial plan would test nothing.
fn gather_cases() -> Vec<DiffCase> {
    let cases: Vec<DiffCase> = sql_cases(RelModelOptions::default().with_parallel_degree(4))
        .into_iter()
        .filter(|c| has_gather(&c.plan))
        .collect();
    assert!(
        !cases.is_empty(),
        "no golden query produced a gather plan at degree 4"
    );
    cases
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[test]
fn injected_worker_panic_fails_cleanly_and_poisons_nothing() {
    for case in gather_cases() {
        let DiffCase { db, plan, tag } = &case;
        let expected = db.execute(plan);
        // Several injection points: the very first morsel (dies during
        // a build pipeline if the gather has one), and later ones (dies
        // mid-probe / mid-scan).
        for fail_at in [1u64, 2, 5] {
            let cfg = BatchConfig::default().with_fail_morsel(fail_at);
            let result = catch_unwind(AssertUnwindSafe(|| db.execute_batch(plan, cfg)));
            let payload = match result {
                Err(p) => p,
                Ok(rows) => {
                    // Fewer morsels than the injection point: the query
                    // legitimately completes, and completely.
                    assert_same_multiset(
                        &expected,
                        &rows,
                        &format!("{tag}: fail_at={fail_at} (not reached)"),
                    );
                    continue;
                }
            };
            let msg = panic_text(payload);
            assert!(
                msg.contains("injected worker failure") || msg.contains("morsel worker failed"),
                "{tag}: fail_at={fail_at}: unexpected panic: {msg}"
            );
            // The failure is repeatable, not a race artifact.
            let again = catch_unwind(AssertUnwindSafe(|| db.execute_batch(plan, cfg)));
            assert!(
                again.is_err(),
                "{tag}: fail_at={fail_at}: injection did not reproduce"
            );
            // And the database is unharmed: the next clean run over the
            // same buffer pool and heap files is complete and correct.
            let rows = db.execute_batch(plan, BatchConfig::default());
            assert_same_multiset(&expected, &rows, &format!("{tag}: after fail_at={fail_at}"));
        }
    }
}

/// An injection point past the total morsel count never fires: the
/// query completes normally with the injection armed.
#[test]
fn unreached_injection_is_inert() {
    for case in gather_cases() {
        let DiffCase { db, plan, tag } = &case;
        let expected = db.execute(plan);
        let cfg = BatchConfig::default().with_fail_morsel(u64::MAX);
        let rows = db.execute_batch(plan, cfg);
        assert_same_multiset(&expected, &rows, &format!("{tag}: fail_at=MAX"));
    }
}

const THREADS: usize = 4;
const ITERS_PER_THREAD: usize = 40;

const SHAPES: &[&str] = &[
    "SELECT emp.id FROM emp WHERE emp.salary < $0 ORDER BY emp.id",
    "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id AND emp.salary < $0",
    "SELECT emp.id FROM emp, dept, region \
     WHERE emp.dept = dept.id AND dept.region = region.id AND emp.salary < $0",
    "SELECT emp.dept, COUNT(*) FROM emp GROUP BY emp.dept ORDER BY emp.dept",
];

#[test]
fn concurrent_parallel_executions_reconcile_under_epoch_chaos() {
    let db = Database::in_memory(common::testkit::diff_catalog());
    db.generate(23);
    db.set_parallel_degree(4);
    let cfg = BatchConfig::default();
    let stmts: Vec<_> = SHAPES
        .iter()
        .map(|s| db.prepare(s).expect("prepare"))
        .collect();

    // Golden answers per (shape, param), single-threaded, canonical
    // order. Statistics never change (the chaos thread bumps the raw
    // epoch only), so replans may pick new plans but answers must not
    // move.
    let param_space: Vec<i64> = vec![5, 20, 45];
    let mut golden: Vec<Vec<Vec<Tuple>>> = Vec::new();
    for stmt in &stmts {
        let mut per_param = Vec::new();
        for p in &param_space {
            let params: Vec<Value> = (0..stmt.param_count()).map(|_| Value::Int(*p)).collect();
            let rows = db
                .execute_prepared(stmt, &params, Some(cfg))
                .expect("golden run");
            per_param.push(sorted_copy(&rows));
        }
        golden.push(per_param);
    }
    db.plan_cache().clear();

    let stop = AtomicBool::new(false);
    let executions = AtomicU64::new(0);
    let baseline = db.plan_cache().stats();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = &db;
            let stmts = &stmts;
            let golden = &golden;
            let param_space = &param_space;
            let executions = &executions;
            scope.spawn(move || {
                for i in 0..ITERS_PER_THREAD {
                    let s = (i * 7 + t * 3) % stmts.len();
                    let p = (i + t) % param_space.len();
                    let stmt = &stmts[s];
                    let params: Vec<Value> = (0..stmt.param_count())
                        .map(|_| Value::Int(param_space[p]))
                        .collect();
                    let rows = db
                        .execute_prepared(stmt, &params, Some(cfg))
                        .expect("concurrent parallel execution");
                    assert_eq!(
                        sorted_copy(&rows),
                        golden[s][p],
                        "thread {t} iter {i}: shape {s} param {p} returned wrong rows"
                    );
                    executions.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Chaos thread: epoch bumps force constant re-validation of
        // cached parallel plans while their worker pools are running.
        let db = &db;
        let stop = &stop;
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                db.bump_epoch();
                std::thread::yield_now();
            }
        });
        while executions.load(Ordering::Relaxed) < (THREADS * ITERS_PER_THREAD) as u64 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let total = THREADS as u64 * ITERS_PER_THREAD as u64;
    assert_eq!(executions.load(Ordering::Relaxed), total);

    let s = db.plan_cache().stats();
    let lookups = s.lookups - baseline.lookups;
    let hits = s.hits - baseline.hits;
    let misses = s.misses - baseline.misses;
    let invalidations = s.invalidations - baseline.invalidations;
    assert_eq!(lookups, total, "one lookup per execution");
    assert_eq!(
        hits + misses + invalidations,
        lookups,
        "counters must reconcile: {s:?}"
    );
    assert!(misses >= SHAPES.len() as u64, "{s:?}");
}
