//! Shared infrastructure for the differential test suites.
//!
//! Each integration test is its own crate and uses a different subset of
//! the kit, so unused items are expected rather than suspicious.
#![allow(dead_code)]

pub mod testkit;
