//! The differential/concurrency test kit.
//!
//! Every cross-engine suite (`batch_differential`, `cache_differential`,
//! `parallel_differential`, ...) compares engines over the same golden
//! catalog and query list, with the same multiset/order discipline:
//! row *multisets* must always match, and the row *sequence* must match
//! whenever the plan delivers a sort property. This module is the single
//! home for that machinery so new engines (and new axes, like parallel
//! degree) extend the matrix instead of copying it.

use volcano_bench::workload::{generate_query, WorkloadConfig};
use volcano_core::{PhysicalProps, SearchOptions};
use volcano_exec::Database;
use volcano_rel::value::Tuple;
use volcano_rel::{
    explain_plan, Catalog, ColumnDef, RelExpr, RelModel, RelModelOptions, RelOptimizer, RelPlan,
    RelProps,
};
use volcano_sql::plan_query;

/// The golden three-table catalog (emp ⋈ dept ⋈ region) shared by the
/// SQL-level differential suites.
pub fn diff_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        2000.0,
        vec![
            ColumnDef::int("id", 2000.0),
            ColumnDef::int("dept", 20.0),
            ColumnDef::int("salary", 100.0),
        ],
    );
    c.add_table(
        "dept",
        20.0,
        vec![ColumnDef::int("id", 20.0), ColumnDef::int("region", 4.0)],
    );
    c.add_table("region", 4.0, vec![ColumnDef::int("id", 4.0)]);
    c
}

/// The golden SQL query list: one representative per operator family
/// (filter+sort, join, 3-way join, aggregate, union).
pub const SQL_QUERIES: &[&str] = &[
    "SELECT emp.id FROM emp WHERE emp.salary < 50 ORDER BY emp.id",
    "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id",
    "SELECT emp.id FROM emp, dept, region \
     WHERE emp.dept = dept.id AND dept.region = region.id AND emp.salary < 50 \
     ORDER BY emp.id",
    "SELECT emp.dept, COUNT(*) FROM emp GROUP BY emp.dept ORDER BY emp.dept",
    "SELECT emp.dept FROM emp WHERE emp.salary < 50 UNION SELECT dept.id FROM dept",
];

/// A copy of `rows` in canonical (sorted) order, for multiset
/// comparison.
pub fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

/// Assert two row sets are the same multiset (order-insensitive).
pub fn assert_same_multiset(expected: &[Tuple], actual: &[Tuple], tag: &str) {
    assert_eq!(
        sorted_copy(expected),
        sorted_copy(actual),
        "{tag}: row multisets diverged"
    );
}

/// Optimize `expr` under `goal`, asserting serial and parallel-search
/// exploration agree on the winning plan (engine-independent plan
/// choice).
pub fn optimize_drift_guarded(
    model: &RelModel,
    expr: &RelExpr,
    goal: RelProps,
    catalog: &Catalog,
    tag: &str,
) -> RelPlan {
    let mut serial = RelOptimizer::new(model, SearchOptions::default());
    let root = serial.insert_tree(expr);
    let plan = serial
        .find_best_plan(root, goal.clone(), None)
        .unwrap_or_else(|e| panic!("{tag}: serial optimization failed: {e}"));

    let mut parallel = RelOptimizer::new(model, SearchOptions::default());
    let root = parallel.insert_tree(expr);
    parallel.explore_parallel(2).unwrap();
    let pplan = parallel
        .find_best_plan(root, goal, None)
        .unwrap_or_else(|e| panic!("{tag}: parallel optimization failed: {e}"));

    assert_eq!(
        explain_plan(catalog, &plan),
        explain_plan(catalog, &pplan),
        "{tag}: serial and parallel exploration chose different plans"
    );
    plan
}

/// Optimize `expr` under `goal` with plain serial search (no drift
/// guard) — for suites whose subject is execution, not search.
pub fn optimize_plan(model: &RelModel, expr: &RelExpr, goal: RelProps, tag: &str) -> RelPlan {
    let mut opt = RelOptimizer::new(model, SearchOptions::default());
    let root = opt.insert_tree(expr);
    opt.find_best_plan(root, goal, None)
        .unwrap_or_else(|e| panic!("{tag}: optimization failed: {e}"))
}

/// One ready-to-execute differential case: a populated database, the
/// optimized plan, and a tag for failure messages.
pub struct DiffCase {
    pub db: Database,
    pub plan: RelPlan,
    pub tag: String,
}

/// Build every golden SQL query into a [`DiffCase`], optimized with
/// `options` (e.g. a parallel degree) and goal = the query's ORDER BY.
pub fn sql_cases(options: RelModelOptions) -> Vec<DiffCase> {
    SQL_QUERIES
        .iter()
        .map(|sql| {
            let mut catalog = diff_catalog();
            let q = plan_query(sql, &mut catalog).expect("query must parse");
            let model = RelModel::new(catalog.clone(), options.clone());
            let plan = optimize_plan(&model, &q.expr, RelProps::sorted(q.order_by.clone()), sql);
            let db = Database::in_memory(catalog);
            db.generate(42);
            DiffCase {
                db,
                plan,
                tag: (*sql).to_string(),
            }
        })
        .collect()
}

/// A generated query plus its populated database, *before* any
/// optimization — for suites that sweep one query across several model
/// configurations (e.g. parallel degrees). Generating the data once and
/// re-optimizing per configuration is far cheaper than rebuilding the
/// whole case each time.
pub struct ParallelInput {
    pub catalog: Catalog,
    pub expr: RelExpr,
    pub db: Database,
    pub tag: String,
    /// The goal to optimize under: `ORDER BY` on t0's first column when
    /// the suite demands a sort-delivering plan, else "any".
    pub goal: RelProps,
}

/// Build fig4-style generated select–join queries (paper §4.2 workload)
/// into [`ParallelInput`]s, for `n`-relation queries over the given
/// seeds. When `sorted` is set the goal demands order on the first
/// column of t0, so every optimized plan delivers a sort property.
pub fn fig4_inputs(
    relations: &[usize],
    seeds: std::ops::Range<u64>,
    sorted: bool,
) -> Vec<ParallelInput> {
    let mut inputs = Vec::new();
    for &n in relations {
        for seed in seeds.clone() {
            let q = generate_query(&WorkloadConfig::relations(n), seed);
            let goal = if sorted {
                let table = q.catalog.table_by_name("t0").unwrap();
                RelProps::sorted(vec![table.columns[0].attr])
            } else {
                RelProps::any()
            };
            let db = Database::in_memory(q.catalog.clone());
            db.generate(seed);
            inputs.push(ParallelInput {
                catalog: q.catalog,
                expr: q.expr,
                db,
                tag: format!("fig4 n={n} seed={seed} sorted={sorted}"),
                goal,
            });
        }
    }
    inputs
}

/// The parallel degrees a concurrency suite should sweep. Honouring
/// `VOLCANO_THREADS` lets CI pin a single degree per leg (serial and
/// heavily parallel legs catch different bugs); unset, the full
/// {1, 2, 4, 8} ladder runs.
pub fn thread_counts() -> Vec<u32> {
    match std::env::var("VOLCANO_THREADS") {
        Ok(v) => {
            let n: u32 = v
                .parse()
                .unwrap_or_else(|_| panic!("VOLCANO_THREADS must be an integer, got {v:?}"));
            vec![n.max(1)]
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// The morsel granularities a parallel suite should sweep: one page per
/// morsel (maximal scheduling pressure), the engine default, and one
/// morsel spanning the whole table (degenerates to at most one busy
/// worker per pipeline).
pub fn morsel_sizes() -> [Option<usize>; 3] {
    [Some(1), None, Some(usize::MAX)]
}

// ---------------------------------------------------------------------
// Deterministic data generators (skew, Zipf, correlation).
// ---------------------------------------------------------------------

/// A deterministic LCG (Knuth MMIX constants) so datasets are stable
/// without pulling in rand.
pub struct Lcg(pub u64);

impl Lcg {
    /// The next pseudo-random 31-bit-ish value.
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() % (1 << 24)) as f64 / (1 << 24) as f64
    }
}

/// Skewed groups: ~80% of rows land on one hot key, the rest spread
/// over a small tail; a sprinkle of NULL keys and NULL values.
pub fn skewed_rows(n: usize, seed: u64) -> Vec<(Option<i64>, Option<i64>)> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let k = match rng.next() % 10 {
                0..=7 => Some(0),
                8 => Some((rng.next() % 50) as i64),
                _ => None,
            };
            let v = if rng.next().is_multiple_of(11) {
                None
            } else {
                Some((rng.next() % 2_000) as i64 - 1_000)
            };
            (k, v)
        })
        .collect()
}

/// High-cardinality groups: most keys appear exactly once, so nearly
/// every row opens a fresh group and a final aggregate merge sees
/// almost as many partial rows as there were inputs.
pub fn high_cardinality_rows(n: usize, seed: u64) -> Vec<(Option<i64>, Option<i64>)> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            (
                Some(i as i64),
                Some((rng.next() % 1_000_000) as i64 - 500_000),
            )
        })
        .collect()
}

/// A Zipf(s) sampler over keys `0..n_keys` (key 0 most frequent): the
/// canonical "estimates assume uniform, data is anything but" workload
/// for the adaptive-feedback suites. Precomputes the CDF once.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler with exponent `s` over `n_keys` ranks.
    pub fn new(n_keys: usize, s: f64) -> Self {
        assert!(n_keys > 0, "Zipf needs at least one key");
        let mut mass = 0.0;
        let cdf: Vec<f64> = (1..=n_keys)
            .map(|rank| {
                mass += 1.0 / (rank as f64).powf(s);
                mass
            })
            .collect();
        let total = *cdf.last().unwrap();
        Zipf {
            cdf: cdf.into_iter().map(|c| c / total).collect(),
        }
    }

    /// Draw one key in `0..n_keys`.
    pub fn sample(&self, rng: &mut Lcg) -> i64 {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u) as i64
    }
}

/// `n` keys drawn Zipf(`s`) over `0..n_keys`: with s ≳ 1.3 the top rank
/// absorbs most of the mass, so a uniform `1/distinct` estimate is
/// wrong by an order of magnitude for the hot key.
pub fn zipf_keys(n: usize, n_keys: usize, s: f64, seed: u64) -> Vec<i64> {
    let zipf = Zipf::new(n_keys, s);
    let mut rng = Lcg(seed);
    (0..n).map(|_| zipf.sample(&mut rng)).collect()
}

/// Pairs whose second column is a noisy function of the first
/// (`b = a % groups` with `noise`-probability uniform escape): the
/// correlated-column workload where independence-assuming conjunct
/// estimates multiply into nonsense.
pub fn correlated_pairs(n: usize, groups: i64, noise: f64, seed: u64) -> Vec<(i64, i64)> {
    assert!(groups > 0);
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            let a = i as i64;
            let b = if rng.unit() < noise {
                (rng.next() % (groups as u64)) as i64
            } else {
                a % groups
            };
            (a, b)
        })
        .collect()
}

/// Run `attempt(i)` for executions `1..=k`; `Some(i)` is the first
/// execution where it reports convergence, `None` if `k` executions
/// never converge. The adaptive-feedback acceptance bar is
/// `converges_within(5, ...)` returning `Some(_)`.
pub fn converges_within(k: usize, mut attempt: impl FnMut(usize) -> bool) -> Option<usize> {
    (1..=k).find(|&i| attempt(i))
}
