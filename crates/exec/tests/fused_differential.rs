//! Differential tests for the pipeline-fused engine (the third engine).
//!
//! Every golden SQL query and fig4-style generated plan is executed on
//! all three engines — tuple (the oracle), batch, and fused — across
//! batch sizes {1, default, 1024} and the parallel-degree ladder
//! (`VOLCANO_THREADS` pins one degree per CI leg). Whatever the
//! configuration, the fused engine must produce the identical row
//! *multiset*; at degree 1 the exact sequence must match the tuple
//! engine, and under a sort goal the delivered order must hold at every
//! degree (only sort-key ties may reorder under parallelism).
//!
//! The fallback-coverage tests pin the engine-boundary discipline:
//! non-fusable operators (sort, set ops) execute correctly through at
//! most one adapter per genuine engine boundary, with the fusable
//! segments around them still fused. Hash aggregates never fall back —
//! they terminate a fused pipeline in an aggregation sink (or run
//! batch-native over a non-fusable child).

mod common;

use common::testkit::{
    assert_same_multiset, fig4_inputs, optimize_plan, sql_cases, thread_counts, SQL_QUERIES,
};
use volcano_exec::{
    collect_batches, compile_fused, schema_of, BatchConfig, Database, Engine, ExecOptions,
};
use volcano_rel::value::Tuple;
use volcano_rel::{RelModel, RelModelOptions, RelPlan};

/// The batch-size axis: degenerate single-row batches, the engine
/// default, and an explicit large batch.
fn batch_sizes() -> [Option<usize>; 3] {
    [Some(1), None, Some(1024)]
}

fn config(batch_size: Option<usize>) -> BatchConfig {
    match batch_size {
        Some(n) => BatchConfig::with_batch_size(n),
        None => BatchConfig::default(),
    }
}

/// Assert `rows` are non-decreasing on the given key column positions.
fn assert_sorted_on(rows: &[Tuple], key_positions: &[usize], tag: &str) {
    for pair in rows.windows(2) {
        let a: Vec<_> = key_positions.iter().map(|&p| &pair[0][p]).collect();
        let b: Vec<_> = key_positions.iter().map(|&p| &pair[1][p]).collect();
        assert!(
            a <= b,
            "{tag}: output violates the delivered sort order ({a:?} before {b:?})"
        );
    }
}

/// Run `plan` on all three engines at every batch size and assert the
/// cross-engine discipline holds.
fn assert_three_engines_agree(db: &Database, plan: &RelPlan, tag: &str, degree: u32) {
    let tuple_rows = db.execute(plan);
    let key_positions: Vec<usize> = {
        let schema = schema_of(db, plan);
        plan.delivered
            .sort
            .iter()
            .map(|a| {
                schema
                    .iter()
                    .position(|s| s == a)
                    .unwrap_or_else(|| panic!("{tag}: sort key {a:?} missing from output schema"))
            })
            .collect()
    };
    for batch_size in batch_sizes() {
        let cfg = config(batch_size);
        let batch_rows = db.execute_batch(plan, cfg);
        let fused_rows = db.execute_fused(plan, cfg);
        let mtag = format!("{tag}: deg={degree} batch={batch_size:?}");
        assert_same_multiset(&tuple_rows, &batch_rows, &format!("{mtag} [batch]"));
        assert_same_multiset(&tuple_rows, &fused_rows, &format!("{mtag} [fused]"));
        if !key_positions.is_empty() {
            assert_sorted_on(&batch_rows, &key_positions, &format!("{mtag} [batch]"));
            assert_sorted_on(&fused_rows, &key_positions, &format!("{mtag} [fused]"));
        }
        if degree == 1 {
            assert_eq!(
                tuple_rows, fused_rows,
                "{mtag}: serial fused execution must be sequence-identical to the tuple engine"
            );
            assert_eq!(
                batch_rows, fused_rows,
                "{mtag}: serial fused execution must be sequence-identical to the batch engine"
            );
        }
    }
}

fn options(degree: u32) -> RelModelOptions {
    RelModelOptions::default().with_parallel_degree(degree)
}

#[test]
fn sql_golden_queries_agree_on_all_three_engines() {
    for degree in thread_counts() {
        for case in sql_cases(options(degree)) {
            assert_three_engines_agree(&case.db, &case.plan, &case.tag, degree);
        }
    }
}

#[test]
fn fig4_plans_agree_on_all_three_engines() {
    for input in fig4_inputs(&[2, 3], 0..2, false) {
        for degree in thread_counts() {
            let model = RelModel::new(
                input.catalog.clone(),
                RelModelOptions::paper_fig4().with_parallel_degree(degree),
            );
            let tag = format!("{} deg={degree}", input.tag);
            let plan = optimize_plan(&model, &input.expr, input.goal.clone(), &tag);
            assert_three_engines_agree(&input.db, &plan, &tag, degree);
        }
    }
}

/// Sorted goals: the fused engine must deliver the sort order at every
/// degree — parallelism and fusion may never leak through the sort.
#[test]
fn fig4_sorted_goals_preserve_order_on_fused() {
    for input in fig4_inputs(&[2], 0..2, true) {
        for degree in thread_counts() {
            let model = RelModel::new(
                input.catalog.clone(),
                RelModelOptions::paper_fig4().with_parallel_degree(degree),
            );
            let tag = format!("{} deg={degree}", input.tag);
            let plan = optimize_plan(&model, &input.expr, input.goal.clone(), &tag);
            assert!(
                !plan.delivered.sort.is_empty(),
                "{tag}: expected a sort-delivering plan"
            );
            assert_three_engines_agree(&input.db, &plan, &tag, degree);
        }
    }
}

/// Fallback coverage: the golden list contains sorts, an aggregate, and
/// a union. Sorts and unions are not fusable — each must execute
/// correctly on the fused engine, the fusable segments beneath/around
/// them must still fuse, and the adapter count must stay within one
/// adapter per engine boundary (a fallback operator has at most two
/// boundary edges below/above it in these unary/binary plans, plus one
/// possible boundary at the root). Hash aggregates terminate a fused
/// pipeline in an aggregation sink instead of falling back: the golden
/// aggregate query must produce an agg sink and zero adapters.
#[test]
fn fallback_operators_fuse_around_with_bounded_adapters() {
    let mut fallbacks_seen = Vec::new();
    let mut agg_sinks_seen = 0usize;
    for case in sql_cases(options(1)) {
        let compiled = compile_fused(&case.db, &case.plan, BatchConfig::default());
        let report = &compiled.report;
        let mut op = compiled.operator;
        let rows = collect_batches(op.as_mut());
        assert_eq!(
            case.db.execute(&case.plan),
            rows,
            "{}: fused execution through fallbacks diverged",
            case.tag
        );
        assert!(
            report.adapters <= 2 * report.fallback_segments() + 1,
            "{}: {} adapters for {} fallback segment(s) — more than one \
             adapter per engine boundary",
            case.tag,
            report.adapters,
            report.fallback_segments()
        );
        if report.fallback_segments() > 0 {
            assert!(
                report.pipelines_fused() >= 1,
                "{}: fusable segments under the fallback must still fuse",
                case.tag
            );
        }
        // Adapters around an agg sink can only come from *other*
        // fallback segments (e.g. a sort above it) — never from the
        // aggregate itself.
        if report.agg_sinks > 0 && report.fallback_segments() == 0 {
            assert_eq!(
                report.adapters, 0,
                "{}: a fused terminal aggregate must report 0 adapters",
                case.tag
            );
        }
        agg_sinks_seen += report.agg_sinks;
        fallbacks_seen.extend(report.fallback_ops.iter().copied());
    }
    // The golden list must actually exercise the fallback families —
    // and aggregates must never be among them.
    for family in ["sort", "union"] {
        assert!(
            fallbacks_seen.iter().any(|op| op.contains(family)),
            "golden queries produced no {family} fallback (saw {fallbacks_seen:?})"
        );
    }
    assert!(
        !fallbacks_seen.iter().any(|op| op.contains("aggregate")),
        "aggregates must not fall back to the tuple engine (saw {fallbacks_seen:?})"
    );
    assert!(
        agg_sinks_seen >= 1,
        "golden queries produced no fused aggregation sink"
    );
}

/// A fully fusable pipeline plan must compile to zero fallback segments
/// and zero adapters: one region, straight from the heap file to the
/// consumer.
#[test]
fn fusable_plans_compile_adapter_free() {
    // Join + filter + projection, no ORDER BY: every operator fuses.
    let sql = "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id";
    let case = sql_cases(options(1))
        .into_iter()
        .zip(SQL_QUERIES)
        .find(|(_, q)| **q == sql)
        .map(|(c, _)| c)
        .expect("golden join query present");
    let compiled = compile_fused(&case.db, &case.plan, BatchConfig::default());
    assert_eq!(
        compiled.report.fallback_segments(),
        0,
        "join pipeline must fuse completely: {:?}",
        compiled.report.fallback_ops
    );
    assert_eq!(compiled.report.adapters, 0, "no engine boundary expected");
    assert!(
        compiled.report.pipelines_fused() >= 2,
        "expected a build pipeline and an output pipeline"
    );
    let mut op = compiled.operator;
    let rows = collect_batches(op.as_mut());
    assert_eq!(case.db.execute(&case.plan), rows, "{sql}");
}

/// The prepared-statement / plan-cache path inherits the fused engine:
/// a cache hit re-binds the cached plan and executes it fused, with no
/// optimizer involvement, producing the same rows as the tuple engine.
#[test]
fn plan_cache_hit_executes_on_fused_engine() {
    let case = &sql_cases(options(1))[1]; // the join query
    let db = &case.db;
    let stmt = db
        .prepare("SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id")
        .unwrap();
    let opts = ExecOptions::new().with_executor(Engine::Fused(BatchConfig::default()));
    let cold = db.execute_prepared_opts(&stmt, &[], &opts, None).unwrap();
    assert_eq!(cold.cache, "miss");
    let warm = db.execute_prepared_opts(&stmt, &[], &opts, None).unwrap();
    assert_eq!(warm.cache, "hit");
    assert!(
        warm.search.is_none(),
        "a cache hit must not re-run the optimizer"
    );
    let oracle = db
        .execute_prepared_opts(&stmt, &[], &ExecOptions::new(), None)
        .unwrap();
    assert_eq!(oracle.rows, cold.rows, "fused cold run diverged");
    assert_eq!(oracle.rows, warm.rows, "fused cache-hit run diverged");
}

/// Degraded (budget-tripped) optimizations still execute on the fused
/// engine — admission control degrading search quality must never
/// change what the chosen engine computes.
#[test]
fn degraded_search_executes_on_fused_engine() {
    let case = &sql_cases(options(1))[2]; // the 3-way join
    let db = &case.db;
    let stmt = db
        .prepare(
            "SELECT emp.id FROM emp, dept, region \
             WHERE emp.dept = dept.id AND dept.region = region.id AND emp.salary < 50 \
             ORDER BY emp.id",
        )
        .unwrap();
    let tight = volcano_core::SearchBudget::unlimited().with_max_goals(1);
    let opts = ExecOptions::new()
        .with_executor(Engine::Fused(BatchConfig::default()))
        .with_budget(tight)
        .with_cache_bypass(true);
    let degraded = db.execute_prepared_opts(&stmt, &[], &opts, None).unwrap();
    assert!(
        degraded
            .search
            .as_ref()
            .expect("bypass always optimizes")
            .outcome
            .is_degraded(),
        "a one-goal budget must trip on a 3-way join"
    );
    let oracle = db
        .execute_prepared_opts(
            &stmt,
            &[],
            &ExecOptions::new()
                .with_budget(volcano_core::SearchBudget::unlimited().with_max_goals(1))
                .with_cache_bypass(true),
            None,
        )
        .unwrap();
    // Same (degraded) plan on both engines: identical rows, and the
    // ORDER BY makes the sequence deterministic.
    assert_eq!(oracle.rows, degraded.rows, "degraded fused run diverged");
    assert!(!degraded.rows.is_empty(), "query should return rows");
}
