//! Direct unit tests of individual execution operators, fed from an
//! in-memory source — duplicate-key joins, sort-run boundaries, group
//! boundaries, and the exchange thread.

use volcano_exec::iterator::collect;
use volcano_exec::ops::{
    aggregate::CompiledAgg, Exchange, HashAggregate, HashJoin, MergeJoin, MergeSetOp, NestedLoops,
    SetOpKind, Sort, StreamAggregate,
};
use volcano_exec::Operator;
use volcano_rel::value::Tuple;
use volcano_rel::Value;

/// A restartable in-memory source.
struct Rows {
    rows: Vec<Tuple>,
    idx: usize,
}

impl Rows {
    fn new(rows: Vec<Vec<i64>>) -> Box<Self> {
        Box::new(Rows {
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
            idx: 0,
        })
    }
}

impl Operator for Rows {
    fn open(&mut self) {
        self.idx = 0;
    }

    fn next(&mut self) -> Option<Tuple> {
        let t = self.rows.get(self.idx).cloned();
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn close(&mut self) {}
}

fn ints(rows: Vec<Vec<i64>>) -> Vec<Tuple> {
    rows.into_iter()
        .map(|r| r.into_iter().map(Value::Int).collect())
        .collect()
}

#[test]
fn merge_join_handles_duplicate_groups() {
    // Left keys: 1,2,2,3; right keys: 2,2,3,4 → 2x2 + 1 = 5 matches.
    let left = Rows::new(vec![vec![1, 10], vec![2, 20], vec![2, 21], vec![3, 30]]);
    let right = Rows::new(vec![vec![2, 200], vec![2, 201], vec![3, 300], vec![4, 400]]);
    let mut j = MergeJoin::new(left, right, vec![0], vec![0]);
    let out = collect(&mut j);
    assert_eq!(out.len(), 5);
    assert_eq!(
        out,
        ints(vec![
            vec![2, 20, 2, 200],
            vec![2, 20, 2, 201],
            vec![2, 21, 2, 200],
            vec![2, 21, 2, 201],
            vec![3, 30, 3, 300],
        ])
    );
}

#[test]
fn merge_join_empty_sides() {
    let mut j = MergeJoin::new(
        Rows::new(vec![]),
        Rows::new(vec![vec![1]]),
        vec![0],
        vec![0],
    );
    assert!(collect(&mut j).is_empty());
    let mut j = MergeJoin::new(
        Rows::new(vec![vec![1]]),
        Rows::new(vec![]),
        vec![0],
        vec![0],
    );
    assert!(collect(&mut j).is_empty());
}

#[test]
fn hash_join_skips_null_keys() {
    let left: Box<Rows> = Rows::new(vec![vec![1, 10]]);
    // Manually inject a NULL-keyed row on the right.
    let mut right = Rows::new(vec![vec![1, 100]]);
    right.rows.push(vec![Value::Null, Value::Int(999)]);
    let mut j = HashJoin::new(left, right, vec![0], vec![0]);
    let out = collect(&mut j);
    assert_eq!(out, ints(vec![vec![1, 10, 1, 100]]));
}

#[test]
fn nested_loops_cross_product_preserves_outer_order() {
    let left = Rows::new(vec![vec![3], vec![1], vec![2]]);
    let right = Rows::new(vec![vec![7], vec![8]]);
    let mut j = NestedLoops::new(left, right, vec![]);
    let out = collect(&mut j);
    assert_eq!(out.len(), 6);
    // Outer order 3,1,2 preserved.
    assert_eq!(out[0][0], Value::Int(3));
    assert_eq!(out[2][0], Value::Int(1));
    assert_eq!(out[4][0], Value::Int(2));
}

#[test]
fn sort_merges_across_run_boundaries() {
    // More rows than one run (run size is 64Ki — use a seeded shuffle of
    // a modest size; correctness matters, run boundary is covered by the
    // multi-run construction below with tiny logical runs via repeated
    // sorts). Here: verify stability-agnostic total ordering.
    let mut rows: Vec<Vec<i64>> = (0..5000).map(|i| vec![(i * 7919) % 1000, i]).collect();
    rows.reverse();
    let mut s = Sort::new(Rows::new(rows), vec![0]);
    let out = collect(&mut s);
    assert_eq!(out.len(), 5000);
    for w in out.windows(2) {
        assert!(w[0][0] <= w[1][0]);
    }
}

#[test]
fn sort_on_two_keys() {
    let rows = vec![vec![2, 1], vec![1, 9], vec![2, 0], vec![1, 3]];
    let mut s = Sort::new(Rows::new(rows), vec![0, 1]);
    let out = collect(&mut s);
    assert_eq!(
        out,
        ints(vec![vec![1, 3], vec![1, 9], vec![2, 0], vec![2, 1]])
    );
}

#[test]
fn stream_aggregate_group_boundaries() {
    let rows = vec![vec![1, 10], vec![1, 20], vec![2, 5], vec![3, 1], vec![3, 2]];
    let mut a = StreamAggregate::new(
        Rows::new(rows),
        vec![0],
        vec![CompiledAgg::CountStar, CompiledAgg::Sum(1)],
    );
    let out = collect(&mut a);
    assert_eq!(out.len(), 3);
    assert_eq!(out[0][0], Value::Int(1));
    assert_eq!(out[0][1], Value::Int(2));
    // Integer SUM stays exact (Value::Int), not float.
    assert_eq!(out[0][2], Value::Int(30));
    assert_eq!(out[2][0], Value::Int(3));
    assert_eq!(out[2][2], Value::Int(3));
}

#[test]
fn hash_and_stream_aggregate_agree() {
    let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 7, i]).collect();
    let mut sorted_rows = rows.clone();
    sorted_rows.sort();
    let aggs = vec![
        CompiledAgg::CountStar,
        CompiledAgg::Sum(1),
        CompiledAgg::Min(1),
        CompiledAgg::Max(1),
        CompiledAgg::Avg(1),
    ];
    let mut h = HashAggregate::new(Rows::new(rows), vec![0], aggs.clone());
    let mut s = StreamAggregate::new(Rows::new(sorted_rows), vec![0], aggs);
    let mut hout = collect(&mut h);
    let mut sout = collect(&mut s);
    hout.sort();
    sout.sort();
    assert_eq!(hout, sout);
}

#[test]
fn merge_set_ops_on_sorted_streams() {
    let l = vec![vec![1], vec![2], vec![2], vec![3], vec![5]];
    let r = vec![vec![2], vec![3], vec![4]];

    let mut u = MergeSetOp::new(SetOpKind::Union, Rows::new(l.clone()), Rows::new(r.clone()));
    let out = collect(&mut u);
    assert_eq!(out.len(), 8, "bag union keeps duplicates");
    for w in out.windows(2) {
        assert!(w[0] <= w[1], "merge union preserves order");
    }

    let mut i = MergeSetOp::new(
        SetOpKind::Intersect,
        Rows::new(l.clone()),
        Rows::new(r.clone()),
    );
    assert_eq!(collect(&mut i), ints(vec![vec![2], vec![3]]));

    let mut d = MergeSetOp::new(SetOpKind::Difference, Rows::new(l), Rows::new(r));
    assert_eq!(collect(&mut d), ints(vec![vec![1], vec![5]]));
}

#[test]
fn exchange_is_transparent_and_reusable() {
    let rows: Vec<Vec<i64>> = (0..1000).map(|i| vec![i]).collect();
    let mut ex = Exchange::new(Rows::new(rows.clone()), 8);
    let out1 = collect(&mut ex);
    assert_eq!(out1.len(), 1000);
    // Re-open after close: the child was returned by the thread.
    let out2 = collect(&mut ex);
    assert_eq!(out1, out2);
}

#[test]
fn exchange_early_close_does_not_hang() {
    let rows: Vec<Vec<i64>> = (0..100_000).map(|i| vec![i]).collect();
    let mut ex = Exchange::new(Rows::new(rows), 4);
    ex.open();
    let first = ex.next().unwrap();
    assert_eq!(first[0], Value::Int(0));
    // Close while the producer is still running: must unblock and join.
    ex.close();
}
