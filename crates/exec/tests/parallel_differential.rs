//! Differential tests for morsel-driven parallel execution.
//!
//! The same golden SQL queries and fig4-style generated plans as the
//! serial batch differential, but optimized at parallel degrees
//! {1, 2, 4, 8} (so gather plans appear when the optimizer judges them
//! cheaper) and executed at morsel granularities of one page, the
//! engine default, and one whole-table morsel. Whatever the degree and
//! granularity, the parallel batch engine must produce the identical
//! row *multiset* as the serial tuple engine — with the exact sequence
//! at degree 1, and the delivered sort order intact at every degree
//! (the sort sits above the gather, so parallelism must never leak
//! through it; only the relative order of sort-key *ties* may differ).
//!
//! `VOLCANO_THREADS=<n>` pins the sweep to one degree (used by the CI
//! serial and 8-way legs).

mod common;

use common::testkit::{
    assert_same_multiset, fig4_inputs, morsel_sizes, optimize_plan, sql_cases, thread_counts,
};
use volcano_exec::{schema_of, BatchConfig, Database};
use volcano_rel::value::Tuple;
use volcano_rel::{RelModel, RelModelOptions, RelPlan};

/// Assert `rows` are non-decreasing on the given key column positions.
fn assert_sorted_on(rows: &[Tuple], key_positions: &[usize], tag: &str) {
    for pair in rows.windows(2) {
        let a: Vec<_> = key_positions.iter().map(|&p| &pair[0][p]).collect();
        let b: Vec<_> = key_positions.iter().map(|&p| &pair[1][p]).collect();
        assert!(
            a <= b,
            "{tag}: output violates the delivered sort order ({a:?} before {b:?})"
        );
    }
}

/// Execute `plan` under the tuple engine (the serial oracle) and the
/// batch engine at every morsel granularity; assert the multisets
/// always agree, the sequence agrees at degree 1, and the delivered
/// sort order holds at every degree.
fn assert_parallel_agrees(db: &Database, plan: &RelPlan, tag: &str, degree: u32) {
    // The tuple engine executes a gather as a serial pass-through, so
    // the same (possibly parallel) plan serves as its own oracle.
    let tuple_rows = db.execute(plan);
    let key_positions: Vec<usize> = {
        let schema = schema_of(db, plan);
        plan.delivered
            .sort
            .iter()
            .map(|a| {
                schema
                    .iter()
                    .position(|s| s == a)
                    .unwrap_or_else(|| panic!("{tag}: sort key {a:?} missing from output schema"))
            })
            .collect()
    };
    // A degree-1 plan contains no gather, so the morsel granularity is
    // inert: one serial run covers it.
    let sweep: &[Option<usize>] = if degree == 1 {
        &[None]
    } else {
        &morsel_sizes()
    };
    for &morsel in sweep {
        let cfg = match morsel {
            Some(pages) => BatchConfig::default().with_morsel_pages(pages),
            None => BatchConfig::default(),
        };
        let rows = db.execute_batch(plan, cfg);
        let mtag = format!("{tag}: deg={degree} morsel={morsel:?}");
        assert_same_multiset(&tuple_rows, &rows, &mtag);
        if !key_positions.is_empty() {
            assert_sorted_on(&rows, &key_positions, &mtag);
        }
        if degree == 1 {
            assert_eq!(
                tuple_rows, rows,
                "{mtag}: serial execution must be sequence-identical to the tuple engine"
            );
        }
    }
}

fn options(degree: u32) -> RelModelOptions {
    RelModelOptions::default().with_parallel_degree(degree)
}

fn fig4_options(degree: u32) -> RelModelOptions {
    RelModelOptions::paper_fig4().with_parallel_degree(degree)
}

#[test]
fn sql_golden_queries_agree_at_every_degree() {
    for degree in thread_counts() {
        for case in sql_cases(options(degree)) {
            assert_parallel_agrees(&case.db, &case.plan, &case.tag, degree);
        }
    }
}

#[test]
fn fig4_plans_agree_at_every_degree() {
    // The database is generated once per query and shared across the
    // degree sweep — only the optimization (and hence the plan's
    // gather placement) changes with the degree.
    for input in fig4_inputs(&[2, 3], 0..2, false) {
        for degree in thread_counts() {
            let model = RelModel::new(input.catalog.clone(), fig4_options(degree));
            let tag = format!("{} deg={degree}", input.tag);
            let plan = optimize_plan(&model, &input.expr, input.goal.clone(), &tag);
            assert_parallel_agrees(&input.db, &plan, &tag, degree);
        }
    }
}

/// Sorted goals: the gather's nondeterministic interleaving must be
/// invisible through the sort above it.
#[test]
fn fig4_sorted_goals_preserve_order_at_every_degree() {
    for input in fig4_inputs(&[2], 0..2, true) {
        for degree in thread_counts() {
            let model = RelModel::new(input.catalog.clone(), fig4_options(degree));
            let tag = format!("{} deg={degree}", input.tag);
            let plan = optimize_plan(&model, &input.expr, input.goal.clone(), &tag);
            assert!(
                !plan.delivered.sort.is_empty(),
                "{tag}: expected a sort-delivering plan"
            );
            assert_parallel_agrees(&input.db, &plan, &tag, degree);
        }
    }
}

/// At degree > 1 with default options the optimizer must actually emit
/// gather plans for at least one golden query — otherwise this suite
/// silently tests nothing but serial execution.
#[test]
fn parallel_degree_produces_gather_plans() {
    use volcano_rel::RelAlg;
    fn has_gather(plan: &RelPlan) -> bool {
        matches!(plan.alg, RelAlg::Gather(_)) || plan.inputs.iter().any(has_gather)
    }
    let cases = sql_cases(options(8));
    let n = cases.iter().filter(|c| has_gather(&c.plan)).count();
    assert!(
        n >= 1,
        "expected at least one gather plan among {} golden queries at degree 8",
        cases.len()
    );
    // And degree 1 must stay bit-identical serial: no gather anywhere.
    for case in sql_cases(options(1)) {
        assert!(
            !has_gather(&case.plan),
            "{}: degree 1 must never emit a gather",
            case.tag
        );
    }
}

/// Satellite proof for the parallel partition merge: a hash-join build
/// under a gather merges its 32 hash partitions on a pool of workers,
/// not serially on one thread. The [`volcano_exec::MorselStats`]
/// counters are the evidence: `merge_workers` records the pool size of
/// the merge phase and `partition_merges` counts every partition merged
/// through the claim-a-partition loop.
#[test]
fn hash_join_partition_merge_runs_in_parallel() {
    use volcano_exec::{collect_batches, compile_batch};
    use volcano_rel::RelAlg;

    fn join_under_gather(plan: &RelPlan, under: bool) -> bool {
        let under = under || matches!(plan.alg, RelAlg::Gather(n) if n > 1);
        (under && matches!(plan.alg, RelAlg::HybridHashJoin(_)))
            || plan.inputs.iter().any(|c| join_under_gather(c, under))
    }

    let degree = 8;
    let mut builds_checked = 0usize;
    for case in sql_cases(options(degree)) {
        if !join_under_gather(&case.plan, false) {
            continue;
        }
        let oracle = case.db.execute(&case.plan);
        let compiled = compile_batch(&case.db, &case.plan, BatchConfig::default());
        let mut op = compiled.operator;
        let rows = collect_batches(op.as_mut());
        assert_same_multiset(&oracle, &rows, &case.tag);
        for g in &compiled.gathers {
            if g.merge_workers() == 0 {
                // A gather whose region contains no join build has no
                // merge phase.
                continue;
            }
            assert_eq!(
                g.merge_workers(),
                degree,
                "{}: merge phase must use the full worker pool",
                case.tag
            );
            assert!(
                g.partition_merges() >= 32,
                "{}: every one of the 32 hash partitions must be merged \
                 through the parallel claim loop (got {})",
                case.tag,
                g.partition_merges()
            );
            builds_checked += 1;
        }
    }
    assert!(
        builds_checked > 0,
        "no parallel hash-join build appeared among the golden queries at degree 8"
    );
}
