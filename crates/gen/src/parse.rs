//! Parser for the model-specification language.

use std::fmt;

use crate::expr::Expr;
use crate::spec::{
    EnforcerSpec, ImplSpec, ModelSpec, OperatorSpec, PatNode, PropSet, TransformSpec,
};

/// Specification errors (lexical, syntactic, or semantic).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Var(String),
    Semi,
    Comma,
    Colon,
    Arrow,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Eq,
    Plus,
    Minus,
    Star,
    Slash,
}

fn lex(input: &str) -> Result<Vec<Tok>, SpecError> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                out.push(Tok::Arrow);
                i += 2;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '?' => {
                i += 1;
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if start == i {
                    return err("expected variable name after '?'");
                }
                out.push(Tok::Var(chars[start..i].iter().collect()));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                match text.parse() {
                    Ok(n) => out.push(Tok::Num(n)),
                    Err(_) => return err(format!("bad number {text:?}")),
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), SpecError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SpecError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => err(format!("expected {what}, found {other:?}")),
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// Parse a model specification.
pub fn parse_spec(input: &str) -> Result<ModelSpec, SpecError> {
    let toks = lex(input)?;
    let mut p = P { toks, pos: 0 };
    let mut spec = ModelSpec::default();

    if !p.eat_ident("model") {
        return err("specification must start with `model <name>;`");
    }
    spec.name = p.ident("model name")?;
    p.expect(Tok::Semi, "';'")?;

    while let Some(tok) = p.peek().cloned() {
        let Tok::Ident(kw) = tok else {
            return err(format!("expected a declaration, found {tok:?}"));
        };
        p.pos += 1;
        match kw.as_str() {
            "operator" => {
                let name = p.ident("operator name")?;
                let arity = match p.bump() {
                    Some(Tok::Num(n)) if n >= 0.0 && n.fract() == 0.0 => n as usize,
                    other => return err(format!("expected arity, found {other:?}")),
                };
                p.expect(Tok::Semi, "';'")?;
                if spec.op_by_name(&name).is_some() {
                    return err(format!("duplicate operator {name:?}"));
                }
                spec.operators.push(OperatorSpec {
                    name,
                    arity,
                    card: None,
                });
            }
            "prop" => {
                let name = p.ident("property name")?;
                p.expect(Tok::Semi, "';'")?;
                if spec.prop_by_name(&name).is_some() {
                    return err(format!("duplicate property {name:?}"));
                }
                spec.properties.push(name);
            }
            "card" => {
                let name = p.ident("operator name")?;
                let op = spec.op_by_name(&name).ok_or_else(|| SpecError {
                    message: format!("card rule for unknown operator {name:?}"),
                })?;
                p.expect(Tok::Eq, "'='")?;
                let e = parse_expr(&mut p)?;
                p.expect(Tok::Semi, "';'")?;
                spec.operators[op].card = Some(e);
            }
            "transform" => {
                let name = p.ident("rule name")?;
                p.expect(Tok::Colon, "':'")?;
                let lhs = parse_pattern(&mut p, &spec)?;
                p.expect(Tok::Arrow, "'->'")?;
                let rhs = parse_pattern(&mut p, &spec)?;
                p.expect(Tok::Semi, "';'")?;
                spec.transforms.push(TransformSpec { name, lhs, rhs });
            }
            "impl" => {
                let opname = p.ident("operator name")?;
                let op = spec.op_by_name(&opname).ok_or_else(|| SpecError {
                    message: format!("impl for unknown operator {opname:?}"),
                })?;
                p.expect(Tok::Arrow, "'->'")?;
                let algorithm = p.ident("algorithm name")?;
                p.expect(Tok::LBrace, "'{'")?;
                let mut requires = Vec::new();
                let mut delivers = PropSet::None;
                let mut cost = None;
                while p.peek() != Some(&Tok::RBrace) {
                    let field = p.ident("impl field (requires/delivers/cost)")?;
                    match field.as_str() {
                        "requires" => {
                            if p.peek() != Some(&Tok::Semi) {
                                requires.push(parse_propset(&mut p, &spec)?);
                                while p.peek() == Some(&Tok::Comma) {
                                    p.pos += 1;
                                    requires.push(parse_propset(&mut p, &spec)?);
                                }
                            }
                            p.expect(Tok::Semi, "';'")?;
                        }
                        "delivers" => {
                            delivers = parse_propset(&mut p, &spec)?;
                            p.expect(Tok::Semi, "';'")?;
                        }
                        "cost" => {
                            cost = Some(parse_expr(&mut p)?);
                            p.expect(Tok::Semi, "';'")?;
                        }
                        other => return err(format!("unknown impl field {other:?}")),
                    }
                }
                p.expect(Tok::RBrace, "'}'")?;
                spec.impls.push(ImplSpec {
                    op,
                    algorithm,
                    requires,
                    delivers,
                    cost: cost.ok_or_else(|| SpecError {
                        message: "impl block needs a cost".to_string(),
                    })?,
                });
            }
            "enforcer" => {
                let name = p.ident("enforcer name")?;
                p.expect(Tok::LBrace, "'{'")?;
                let mut enforces = None;
                let mut cost = None;
                while p.peek() != Some(&Tok::RBrace) {
                    let field = p.ident("enforcer field (enforces/cost)")?;
                    match field.as_str() {
                        "enforces" => {
                            let prop = p.ident("property name")?;
                            enforces = Some(spec.prop_by_name(&prop).ok_or_else(|| SpecError {
                                message: format!("unknown property {prop:?}"),
                            })?);
                            p.expect(Tok::Semi, "';'")?;
                        }
                        "cost" => {
                            cost = Some(parse_expr(&mut p)?);
                            p.expect(Tok::Semi, "';'")?;
                        }
                        other => return err(format!("unknown enforcer field {other:?}")),
                    }
                }
                p.expect(Tok::RBrace, "'}'")?;
                spec.enforcers.push(EnforcerSpec {
                    name,
                    enforces: enforces.ok_or_else(|| SpecError {
                        message: "enforcer needs an `enforces` clause".to_string(),
                    })?,
                    cost: cost.ok_or_else(|| SpecError {
                        message: "enforcer needs a cost".to_string(),
                    })?,
                });
            }
            other => return err(format!("unknown declaration {other:?}")),
        }
    }

    spec.validate().map_err(|m| SpecError { message: m })?;
    Ok(spec)
}

fn parse_propset(p: &mut P, spec: &ModelSpec) -> Result<PropSet, SpecError> {
    let name = p.ident("property set (any/none/pass/<property>)")?;
    match name.as_str() {
        "any" | "none" => Ok(PropSet::None),
        "pass" => Ok(PropSet::Pass),
        other => spec
            .prop_by_name(other)
            .map(PropSet::Prop)
            .ok_or_else(|| SpecError {
                message: format!("unknown property {other:?}"),
            }),
    }
}

fn parse_pattern(p: &mut P, spec: &ModelSpec) -> Result<PatNode, SpecError> {
    match p.bump() {
        Some(Tok::Var(v)) => Ok(PatNode::Var(v)),
        Some(Tok::Ident(name)) => {
            let op = spec.op_by_name(&name).ok_or_else(|| SpecError {
                message: format!("unknown operator {name:?} in pattern"),
            })?;
            let mut inputs = Vec::new();
            if p.peek() == Some(&Tok::LParen) {
                p.pos += 1;
                if p.peek() != Some(&Tok::RParen) {
                    inputs.push(parse_pattern(p, spec)?);
                    while p.peek() == Some(&Tok::Comma) {
                        p.pos += 1;
                        inputs.push(parse_pattern(p, spec)?);
                    }
                }
                p.expect(Tok::RParen, "')'")?;
            }
            Ok(PatNode::Op { op, inputs })
        }
        other => err(format!("expected a pattern, found {other:?}")),
    }
}

fn parse_expr(p: &mut P) -> Result<Expr, SpecError> {
    parse_add(p)
}

fn parse_add(p: &mut P) -> Result<Expr, SpecError> {
    let mut left = parse_mul(p)?;
    loop {
        match p.peek() {
            Some(Tok::Plus) => {
                p.pos += 1;
                let right = parse_mul(p)?;
                left = Expr::Add(Box::new(left), Box::new(right));
            }
            Some(Tok::Minus) => {
                p.pos += 1;
                let right = parse_mul(p)?;
                left = Expr::Sub(Box::new(left), Box::new(right));
            }
            _ => return Ok(left),
        }
    }
}

fn parse_mul(p: &mut P) -> Result<Expr, SpecError> {
    let mut left = parse_atom(p)?;
    loop {
        match p.peek() {
            Some(Tok::Star) => {
                p.pos += 1;
                let right = parse_atom(p)?;
                left = Expr::Mul(Box::new(left), Box::new(right));
            }
            Some(Tok::Slash) => {
                p.pos += 1;
                let right = parse_atom(p)?;
                left = Expr::Div(Box::new(left), Box::new(right));
            }
            _ => return Ok(left),
        }
    }
}

fn parse_atom(p: &mut P) -> Result<Expr, SpecError> {
    match p.bump() {
        Some(Tok::Num(n)) => Ok(Expr::Num(n)),
        Some(Tok::LParen) => {
            let e = parse_expr(p)?;
            p.expect(Tok::RParen, "')'")?;
            Ok(e)
        }
        Some(Tok::Ident(name)) => match name.as_str() {
            "out" => Ok(Expr::Output),
            "table" => Ok(Expr::Table),
            _ if name.starts_with("in") => {
                let idx: usize = name[2..].parse().map_err(|_| SpecError {
                    message: format!("bad input reference {name:?}"),
                })?;
                Ok(Expr::Input(idx))
            }
            "log2" | "min" | "max" => {
                p.expect(Tok::LParen, "'('")?;
                let a = parse_expr(p)?;
                let e = if name == "log2" {
                    Expr::Log2(Box::new(a))
                } else {
                    p.expect(Tok::Comma, "','")?;
                    let b = parse_expr(p)?;
                    if name == "min" {
                        Expr::Min(Box::new(a), Box::new(b))
                    } else {
                        Expr::Max(Box::new(a), Box::new(b))
                    }
                };
                p.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            other => err(format!("unknown name {other:?} in expression")),
        },
        other => err(format!("expected an expression, found {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The toy model of `volcano_core::toy`, as a specification file.
    pub const TOY_SPEC: &str = r#"
        model toy;
        operator get 0;
        operator select 1;
        operator join 2;
        prop sorted;

        card get = table;
        card select = in0 * 0.5;
        card join = in0 * in1 * 0.01;

        transform commute: join(?a, ?b) -> join(?b, ?a);
        transform assoc: join(join(?a, ?b), ?c) -> join(?a, join(?b, ?c));

        impl get -> file_scan { requires; delivers none; cost out; }
        impl select -> filter { requires pass; delivers pass; cost in0; }
        impl join -> hash_join { requires any, any; delivers none; cost in0 * 2 + in1; }
        impl join -> merge_join { requires sorted, sorted; delivers sorted; cost in0 + in1; }
        enforcer sort { enforces sorted; cost out * log2(out); }
    "#;

    #[test]
    fn parses_the_toy_spec() {
        let spec = parse_spec(TOY_SPEC).unwrap();
        assert_eq!(spec.name, "toy");
        assert_eq!(spec.operators.len(), 3);
        assert_eq!(spec.properties, vec!["sorted"]);
        assert_eq!(spec.transforms.len(), 2);
        assert_eq!(spec.impls.len(), 4);
        assert_eq!(spec.enforcers.len(), 1);
        assert_eq!(spec.transforms[1].lhs.vars(), vec!["a", "b", "c"]);
    }

    #[test]
    fn comments_are_ignored() {
        let spec =
            parse_spec("model m; # a comment\noperator t 0; // another\ncard t = table;").unwrap();
        assert_eq!(spec.operators.len(), 1);
    }

    #[test]
    fn arity_mismatch_in_pattern_rejected() {
        let e = parse_spec("model m; operator j 2; transform bad: j(?a) -> j(?a);").unwrap_err();
        assert!(e.message.contains("arity"), "{e}");
    }

    #[test]
    fn unbound_rhs_variable_rejected() {
        let e = parse_spec("model m; operator j 2; transform bad: j(?a, ?b) -> j(?a, ?c);")
            .unwrap_err();
        assert!(e.message.contains("unbound"), "{e}");
    }

    #[test]
    fn requires_count_checked() {
        let e = parse_spec(
            "model m; operator j 2; impl j -> x { requires any; delivers none; cost 1; }",
        )
        .unwrap_err();
        assert!(e.message.contains("requirements"), "{e}");
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(parse_spec("model m; card nope = 1;").is_err());
        assert!(parse_spec(
            "model m; operator t 0; impl t -> s { requires; delivers wat; cost 1; }"
        )
        .is_err());
        assert!(parse_spec("model m; enforcer e { enforces ghost; cost 1; }").is_err());
    }
}
