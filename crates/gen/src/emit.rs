//! The compiled backend: translate a model specification into Rust
//! source code implementing the `volcano_core` traits — the paper's
//! "optimizer source code" output (Figure 1). The emitted module is
//! self-contained apart from its `volcano_core` dependency and is meant
//! to be placed in the optimizer implementor's crate and compiled by
//! `rustc`, exactly like the generator's C output in 1993.

use std::fmt::Write as _;

use crate::spec::{ModelSpec, PatNode, PropSet};

fn camel(name: &str) -> String {
    let mut out = String::new();
    let mut up = true;
    for c in name.chars() {
        if c == '_' {
            up = true;
        } else if up {
            out.extend(c.to_uppercase());
            up = false;
        } else {
            out.push(c);
        }
    }
    out
}

fn emit_pattern(p: &PatNode, spec: &ModelSpec, out: &mut String) {
    match p {
        PatNode::Var(_) => out.push_str("Pattern::Any"),
        PatNode::Op { op, inputs } => {
            let name = &spec.operators[*op].name;
            let variant = camel(name);
            let _ = write!(
                out,
                "Pattern::op({name:?}, |op: &Op| matches!(op, Op::{variant} {{ .. }}), vec!["
            );
            for (i, input) in inputs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_pattern(input, spec, out);
            }
            out.push_str("])");
        }
    }
}

fn emit_subst(p: &PatNode, spec: &ModelSpec, vars: &[String], out: &mut String) {
    match p {
        PatNode::Var(v) => {
            let idx = vars.iter().position(|x| x == v).expect("bound var");
            let _ = write!(out, "SubstExpr::group(vars[{idx}])");
        }
        PatNode::Op { op, inputs } => {
            let variant = camel(&spec.operators[*op].name);
            let _ = write!(out, "SubstExpr::node(Op::{variant}, vec![");
            for (i, input) in inputs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_subst(input, spec, vars, out);
            }
            out.push_str("])");
        }
    }
}

/// Emit collection of `vars[i]` group bindings by structural walk over
/// the lhs.
fn emit_var_collection(lhs: &PatNode, out: &mut String) {
    // Walk: for each child position produce either a Group extraction or
    // a nested walk.
    fn walk(p: &PatNode, path: &str, out: &mut String) {
        match p {
            PatNode::Var(_) => {
                let _ = writeln!(out, "        vars.push({path}.clone().into_group());");
            }
            PatNode::Op { inputs, .. } => {
                for (i, child) in inputs.iter().enumerate() {
                    let child_path = format!("{path}.nested_or_child({i})");
                    match child {
                        PatNode::Var(_) => {
                            let _ = writeln!(
                                out,
                                "        vars.push(binding_child_group({path}, {i}));"
                            );
                        }
                        PatNode::Op { .. } => {
                            let _ =
                                writeln!(out, "        // nested operator at input {i} of {path}");
                            walk(child, &child_path, out);
                        }
                    }
                }
            }
        }
    }
    // The generated code uses a small runtime helper (emitted below) that
    // resolves child `i` of a binding path expression.
    match lhs {
        PatNode::Op { inputs, .. } => {
            for (i, child) in inputs.iter().enumerate() {
                match child {
                    PatNode::Var(_) => {
                        let _ = writeln!(out, "        vars.push(b.input_group({i}));");
                    }
                    PatNode::Op { .. } => {
                        let _ = writeln!(out, "        {{ let nb = b.nested({i});");
                        emit_var_collection_nested(child, "nb", out);
                        let _ = writeln!(out, "        }}");
                    }
                }
            }
        }
        PatNode::Var(_) => unreachable!("validated"),
    }
    let _ = walk; // silence: top-level handled explicitly
}

fn emit_var_collection_nested(p: &PatNode, var: &str, out: &mut String) {
    if let PatNode::Op { inputs, .. } = p {
        for (i, child) in inputs.iter().enumerate() {
            match child {
                PatNode::Var(_) => {
                    let _ = writeln!(out, "            vars.push({var}.input_group({i}));");
                }
                PatNode::Op { .. } => {
                    let _ = writeln!(out, "            {{ let nb2 = {var}.nested({i});");
                    emit_var_collection_nested(child, "nb2", out);
                    let _ = writeln!(out, "            }}");
                }
            }
        }
    }
}

/// Generate a self-contained Rust module implementing the specification.
pub fn emit_rust(spec: &ModelSpec) -> String {
    let mut s = String::new();
    let model = camel(&spec.name);
    let _ = writeln!(
        s,
        "//! GENERATED by the Volcano optimizer generator (volcano-gen).\n\
         //! Model specification: `{}`. Do not edit by hand.\n",
        spec.name
    );
    s.push_str(
        "use volcano_core::expr::SubstExpr;\n\
         use volcano_core::ids::GroupId;\n\
         use volcano_core::model::{Algorithm, Model, Operator};\n\
         use volcano_core::pattern::{Binding, Pattern};\n\
         use volcano_core::props::PhysicalProps;\n\
         use volcano_core::rules::{\n\
             AlgApplication, Enforcer, EnforcerApplication, ImplementationRule, RuleCtx,\n\
             TransformationRule,\n\
         };\n\n",
    );

    // Operators.
    s.push_str("/// Logical operators (generated).\n#[derive(Debug, Clone, PartialEq, Eq, Hash)]\npub enum Op {\n");
    for o in &spec.operators {
        if o.arity == 0 {
            let _ = writeln!(
                s,
                "    /// `{0}` (leaf; carries its base cardinality as bits).\n    {1}(u64),",
                o.name,
                camel(&o.name)
            );
        } else {
            let _ = writeln!(s, "    /// `{0}`.\n    {1},", o.name, camel(&o.name));
        }
    }
    s.push_str(
        "}\n\nimpl Operator for Op {\n    fn arity(&self) -> usize {\n        match self {\n",
    );
    for o in &spec.operators {
        let pat = if o.arity == 0 {
            format!("Op::{}(_)", camel(&o.name))
        } else {
            format!("Op::{}", camel(&o.name))
        };
        let _ = writeln!(s, "            {pat} => {},", o.arity);
    }
    s.push_str("        }\n    }\n\n    fn name(&self) -> &str {\n        match self {\n");
    for o in &spec.operators {
        let pat = if o.arity == 0 {
            format!("Op::{}(_)", camel(&o.name))
        } else {
            format!("Op::{}", camel(&o.name))
        };
        let _ = writeln!(s, "            {pat} => {:?},", o.name);
    }
    s.push_str("        }\n    }\n}\n\n");

    // Algorithms.
    s.push_str("/// Physical operators (generated).\n#[derive(Debug, Clone, PartialEq, Eq, Hash)]\npub enum Alg {\n");
    for i in &spec.impls {
        let _ = writeln!(
            s,
            "    /// `{0}`.\n    {1},",
            i.algorithm,
            camel(&i.algorithm)
        );
    }
    for e in &spec.enforcers {
        let _ = writeln!(
            s,
            "    /// Enforcer `{0}`.\n    {1},",
            e.name,
            camel(&e.name)
        );
    }
    s.push_str(
        "}\n\nimpl Algorithm for Alg {\n    fn name(&self) -> &str {\n        match self {\n",
    );
    for i in &spec.impls {
        let _ = writeln!(
            s,
            "            Alg::{} => {:?},",
            camel(&i.algorithm),
            i.algorithm
        );
    }
    for e in &spec.enforcers {
        let _ = writeln!(s, "            Alg::{} => {:?},", camel(&e.name), e.name);
    }
    s.push_str("        }\n    }\n}\n\n");

    // Properties.
    s.push_str(
        "/// Physical property vector: one bit per declared property.\n\
         #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]\n\
         pub struct Props(pub u32);\n\n",
    );
    for (i, p) in spec.properties.iter().enumerate() {
        let _ = writeln!(
            s,
            "/// Bit for property `{p}`.\npub const {}: u32 = 1 << {i};",
            p.to_uppercase()
        );
    }
    s.push_str(
        "\nimpl PhysicalProps for Props {\n    fn any() -> Self {\n        Props(0)\n    }\n\n\
         \x20   fn satisfies(&self, required: &Self) -> bool {\n        self.0 & required.0 == required.0\n    }\n}\n\n\
         /// Logical properties: estimated cardinality.\n\
         #[derive(Debug, Clone, Copy)]\npub struct Logical {\n    /// Estimated rows.\n    pub card: f64,\n}\n\n",
    );

    // Transformations.
    for t in &spec.transforms {
        let vars = t.lhs.vars();
        let strukt = camel(&t.name);
        let _ = writeln!(s, "/// Transformation `{}`.\npub struct {strukt} {{\n    pattern: Pattern<{model}>,\n}}\n", t.name);
        let mut pat = String::new();
        emit_pattern(&t.lhs, spec, &mut pat);
        let _ = writeln!(
            s,
            "impl {strukt} {{\n    /// Construct the rule.\n    pub fn new() -> Self {{\n        {strukt} {{ pattern: {pat} }}\n    }}\n}}\n"
        );
        let mut collect = String::new();
        emit_var_collection(&t.lhs, &mut collect);
        let mut subst = String::new();
        emit_subst(&t.rhs, spec, &vars, &mut subst);
        let _ = writeln!(
            s,
            "impl TransformationRule<{model}> for {strukt} {{\n\
             \x20   fn name(&self) -> &'static str {{\n        {:?}\n    }}\n\n\
             \x20   fn pattern(&self) -> &Pattern<{model}> {{\n        &self.pattern\n    }}\n\n\
             \x20   fn apply(&self, b: &Binding<{model}>, _ctx: &RuleCtx<'_, {model}>) -> Vec<SubstExpr<{model}>> {{\n\
             \x20       let mut vars: Vec<GroupId> = Vec::new();\n{collect}\
             \x20       vec![{subst}]\n    }}\n}}\n",
            t.name
        );
    }

    // Implementation rules.
    for (idx, i) in spec.impls.iter().enumerate() {
        let opspec = &spec.operators[i.op];
        let strukt = format!("{}Rule", camel(&i.algorithm));
        let rule_name = format!("{}_to_{}", opspec.name, i.algorithm);
        let op_variant = camel(&opspec.name);
        let op_match = if opspec.arity == 0 {
            format!("Op::{op_variant}(_)")
        } else {
            format!("Op::{op_variant}")
        };
        let anys = vec!["Pattern::Any"; opspec.arity].join(", ");
        let resolve = |ps: &PropSet| match ps {
            PropSet::None => "Props(0)".to_string(),
            PropSet::Pass => "*required".to_string(),
            PropSet::Prop(p) => format!("Props({})", spec.properties[*p].to_uppercase()),
        };
        let requires: Vec<String> = i.requires.iter().map(resolve).collect();
        let delivers = resolve(&i.delivers);
        let _ = writeln!(
            s,
            "/// Implementation rule {idx}: `{rule_name}`.\npub struct {strukt} {{\n    pattern: Pattern<{model}>,\n}}\n\n\
             impl {strukt} {{\n    /// Construct the rule.\n    pub fn new() -> Self {{\n\
             \x20       {strukt} {{ pattern: Pattern::op({:?}, |op: &Op| matches!(op, {op_match}), vec![{anys}]) }}\n    }}\n}}\n",
            opspec.name
        );
        let _ = writeln!(
            s,
            "impl ImplementationRule<{model}> for {strukt} {{\n\
             \x20   fn name(&self) -> &'static str {{\n        {rule_name:?}\n    }}\n\n\
             \x20   fn pattern(&self) -> &Pattern<{model}> {{\n        &self.pattern\n    }}\n\n\
             \x20   fn applies(&self, _b: &Binding<{model}>, required: &Props, _ctx: &RuleCtx<'_, {model}>) -> Vec<AlgApplication<{model}>> {{\n\
             \x20       let delivers = {delivers};\n\
             \x20       if !delivers.satisfies(required) {{\n            return vec![];\n        }}\n\
             \x20       vec![AlgApplication {{\n            alg: Alg::{alg},\n            input_props: vec![{reqs}],\n            delivers,\n        }}]\n    }}\n\n\
             \x20   fn cost(&self, _app: &AlgApplication<{model}>, b: &Binding<{model}>, ctx: &RuleCtx<'_, {model}>) -> f64 {{\n\
             \x20       let inputs: Vec<f64> = b.leaf_groups().iter().map(|&g| ctx.logical_props(g).card).collect();\n\
             \x20       let output = ctx.memo().logical_props(ctx.memo().group_of(b.expr)).card;\n\
             \x20       let table = leaf_card(&b.op);\n\
             \x20       let _ = (&inputs, output, table);\n\
             \x20       {cost}\n    }}\n}}\n",
            alg = camel(&i.algorithm),
            reqs = requires.join(", "),
            cost = i.cost.to_rust(),
        );
    }

    // Enforcers.
    for e in &spec.enforcers {
        let strukt = format!("{}Enforcer", camel(&e.name));
        let bit = spec.properties[e.enforces].to_uppercase();
        let _ = writeln!(
            s,
            "/// Enforcer `{name}` for property `{prop}`.\npub struct {strukt};\n\n\
             impl Enforcer<{model}> for {strukt} {{\n\
             \x20   fn name(&self) -> &'static str {{\n        {name:?}\n    }}\n\n\
             \x20   fn applies(&self, required: &Props, _group: GroupId, _ctx: &RuleCtx<'_, {model}>) -> Vec<EnforcerApplication<{model}>> {{\n\
             \x20       if required.0 & {bit} == 0 {{\n            return vec![];\n        }}\n\
             \x20       vec![EnforcerApplication {{\n\
             \x20           alg: Alg::{alg},\n\
             \x20           relaxed: Props(required.0 & !{bit}),\n\
             \x20           excluded: Props({bit}),\n\
             \x20           delivers: *required,\n        }}]\n    }}\n\n\
             \x20   fn cost(&self, _app: &EnforcerApplication<{model}>, group: GroupId, ctx: &RuleCtx<'_, {model}>) -> f64 {{\n\
             \x20       let card = ctx.logical_props(group).card;\n\
             \x20       let inputs = [card];\n        let output = card;\n        let table = 0.0f64;\n\
             \x20       let _ = (&inputs, output, table);\n\
             \x20       {cost}\n    }}\n}}\n",
            name = e.name,
            prop = spec.properties[e.enforces],
            alg = camel(&e.name),
            cost = e.cost.to_rust(),
        );
    }

    // Leaf-card helper + cardinality derivation + the model itself.
    s.push_str("fn leaf_card(op: &Op) -> f64 {\n    match op {\n");
    for o in &spec.operators {
        if o.arity == 0 {
            let _ = writeln!(
                s,
                "        Op::{}(bits) => f64::from_bits(*bits),",
                camel(&o.name)
            );
        }
    }
    s.push_str("        _ => 0.0,\n    }\n}\n\n");

    let _ = writeln!(
        s,
        "/// The generated model: operators, rules, ADTs, assembled.\npub struct {model} {{\n\
         \x20   transforms: Vec<Box<dyn TransformationRule<{model}>>>,\n\
         \x20   impls: Vec<Box<dyn ImplementationRule<{model}>>>,\n\
         \x20   enforcers: Vec<Box<dyn Enforcer<{model}>>>,\n}}\n"
    );
    s.push_str(&format!(
        "impl {model} {{\n    /// Assemble the generated optimizer model.\n    pub fn new() -> Self {{\n        {model} {{\n"
    ));
    s.push_str("            transforms: vec![");
    for t in &spec.transforms {
        let _ = write!(s, "Box::new({}::new()), ", camel(&t.name));
    }
    s.push_str("],\n            impls: vec![");
    for i in &spec.impls {
        let _ = write!(s, "Box::new({}Rule::new()), ", camel(&i.algorithm));
    }
    s.push_str("],\n            enforcers: vec![");
    for e in &spec.enforcers {
        let _ = write!(s, "Box::new({}Enforcer), ", camel(&e.name));
    }
    s.push_str("],\n        }\n    }\n}\n\n");

    let _ = writeln!(
        s,
        "impl Model for {model} {{\n\
         \x20   type Op = Op;\n    type Alg = Alg;\n    type LogicalProps = Logical;\n\
         \x20   type PhysProps = Props;\n    type Cost = f64;\n\n\
         \x20   fn derive_logical_props(&self, op: &Op, input_props: &[&Logical]) -> Logical {{\n\
         \x20       let inputs: Vec<f64> = input_props.iter().map(|l| l.card).collect();\n\
         \x20       let table = leaf_card(op);\n\
         \x20       let output = 0.0f64;\n\
         \x20       let _ = (&inputs, table, output);\n\
         \x20       let card = match op {{"
    );
    for o in &spec.operators {
        let pat = if o.arity == 0 {
            format!("Op::{}(_)", camel(&o.name))
        } else {
            format!("Op::{}", camel(&o.name))
        };
        let body = match &o.card {
            Some(e) => e.to_rust(),
            None if o.arity == 0 => "table".to_string(),
            None => "inputs[0]".to_string(),
        };
        let _ = writeln!(s, "            {pat} => {body},");
    }
    s.push_str(
        "        };\n        Logical { card }\n    }\n\n\
         \x20   fn transformations(&self) -> &[Box<dyn TransformationRule<Self>>] {\n        &self.transforms\n    }\n\n\
         \x20   fn implementations(&self) -> &[Box<dyn ImplementationRule<Self>>] {\n        &self.impls\n    }\n\n\
         \x20   fn enforcers(&self) -> &[Box<dyn Enforcer<Self>>] {\n        &self.enforcers\n    }\n}\n",
    );
    s
}
