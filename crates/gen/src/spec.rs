//! The intermediate representation of a model specification — the
//! structured form of the generator's input file.

use crate::expr::Expr;

/// A pattern tree in a transformation rule.
#[derive(Debug, Clone, PartialEq)]
pub enum PatNode {
    /// A variable (`?a`) binding an equivalence class.
    Var(String),
    /// An operator node with sub-patterns.
    Op {
        /// Operator index into [`ModelSpec::operators`].
        op: usize,
        /// Sub-patterns, one per input.
        inputs: Vec<PatNode>,
    },
}

impl PatNode {
    /// All variable names, in left-to-right order of first occurrence.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            PatNode::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            PatNode::Op { inputs, .. } => {
                for i in inputs {
                    i.collect_vars(out);
                }
            }
        }
    }
}

/// A logical operator declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSpec {
    /// Operator name.
    pub name: String,
    /// Number of inputs.
    pub arity: usize,
    /// Output cardinality rule (defaults to `in0` for unary, `table` for
    /// 0-ary, product-based otherwise if unspecified).
    pub card: Option<Expr>,
}

/// A transformation rule: `lhs -> rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformSpec {
    /// Rule name.
    pub name: String,
    /// The matched pattern.
    pub lhs: PatNode,
    /// The substitute (same variables).
    pub rhs: PatNode,
}

/// What an implementation rule requires of one input or delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropSet {
    /// No requirements / delivers nothing (`any` / `none`).
    None,
    /// The required vector is passed through (`pass`): the input must
    /// satisfy exactly what the goal requires, and the same is delivered.
    Pass,
    /// A specific property (index into [`ModelSpec::properties`]).
    Prop(usize),
}

/// An implementation rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplSpec {
    /// Implemented operator (index).
    pub op: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Required input properties, one entry per input.
    pub requires: Vec<PropSet>,
    /// Delivered properties.
    pub delivers: PropSet,
    /// Local cost expression.
    pub cost: Expr,
}

/// An enforcer.
#[derive(Debug, Clone, PartialEq)]
pub struct EnforcerSpec {
    /// Enforcer name.
    pub name: String,
    /// The property it enforces (index).
    pub enforces: usize,
    /// Cost expression (`in0` = the enforced stream's cardinality).
    pub cost: Expr,
}

/// A complete model specification.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelSpec {
    /// Model name.
    pub name: String,
    /// Logical operators.
    pub operators: Vec<OperatorSpec>,
    /// Boolean physical properties.
    pub properties: Vec<String>,
    /// Transformation rules.
    pub transforms: Vec<TransformSpec>,
    /// Implementation rules.
    pub impls: Vec<ImplSpec>,
    /// Enforcers.
    pub enforcers: Vec<EnforcerSpec>,
}

impl ModelSpec {
    /// Operator index by name.
    pub fn op_by_name(&self, name: &str) -> Option<usize> {
        self.operators.iter().position(|o| o.name == name)
    }

    /// Property index by name.
    pub fn prop_by_name(&self, name: &str) -> Option<usize> {
        self.properties.iter().position(|p| p == name)
    }

    /// Basic well-formedness checks (arity of patterns, pass usage,
    /// variable preservation); returns a description of the first
    /// problem.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.transforms {
            self.check_pattern(&t.lhs, &t.name)?;
            self.check_pattern(&t.rhs, &t.name)?;
            self.check_no_leaf_ops(&t.rhs, &t.name)?;
            let lv = t.lhs.vars();
            for v in t.rhs.vars() {
                if !lv.contains(&v) {
                    return Err(format!(
                        "rule {}: variable ?{v} on the right side is unbound",
                        t.name
                    ));
                }
            }
            if matches!(t.lhs, PatNode::Var(_)) {
                return Err(format!("rule {}: left side must be an operator", t.name));
            }
        }
        for i in &self.impls {
            let arity = self.operators[i.op].arity;
            if i.requires.len() != arity {
                return Err(format!(
                    "impl {}: {} requirements for arity-{arity} operator",
                    i.algorithm,
                    i.requires.len()
                ));
            }
            if i.delivers == PropSet::Pass && !i.requires.contains(&PropSet::Pass) {
                return Err(format!(
                    "impl {}: `delivers pass` needs a `requires pass` input",
                    i.algorithm
                ));
            }
        }
        Ok(())
    }

    /// 0-ary operators carry per-instance data (base cardinality), so a
    /// substitute cannot synthesize them — it may only *reference* bound
    /// classes.
    fn check_no_leaf_ops(&self, p: &PatNode, rule: &str) -> Result<(), String> {
        if let PatNode::Op { op, inputs } = p {
            if self.operators[*op].arity == 0 {
                return Err(format!(
                    "rule {rule}: substitute may not create 0-ary operator {}",
                    self.operators[*op].name
                ));
            }
            for i in inputs {
                self.check_no_leaf_ops(i, rule)?;
            }
        }
        Ok(())
    }

    fn check_pattern(&self, p: &PatNode, rule: &str) -> Result<(), String> {
        if let PatNode::Op { op, inputs } = p {
            let arity = self.operators[*op].arity;
            if inputs.len() != arity {
                return Err(format!(
                    "rule {rule}: operator {} used with {} inputs, arity is {arity}",
                    self.operators[*op].name,
                    inputs.len()
                ));
            }
            for i in inputs {
                self.check_pattern(i, rule)?;
            }
        }
        Ok(())
    }
}
