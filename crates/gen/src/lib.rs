//! # volcano-gen — the optimizer generator
//!
//! The literal Figure 1 paradigm: "a model specification is translated
//! into optimizer source code, which is then compiled and linked with the
//! other DBMS software".
//!
//! * [`spec`] — the intermediate representation of a model specification:
//!   operators, boolean physical properties, transformation rules
//!   (pattern → substitute), implementation rules with applicability
//!   (required/delivered property sets) and cost expressions, enforcers,
//!   and cardinality rules.
//! * [`parse`] — the specification language. Example:
//!
//!   ```text
//!   model toy;
//!   operator get 0;     operator select 1;    operator join 2;
//!   prop sorted;
//!
//!   card get = table;
//!   card select = in0 * 0.5;
//!   card join = in0 * in1 * 0.01;
//!
//!   transform commute: join(?a, ?b) -> join(?b, ?a);
//!   transform assoc: join(join(?a, ?b), ?c) -> join(?a, join(?b, ?c));
//!
//!   impl get -> file_scan { requires; delivers none; cost out; }
//!   impl select -> filter { requires pass; delivers pass; cost in0; }
//!   impl join -> hash_join { requires any, any; delivers none;
//!                            cost in0 * 2 + in1; }
//!   impl join -> merge_join { requires sorted, sorted; delivers sorted;
//!                             cost in0 + in1; }
//!   enforcer sort { enforces sorted; cost in0 * log2(in0); }
//!   ```
//!
//! * [`dynamic`] — the *interpreted* backend: a [`dynamic::DynModel`]
//!   implements `volcano_core::Model` directly from the IR, so a freshly
//!   parsed specification optimizes queries without a compile step (the
//!   paper's interpretation-vs-compilation trade-off, §2.1 decision 4,
//!   made available in both flavours).
//! * [`emit`] — the *compiled* backend: emits Rust source implementing
//!   the same model against the `volcano-core` traits, for inclusion in a
//!   build (golden-tested; compiling the output is the user's build
//!   system's job, exactly as in the paper's paradigm).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dynamic;
pub mod emit;
pub mod expr;
pub mod parse;
pub mod spec;

pub use dynamic::{DynModel, DynOp, DynQueryBuilder};
pub use emit::emit_rust;
pub use parse::{parse_spec, SpecError};
pub use spec::ModelSpec;
