//! The interpreted backend: a [`DynModel`] implements
//! `volcano_core::Model` directly from a parsed [`ModelSpec`], so a
//! specification can be loaded and used at run time without generating
//! and compiling source code.
//!
//! Rule and operator names live for the process lifetime (they are leaked
//! once per model construction) because the core rule traits expose
//! `&'static str` names — the compiled-rule-set design (§2.1 decision 4)
//! leaks through here, deliberately.

use std::sync::Arc;

use volcano_core::expr::SubstExpr;
use volcano_core::ids::GroupId;
use volcano_core::model::{Algorithm, Model, Operator};
use volcano_core::pattern::{Binding, BindingChild, Pattern};
use volcano_core::props::PhysicalProps;
use volcano_core::rules::{
    AlgApplication, Enforcer, EnforcerApplication, ImplementationRule, RuleCtx, TransformationRule,
};
use volcano_core::ExprTree;

use crate::expr::EvalCtx;
use crate::spec::{ModelSpec, PatNode, PropSet};

/// A logical operator instance of a dynamic model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DynOp {
    /// Operator index in the spec.
    pub op: usize,
    /// Arity (duplicated from the spec so `Operator::arity` needs no
    /// spec access).
    pub arity: usize,
    /// Operator name (shared).
    pub name: Arc<str>,
    /// Per-leaf base cardinality for 0-ary operators, as IEEE-754 bits
    /// (so the operator stays `Eq + Hash`).
    pub table_bits: u64,
}

impl DynOp {
    /// The leaf cardinality.
    pub fn table(&self) -> f64 {
        f64::from_bits(self.table_bits)
    }
}

impl Operator for DynOp {
    fn arity(&self) -> usize {
        self.arity
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A physical operator of a dynamic model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DynAlg {
    /// Algorithm or enforcer name.
    pub name: Arc<str>,
}

impl Algorithm for DynAlg {
    fn name(&self) -> &str {
        &self.name
    }
}

/// Physical property vector: a bitmask over the spec's boolean
/// properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DynProps(pub u32);

impl PhysicalProps for DynProps {
    fn any() -> Self {
        DynProps(0)
    }

    fn satisfies(&self, required: &Self) -> bool {
        self.0 & required.0 == required.0
    }
}

/// Logical properties: estimated cardinality.
#[derive(Debug, Clone, Copy)]
pub struct DynLogical {
    /// Estimated rows/objects.
    pub card: f64,
}

fn leak(s: &str) -> &'static str {
    Box::leak(s.to_string().into_boxed_str())
}

/// Collect `variable → group` bindings by walking a pattern and its
/// binding in lockstep.
fn collect_vars(pat: &PatNode, child: &BindingChild<DynModel>, out: &mut Vec<(String, GroupId)>) {
    match (pat, child) {
        (PatNode::Var(v), BindingChild::Group(g)) => out.push((v.clone(), *g)),
        (PatNode::Op { inputs, .. }, BindingChild::Bound(b)) => {
            for (p, c) in inputs.iter().zip(b.children.iter()) {
                collect_vars(p, c, out);
            }
        }
        _ => panic!("pattern and binding shapes diverged"),
    }
}

struct DynTransform {
    name: &'static str,
    lhs: PatNode,
    rhs: PatNode,
    pattern: Pattern<DynModel>,
    /// `(index, arity, name)` per spec operator, for substitute
    /// construction.
    ops_table: Vec<(usize, usize, Arc<str>)>,
}

impl DynTransform {
    fn build_subst(
        &self,
        node: &PatNode,
        vars: &[(String, GroupId)],
        ops: &[(usize, usize, Arc<str>)],
    ) -> SubstExpr<DynModel> {
        match node {
            PatNode::Var(v) => {
                let g = vars
                    .iter()
                    .find(|(name, _)| name == v)
                    .map(|(_, g)| *g)
                    .expect("validated: rhs variables bound on lhs");
                SubstExpr::group(g)
            }
            PatNode::Op { op, inputs } => {
                let (idx, arity, name) = &ops[*op];
                SubstExpr::node(
                    DynOp {
                        op: *idx,
                        arity: *arity,
                        name: name.clone(),
                        table_bits: 0,
                    },
                    inputs
                        .iter()
                        .map(|i| self.build_subst(i, vars, ops))
                        .collect(),
                )
            }
        }
    }
}

impl TransformationRule<DynModel> for DynTransform {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pattern(&self) -> &Pattern<DynModel> {
        &self.pattern
    }

    fn apply(
        &self,
        b: &Binding<DynModel>,
        ctx: &RuleCtx<'_, DynModel>,
    ) -> Vec<SubstExpr<DynModel>> {
        let _ = ctx;
        let mut vars = Vec::new();
        let PatNode::Op { inputs, .. } = &self.lhs else {
            unreachable!("validated: lhs is an operator")
        };
        for (p, c) in inputs.iter().zip(b.children.iter()) {
            collect_vars(p, c, &mut vars);
        }
        // The ops table is reconstructed lazily from the spec via the
        // model; the transform itself carries it (set at construction).
        vec![self.build_subst(&self.rhs, &vars, &self.ops_table)]
    }
}

struct DynImpl {
    name: &'static str,
    pattern: Pattern<DynModel>,
    requires: Vec<PropSet>,
    delivers: PropSet,
    cost: crate::expr::Expr,
    alg_name: Arc<str>,
}

impl ImplementationRule<DynModel> for DynImpl {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pattern(&self) -> &Pattern<DynModel> {
        &self.pattern
    }

    fn applies(
        &self,
        _b: &Binding<DynModel>,
        required: &DynProps,
        _ctx: &RuleCtx<'_, DynModel>,
    ) -> Vec<AlgApplication<DynModel>> {
        let resolve = |ps: &PropSet| match ps {
            PropSet::None => DynProps(0),
            PropSet::Pass => *required,
            PropSet::Prop(p) => DynProps(1 << p),
        };
        let delivers = resolve(&self.delivers);
        if !delivers.satisfies(required) {
            return vec![];
        }
        vec![AlgApplication {
            alg: DynAlg {
                name: self.alg_name.clone(),
            },
            input_props: self.requires.iter().map(resolve).collect(),
            delivers,
        }]
    }

    fn cost(
        &self,
        _app: &AlgApplication<DynModel>,
        b: &Binding<DynModel>,
        ctx: &RuleCtx<'_, DynModel>,
    ) -> f64 {
        let inputs: Vec<f64> = b
            .leaf_groups()
            .iter()
            .map(|&g| ctx.logical_props(g).card)
            .collect();
        let output = ctx.memo().logical_props(ctx.memo().group_of(b.expr)).card;
        self.cost.eval(&EvalCtx {
            inputs: &inputs,
            output,
            table: b.op.table(),
        })
    }
}

struct DynEnforcer {
    name: &'static str,
    prop: usize,
    cost: crate::expr::Expr,
    alg_name: Arc<str>,
}

impl Enforcer<DynModel> for DynEnforcer {
    fn name(&self) -> &'static str {
        self.name
    }

    fn applies(
        &self,
        required: &DynProps,
        _group: GroupId,
        _ctx: &RuleCtx<'_, DynModel>,
    ) -> Vec<EnforcerApplication<DynModel>> {
        let bit = 1u32 << self.prop;
        if required.0 & bit == 0 {
            return vec![];
        }
        vec![EnforcerApplication {
            alg: DynAlg {
                name: self.alg_name.clone(),
            },
            relaxed: DynProps(required.0 & !bit),
            excluded: DynProps(bit),
            delivers: *required,
        }]
    }

    fn cost(
        &self,
        _app: &EnforcerApplication<DynModel>,
        group: GroupId,
        ctx: &RuleCtx<'_, DynModel>,
    ) -> f64 {
        let card = ctx.logical_props(group).card;
        self.cost.eval(&EvalCtx {
            inputs: &[card],
            output: card,
            table: 0.0,
        })
    }
}

/// An interpreted model: the generated optimizer without the compile
/// step.
pub struct DynModel {
    spec: Arc<ModelSpec>,
    op_names: Vec<Arc<str>>,
    transforms: Vec<Box<dyn TransformationRule<DynModel>>>,
    impls: Vec<Box<dyn ImplementationRule<DynModel>>>,
    enforcers: Vec<Box<dyn Enforcer<DynModel>>>,
}

impl DynModel {
    /// Build an interpreted model from a validated specification.
    pub fn new(spec: ModelSpec) -> Self {
        assert!(
            spec.properties.len() <= 32,
            "at most 32 boolean properties supported"
        );
        let spec = Arc::new(spec);
        let op_names: Vec<Arc<str>> = spec
            .operators
            .iter()
            .map(|o| Arc::<str>::from(o.name.as_str()))
            .collect();
        let ops_table: Vec<(usize, usize, Arc<str>)> = spec
            .operators
            .iter()
            .enumerate()
            .map(|(i, o)| (i, o.arity, op_names[i].clone()))
            .collect();

        let transforms = spec
            .transforms
            .iter()
            .map(|t| {
                Box::new(DynTransform {
                    name: leak(&t.name),
                    lhs: t.lhs.clone(),
                    rhs: t.rhs.clone(),
                    pattern: build_pattern(&t.lhs, &op_names),
                    ops_table: ops_table.clone(),
                }) as Box<dyn TransformationRule<DynModel>>
            })
            .collect();

        let impls = spec
            .impls
            .iter()
            .map(|i| {
                let opspec = &spec.operators[i.op];
                Box::new(DynImpl {
                    name: leak(&format!("{}_to_{}", opspec.name, i.algorithm)),
                    pattern: build_pattern(
                        &PatNode::Op {
                            op: i.op,
                            inputs: (0..opspec.arity)
                                .map(|_| PatNode::Var("_".to_string()))
                                .collect(),
                        },
                        &op_names,
                    ),
                    requires: i.requires.clone(),
                    delivers: i.delivers,
                    cost: i.cost.clone(),
                    alg_name: Arc::<str>::from(i.algorithm.as_str()),
                }) as Box<dyn ImplementationRule<DynModel>>
            })
            .collect();

        let enforcers = spec
            .enforcers
            .iter()
            .map(|e| {
                Box::new(DynEnforcer {
                    name: leak(&e.name),
                    prop: e.enforces,
                    cost: e.cost.clone(),
                    alg_name: Arc::<str>::from(e.name.as_str()),
                }) as Box<dyn Enforcer<DynModel>>
            })
            .collect();

        DynModel {
            spec,
            op_names,
            transforms,
            impls,
            enforcers,
        }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Property vector with the named properties set.
    pub fn props(&self, names: &[&str]) -> DynProps {
        let mut bits = 0u32;
        for n in names {
            let i = self
                .spec
                .prop_by_name(n)
                .unwrap_or_else(|| panic!("unknown property {n:?}"));
            bits |= 1 << i;
        }
        DynProps(bits)
    }
}

fn build_pattern(p: &PatNode, op_names: &[Arc<str>]) -> Pattern<DynModel> {
    match p {
        PatNode::Var(_) => Pattern::Any,
        PatNode::Op { op, inputs } => {
            let idx = *op;
            Pattern::op(
                leak(&op_names[idx]),
                move |o: &DynOp| o.op == idx,
                inputs.iter().map(|i| build_pattern(i, op_names)).collect(),
            )
        }
    }
}

impl Model for DynModel {
    type Op = DynOp;
    type Alg = DynAlg;
    type LogicalProps = DynLogical;
    type PhysProps = DynProps;
    type Cost = f64;

    fn derive_logical_props(&self, op: &DynOp, inputs: &[&DynLogical]) -> DynLogical {
        let spec_op = &self.spec.operators[op.op];
        let input_cards: Vec<f64> = inputs.iter().map(|l| l.card).collect();
        let card = match &spec_op.card {
            Some(e) => e.eval(&EvalCtx {
                inputs: &input_cards,
                output: 0.0,
                table: op.table(),
            }),
            None => {
                if op.arity == 0 {
                    op.table()
                } else {
                    input_cards[0]
                }
            }
        };
        DynLogical { card }
    }

    fn assert_logical_props_consistent(&self, existing: &DynLogical, derived: &DynLogical) {
        debug_assert!(
            (existing.card - derived.card).abs() <= 1e-6 * existing.card.max(1.0),
            "equivalent expressions derived different cardinalities: {} vs {}",
            existing.card,
            derived.card
        );
    }

    fn transformations(&self) -> &[Box<dyn TransformationRule<Self>>] {
        &self.transforms
    }

    fn implementations(&self) -> &[Box<dyn ImplementationRule<Self>>] {
        &self.impls
    }

    fn enforcers(&self) -> &[Box<dyn Enforcer<Self>>] {
        &self.enforcers
    }
}

/// Convenience builder for dynamic-model queries.
pub struct DynQueryBuilder<'m> {
    model: &'m DynModel,
}

impl<'m> DynQueryBuilder<'m> {
    /// Builder for a model.
    pub fn new(model: &'m DynModel) -> Self {
        DynQueryBuilder { model }
    }

    /// A 0-ary operator leaf with a base cardinality.
    pub fn leaf(&self, op: &str, card: f64) -> ExprTree<DynModel> {
        let idx = self
            .model
            .spec
            .op_by_name(op)
            .unwrap_or_else(|| panic!("unknown operator {op:?}"));
        assert_eq!(self.model.spec.operators[idx].arity, 0);
        ExprTree::leaf(DynOp {
            op: idx,
            arity: 0,
            name: self.model.op_names[idx].clone(),
            table_bits: card.to_bits(),
        })
    }

    /// An interior operator node.
    pub fn node(&self, op: &str, inputs: Vec<ExprTree<DynModel>>) -> ExprTree<DynModel> {
        let idx = self
            .model
            .spec
            .op_by_name(op)
            .unwrap_or_else(|| panic!("unknown operator {op:?}"));
        ExprTree::new(
            DynOp {
                op: idx,
                arity: self.model.spec.operators[idx].arity,
                name: self.model.op_names[idx].clone(),
                table_bits: 0,
            },
            inputs,
        )
    }
}
