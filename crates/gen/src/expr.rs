//! Arithmetic expressions over cardinalities, used by cost and
//! cardinality rules in model specifications.

use std::fmt;

/// An arithmetic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Cardinality of the i-th input (`in0`, `in1`, ...).
    Input(usize),
    /// Cardinality of the output (`out`).
    Output,
    /// Per-leaf base cardinality (`table`), for 0-ary operators.
    Table,
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b`.
    Div(Box<Expr>, Box<Expr>),
    /// `log2(a)` (clamped below at 1 so empty inputs stay finite).
    Log2(Box<Expr>),
    /// `min(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
}

/// Evaluation context: input cardinalities, output cardinality, and the
/// per-leaf base cardinality.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalCtx<'a> {
    /// Input cardinalities.
    pub inputs: &'a [f64],
    /// Output cardinality.
    pub output: f64,
    /// `table` value for 0-ary operators.
    pub table: f64,
}

impl Expr {
    /// Evaluate against a context.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> f64 {
        match self {
            Expr::Num(x) => *x,
            Expr::Input(i) => *ctx.inputs.get(*i).unwrap_or_else(|| {
                panic!(
                    "expression references in{i} but operator has {} inputs",
                    ctx.inputs.len()
                )
            }),
            Expr::Output => ctx.output,
            Expr::Table => ctx.table,
            Expr::Add(a, b) => a.eval(ctx) + b.eval(ctx),
            Expr::Sub(a, b) => a.eval(ctx) - b.eval(ctx),
            Expr::Mul(a, b) => a.eval(ctx) * b.eval(ctx),
            Expr::Div(a, b) => a.eval(ctx) / b.eval(ctx),
            Expr::Log2(a) => a.eval(ctx).max(1.0).log2(),
            Expr::Min(a, b) => a.eval(ctx).min(b.eval(ctx)),
            Expr::Max(a, b) => a.eval(ctx).max(b.eval(ctx)),
        }
    }

    /// Render as Rust source for the emitted optimizer.
    pub fn to_rust(&self) -> String {
        match self {
            Expr::Num(x) => format!("{x:?}f64"),
            Expr::Input(i) => format!("inputs[{i}]"),
            Expr::Output => "output".to_string(),
            Expr::Table => "table".to_string(),
            Expr::Add(a, b) => format!("({} + {})", a.to_rust(), b.to_rust()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_rust(), b.to_rust()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_rust(), b.to_rust()),
            Expr::Div(a, b) => format!("({} / {})", a.to_rust(), b.to_rust()),
            Expr::Log2(a) => format!("({}).max(1.0).log2()", a.to_rust()),
            Expr::Min(a, b) => format!("({}).min({})", a.to_rust(), b.to_rust()),
            Expr::Max(a, b) => format!("({}).max({})", a.to_rust(), b.to_rust()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(x) => write!(f, "{x}"),
            Expr::Input(i) => write!(f, "in{i}"),
            Expr::Output => write!(f, "out"),
            Expr::Table => write!(f, "table"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Log2(a) => write!(f, "log2({a})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(inputs: &'a [f64], output: f64) -> EvalCtx<'a> {
        EvalCtx {
            inputs,
            output,
            table: 0.0,
        }
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Add(
            Box::new(Expr::Mul(
                Box::new(Expr::Input(0)),
                Box::new(Expr::Num(2.0)),
            )),
            Box::new(Expr::Input(1)),
        );
        assert_eq!(e.eval(&ctx(&[10.0, 3.0], 0.0)), 23.0);
        assert_eq!(e.to_string(), "((in0 * 2) + in1)");
    }

    #[test]
    fn log2_clamps() {
        let e = Expr::Log2(Box::new(Expr::Num(0.0)));
        assert_eq!(e.eval(&ctx(&[], 0.0)), 0.0);
        let e = Expr::Log2(Box::new(Expr::Num(8.0)));
        assert_eq!(e.eval(&ctx(&[], 0.0)), 3.0);
    }

    #[test]
    #[should_panic(expected = "references in2")]
    fn out_of_range_input_panics() {
        Expr::Input(2).eval(&ctx(&[1.0], 0.0));
    }

    #[test]
    fn rust_rendering() {
        let e = Expr::Div(Box::new(Expr::Output), Box::new(Expr::Num(4.0)));
        assert_eq!(e.to_rust(), "(output / 4.0f64)");
    }
}
