//! Property test: the interpreted (DSL-specified) toy model and the
//! hand-written `volcano_core::toy` model are observationally equivalent
//! — same optimal plan cost for every query shape, sorted or not.

use proptest::prelude::*;
use volcano_core::toy::{ToyModel, ToyOp, ToyProps};
use volcano_core::{ExprTree, Optimizer, PhysicalProps, SearchOptions};
use volcano_gen::dynamic::DynProps;
use volcano_gen::{parse_spec, DynModel, DynQueryBuilder};

const TOY_SPEC: &str = r#"
    model toy;
    operator get 0;
    operator select 1;
    operator join 2;
    prop sorted;

    card get = table;
    card select = in0 * 0.5;
    card join = in0 * in1 * 0.01;

    transform commute: join(?a, ?b) -> join(?b, ?a);
    transform assoc: join(join(?a, ?b), ?c) -> join(?a, join(?b, ?c));

    impl get -> file_scan { requires; delivers none; cost out; }
    impl select -> filter { requires pass; delivers pass; cost in0; }
    impl join -> hash_join { requires any, any; delivers none; cost in0 * 2 + in1; }
    impl join -> merge_join { requires sorted, sorted; delivers sorted; cost in0 + in1; }
    enforcer sort { enforces sorted; cost out * log2(max(out, 2)) + 0; }
"#;

/// A tree shape: leaf index or (shape, shape), with optional select
/// wrappers encoded by a bool per node.
#[derive(Debug, Clone)]
enum Shape {
    Leaf(usize, bool),
    Join(Box<Shape>, Box<Shape>, bool),
}

fn shape(leaves: usize) -> impl Strategy<Value = Shape> {
    let leaf = (0..leaves, any::<bool>()).prop_map(|(i, s)| Shape::Leaf(i, s));
    leaf.prop_recursive(3, 8, 2, |inner| {
        (inner.clone(), inner, any::<bool>())
            .prop_map(|(l, r, s)| Shape::Join(Box::new(l), Box::new(r), *Box::new(s).as_ref()))
    })
}

fn to_toy(s: &Shape, cards: &[u64]) -> ExprTree<ToyModel> {
    match s {
        Shape::Leaf(i, sel) => {
            let g = ExprTree::leaf(ToyOp::Get(format!("t{}", i % cards.len())));
            if *sel {
                ExprTree::new(ToyOp::Select, vec![g])
            } else {
                g
            }
        }
        Shape::Join(l, r, sel) => {
            let j = ExprTree::new(ToyOp::Join, vec![to_toy(l, cards), to_toy(r, cards)]);
            if *sel {
                ExprTree::new(ToyOp::Select, vec![j])
            } else {
                j
            }
        }
    }
}

fn to_dyn(s: &Shape, cards: &[u64], b: &DynQueryBuilder<'_>) -> ExprTree<DynModel> {
    match s {
        Shape::Leaf(i, sel) => {
            let g = b.leaf("get", cards[i % cards.len()] as f64);
            if *sel {
                b.node("select", vec![g])
            } else {
                g
            }
        }
        Shape::Join(l, r, sel) => {
            let j = b.node("join", vec![to_dyn(l, cards, b), to_dyn(r, cards, b)]);
            if *sel {
                b.node("select", vec![j])
            } else {
                j
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dynamic_and_handwritten_toy_agree(
        s in shape(3),
        cards in proptest::collection::vec(10u64..5000, 3),
        sorted in any::<bool>(),
    ) {
        // Hand-written model.
        let refs: Vec<(String, u64)> = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("t{i}"), c))
            .collect();
        let table_refs: Vec<(&str, u64)> = refs.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        let hand_model = ToyModel::with_tables(&table_refs);
        let hand_query = to_toy(&s, &cards);
        let mut hopt = Optimizer::new(&hand_model, SearchOptions::default());
        let hroot = hopt.insert_tree(&hand_query);
        let hprops = if sorted { ToyProps::sorted() } else { ToyProps::any() };
        let hand = hopt.find_best_plan(hroot, hprops, None).unwrap();

        // Interpreted model from the DSL.
        let dyn_model = DynModel::new(parse_spec(TOY_SPEC).unwrap());
        let b = DynQueryBuilder::new(&dyn_model);
        let dyn_query = to_dyn(&s, &cards, &b);
        let mut dopt = Optimizer::new(&dyn_model, SearchOptions::default());
        let droot = dopt.insert_tree(&dyn_query);
        let dprops = if sorted { dyn_model.props(&["sorted"]) } else { DynProps::any() };
        let dynamic = dopt.find_best_plan(droot, dprops, None).unwrap();

        prop_assert!(
            (hand.cost - dynamic.cost).abs() <= 1e-6 * hand.cost.max(1.0),
            "handwritten {} vs interpreted {} for {:?}",
            hand.cost, dynamic.cost, s
        );
        // And the searches covered the same space.
        prop_assert_eq!(hopt.memo().num_groups(), dopt.memo().num_groups());
    }
}
