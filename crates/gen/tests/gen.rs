//! Generator tests: the interpreted model must agree with the
//! hand-written `volcano_core::toy` model on optimal plans, and the
//! emitted Rust source must actually compile against `volcano-core`.

use volcano_core::{Optimizer, PhysicalProps, SearchOptions};
use volcano_gen::{emit_rust, parse_spec, DynModel, DynQueryBuilder};

/// The toy model of `volcano_core::toy`, expressed as a specification.
/// Costs and selectivities mirror `toy.rs` exactly, so the optimal plan
/// costs must agree.
const TOY_SPEC: &str = r#"
    model toy;
    operator get 0;
    operator select 1;
    operator join 2;
    prop sorted;

    card get = table;
    card select = in0 * 0.5;
    card join = in0 * in1 * 0.01;

    transform commute: join(?a, ?b) -> join(?b, ?a);
    transform assoc: join(join(?a, ?b), ?c) -> join(?a, join(?b, ?c));

    impl get -> file_scan { requires; delivers none; cost out; }
    impl select -> filter { requires pass; delivers pass; cost in0; }
    impl join -> hash_join { requires any, any; delivers none; cost in0 * 2 + in1; }
    impl join -> merge_join { requires sorted, sorted; delivers sorted; cost in0 + in1; }
    enforcer sort { enforces sorted; cost out * log2(max(out, 2)) + 0; }
"#;

fn toy_dyn_model() -> DynModel {
    DynModel::new(parse_spec(TOY_SPEC).unwrap())
}

/// Optimal cost from the hand-written toy model.
fn handwritten_cost(
    tables: &[(&str, u64)],
    build: &dyn Fn(
        &volcano_core::toy::ToyModel,
    ) -> volcano_core::ExprTree<volcano_core::toy::ToyModel>,
    sorted: bool,
) -> f64 {
    use volcano_core::toy::{ToyModel, ToyProps};
    let model = ToyModel::with_tables(tables);
    let query = build(&model);
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&query);
    let props = if sorted {
        ToyProps::sorted()
    } else {
        ToyProps::any()
    };
    opt.find_best_plan(root, props, None).unwrap().cost
}

/// Optimal cost from the DSL-specified dynamic model.
fn dynamic_cost(model: &DynModel, query: &volcano_core::ExprTree<DynModel>, sorted: bool) -> f64 {
    let mut opt = Optimizer::new(model, SearchOptions::default());
    let root = opt.insert_tree(query);
    let props = if sorted {
        model.props(&["sorted"])
    } else {
        volcano_gen::dynamic::DynProps::any()
    };
    opt.find_best_plan(root, props, None).unwrap().cost
}

#[test]
fn dynamic_model_matches_handwritten_toy_unsorted() {
    use volcano_core::toy::ToyOp;
    let model = toy_dyn_model();
    let b = DynQueryBuilder::new(&model);
    let q = b.node(
        "join",
        vec![
            b.node("join", vec![b.leaf("get", 1000.0), b.leaf("get", 200.0)]),
            b.node("select", vec![b.leaf("get", 5000.0)]),
        ],
    );
    let dyn_cost = dynamic_cost(&model, &q, false);

    let hand = handwritten_cost(
        &[("A", 1000), ("B", 200), ("C", 5000)],
        &|_m| {
            use volcano_core::ExprTree as T;
            T::new(
                ToyOp::Join,
                vec![
                    T::new(
                        ToyOp::Join,
                        vec![
                            T::leaf(ToyOp::Get("A".into())),
                            T::leaf(ToyOp::Get("B".into())),
                        ],
                    ),
                    T::new(ToyOp::Select, vec![T::leaf(ToyOp::Get("C".into()))]),
                ],
            )
        },
        false,
    );
    assert!(
        (dyn_cost - hand).abs() < 1e-6,
        "dynamic {dyn_cost} vs handwritten {hand}"
    );
}

#[test]
fn dynamic_model_matches_handwritten_toy_sorted_goal() {
    use volcano_core::toy::ToyOp;
    let model = toy_dyn_model();
    let b = DynQueryBuilder::new(&model);
    let q = b.node("join", vec![b.leaf("get", 1000.0), b.leaf("get", 1000.0)]);
    let dyn_cost = dynamic_cost(&model, &q, true);
    let hand = handwritten_cost(
        &[("R", 1000), ("S", 1000)],
        &|_m| {
            use volcano_core::ExprTree as T;
            T::new(
                ToyOp::Join,
                vec![
                    T::leaf(ToyOp::Get("R".into())),
                    T::leaf(ToyOp::Get("S".into())),
                ],
            )
        },
        true,
    );
    assert!(
        (dyn_cost - hand).abs() < 1e-6,
        "dynamic {dyn_cost} vs handwritten {hand}"
    );
}

#[test]
fn dynamic_exploration_is_exhaustive() {
    let model = toy_dyn_model();
    let b = DynQueryBuilder::new(&model);
    let q = b.node(
        "join",
        vec![
            b.node("join", vec![b.leaf("get", 100.0), b.leaf("get", 200.0)]),
            b.leaf("get", 300.0),
        ],
    );
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q);
    let _ = opt
        .find_best_plan(root, volcano_gen::dynamic::DynProps::any(), None)
        .unwrap();
    // Same shape as the hand-written model: 7 groups, 6 root joins.
    assert_eq!(opt.memo().num_groups(), 7);
    assert_eq!(opt.memo().group_exprs(opt.memo().repr(root)).count(), 6);
}

#[test]
fn emitted_source_contains_the_expected_items() {
    let spec = parse_spec(TOY_SPEC).unwrap();
    let src = emit_rust(&spec);
    for needle in [
        "pub enum Op",
        "pub enum Alg",
        "pub struct Props",
        "impl TransformationRule<Toy> for Commute",
        "impl TransformationRule<Toy> for Assoc",
        "impl ImplementationRule<Toy> for FileScanRule",
        "impl ImplementationRule<Toy> for MergeJoinRule",
        "impl Enforcer<Toy> for SortEnforcer",
        "impl Model for Toy",
        "GENERATED by the Volcano optimizer generator",
    ] {
        assert!(
            src.contains(needle),
            "emitted source lacks {needle:?}\n{src}"
        );
    }
    // Emission is deterministic.
    assert_eq!(src, emit_rust(&spec));
}

/// The paradigm test: the emitted source code must compile with `rustc`
/// against the `volcano_core` rlib, exactly as Figure 1 prescribes
/// ("optimizer source code → compiler and linker → query optimizer").
/// Skips silently when the rlib or rustc cannot be located.
#[test]
fn emitted_source_compiles_with_rustc() {
    let spec = parse_spec(TOY_SPEC).unwrap();
    let src = emit_rust(&spec);

    // Locate the volcano_core rlib produced by this build.
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let deps = manifest.join("../../target/debug/deps");
    let rlib = std::fs::read_dir(&deps)
        .ok()
        .and_then(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let n = e.file_name().to_string_lossy().to_string();
                    n.starts_with("libvolcano_core-") && n.ends_with(".rlib")
                })
                .max_by_key(|e| e.metadata().and_then(|m| m.modified()).ok())
        })
        .map(|e| e.path());
    let Some(rlib) = rlib else {
        eprintln!("skipping: volcano_core rlib not found in {deps:?}");
        return;
    };

    let dir = std::env::temp_dir().join(format!("volcano_gen_compile_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src_path = dir.join("generated_toy.rs");
    std::fs::write(&src_path, &src).unwrap();

    let out = std::process::Command::new("rustc")
        .arg("--edition=2021")
        .arg("--crate-type=lib")
        .arg("--crate-name=generated_toy")
        .arg("--extern")
        .arg(format!("volcano_core={}", rlib.display()))
        .arg("-L")
        .arg(&deps)
        .arg("-o")
        .arg(dir.join("libgenerated_toy.rlib"))
        .arg(&src_path)
        .output();
    let out = match out {
        Ok(o) => o,
        Err(e) => {
            eprintln!("skipping: rustc not runnable: {e}");
            return;
        }
    };
    assert!(
        out.status.success(),
        "generated code failed to compile:\n{}\n--- source ---\n{}",
        String::from_utf8_lossy(&out.stderr),
        src
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The spec file shipped with the repository must stay parseable and
/// emit compilable structure.
#[test]
fn shipped_spec_file_parses() {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs/relational.vspec");
    let text = std::fs::read_to_string(path).expect("spec file present");
    let spec = parse_spec(&text).expect("spec file parses");
    assert_eq!(spec.name, "relational");
    assert_eq!(spec.transforms.len(), 2);
    assert!(emit_rust(&spec).contains("impl Model for Relational"));
}

/// A model with two boolean properties and two enforcers: the property
/// bitmask machinery beyond a single bit.
#[test]
fn two_property_dynamic_model() {
    let spec = parse_spec(
        r#"
        model twoprops;
        operator src 0;
        operator step 1;
        prop sorted;
        prop compressed;

        card src = table;
        card step = in0;

        impl src -> make { requires; delivers none; cost out; }
        impl step -> walk { requires pass; delivers pass; cost in0 * 0.1; }
        enforcer sort { enforces sorted; cost out * 2; }
        enforcer decompressor { enforces compressed; cost out * 5; }
        "#,
    )
    .unwrap();
    let model = DynModel::new(spec);
    let b = DynQueryBuilder::new(&model);
    let q = b.node("step", vec![b.leaf("src", 100.0)]);
    let mut opt = Optimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q);

    // Requiring both properties must stack both enforcers (in either
    // order — the engine explores both and picks by cost, which here is
    // order-independent).
    let goal = model.props(&["sorted", "compressed"]);
    let plan = opt.find_best_plan(root, goal, None).unwrap();
    assert!(plan.delivered.satisfies(&model.props(&["sorted"])));
    assert!(plan.delivered.satisfies(&model.props(&["compressed"])));
    // src(100) + step(10) + sort(200) + decompress(500) = 810.
    assert!((plan.cost - 810.0).abs() < 1e-9, "cost {}", plan.cost);
    let algs: Vec<&str> = plan
        .nodes()
        .iter()
        .map(|n| {
            use volcano_core::model::Algorithm;
            match n.alg.name() {
                "sort" => "sort",
                "decompressor" => "decompressor",
                "walk" => "walk",
                "make" => "make",
                other => panic!("unexpected {other}"),
            }
        })
        .collect();
    assert!(algs.contains(&"sort"));
    assert!(algs.contains(&"decompressor"));
}
