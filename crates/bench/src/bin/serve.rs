//! Concurrent multi-session serving benchmark.
//!
//! Measures how prepared-statement throughput scales with the number of
//! concurrent sessions: a sweep over {1, 2, 4, 8} session threads, each
//! running the same mixed prepared workload (parameterized scans plus a
//! hash join) against one shared [`Database`] through the serving
//! layer's [`Session`]s.
//!
//! The database sits on a [`LatencyDisk`]: every page read carries a
//! fixed simulated latency, and the buffer pool is deliberately smaller
//! than the tables, so executions miss continuously. That is the regime
//! a concurrent serving layer exists for — I/O-latency-bound executions
//! whose reads overlap across sessions (the buffer pool releases its
//! lock across misses precisely to allow this) — and it keeps the
//! measurement meaningful on single-core CI runners, where a CPU-bound
//! sweep would show no scaling at all.
//!
//! Every session execution is verified (expected row count per
//! parameter, computed once serially) and the plan-cache counters must
//! reconcile at the end, or the harness panics.
//!
//! Usage:
//!   serve [--card N] [--ops K] [--latency-us U] [--smoke]
//!         [--json PATH] [--no-json]
//!
//! `--smoke` shrinks cardinalities/latency and marks the export
//! `"smoke":true`, which exempts it from the ≥ 2.0× scaling gate
//! (debug-build CI runs are not representative).

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use volcano_exec::{Database, Server, ServerConfig, TrafficClass};
use volcano_rel::{Catalog, ColumnDef, Value};
use volcano_store::{DiskManager, LatencyDisk, MemDisk};

/// The sweep; the first entry must be 1 (the single-session baseline)
/// and the last is the gated headline.
const SESSIONS: [usize; 4] = [1, 2, 4, 8];

/// Buffer-pool pages: smaller than the tables, so executions miss
/// continuously and pay the simulated read latency.
const POOL_PAGES: usize = 128;

struct Args {
    card: usize,
    ops: usize,
    latency_us: u64,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        card: 20_000,
        ops: 40,
        latency_us: 300,
        smoke: false,
        json: Some("BENCH_serve.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--card" => args.card = it.next().expect("--card N").parse().expect("number"),
            "--ops" => args.ops = it.next().expect("--ops K").parse().expect("number"),
            "--latency-us" => {
                args.latency_us = it.next().expect("--latency-us U").parse().expect("number")
            }
            "--smoke" => {
                args.smoke = true;
                args.card = 1_500;
                args.ops = 8;
                args.latency_us = 50;
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn catalog(card: usize) -> Catalog {
    let card_f = card as f64;
    let mut c = Catalog::new();
    c.add_table(
        "t",
        card_f,
        vec![
            ColumnDef::int("a", card_f),
            ColumnDef::int("b", 1000.0),
            ColumnDef::int("c", 100.0),
        ],
    );
    c.add_table(
        "fact",
        card_f,
        vec![
            ColumnDef::int("k", card_f / 8.0),
            ColumnDef::int("v", 1000.0),
        ],
    );
    c.add_table(
        "dim",
        card_f / 8.0,
        vec![
            ColumnDef::int("id", card_f / 8.0),
            ColumnDef::int("r", 10.0),
        ],
    );
    c
}

const SCAN_SQL: &str = "SELECT t.a FROM t WHERE t.c < $0";
const JOIN_SQL: &str = "SELECT fact.v, dim.r FROM fact, dim WHERE fact.k = dim.id";

/// The per-session operation mix: mostly parameterized scans (cycling
/// selectivities) with a join every fourth op.
fn op_param(i: usize) -> Option<i64> {
    if i % 4 == 3 {
        None // join
    } else {
        Some(10 + ((i * 13) % 60) as i64) // scan, param in [10, 70)
    }
}

struct Point {
    sessions: usize,
    wall_ms: f64,
    plans_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    degraded: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

fn run_point(
    server: &Server,
    sessions: usize,
    ops: usize,
    oracle: &HashMap<i64, usize>,
    join_rows: usize,
) -> Point {
    let degraded_before = server.admission().stats().admitted_degraded;
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let (wall, mut latencies) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for s in 0..sessions {
            let barrier = barrier.clone();
            let mut session = server.session(TrafficClass::Interactive);
            handles.push(scope.spawn(move || {
                session.prepare("scan", SCAN_SQL).expect("prepare scan");
                session.prepare("join", JOIN_SQL).expect("prepare join");
                barrier.wait();
                let mut lat = Vec::with_capacity(ops);
                for i in 0..ops {
                    // Offset the mix per session so sessions are not in
                    // page-access lockstep.
                    let op = i + s;
                    let t = Instant::now();
                    let out = match op_param(op) {
                        Some(p) => session.execute("scan", &[Value::Int(p)]),
                        None => session.execute("join", &[]),
                    }
                    .expect("prepared execution");
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                    let want = match op_param(op) {
                        Some(p) => oracle[&p],
                        None => join_rows,
                    };
                    assert_eq!(
                        out.outcome.rows.len(),
                        want,
                        "session {s}: wrong row count at op {i}"
                    );
                }
                lat
            }));
        }
        barrier.wait();
        let t = Instant::now();
        let latencies: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("session thread"))
            .collect();
        (t.elapsed().as_secs_f64(), latencies)
    });
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total_ops = (sessions * ops) as f64;
    Point {
        sessions,
        wall_ms: wall * 1e3,
        plans_per_sec: total_ops / wall.max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        degraded: server.admission().stats().admitted_degraded - degraded_before,
    }
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    println!("concurrent multi-session serving benchmark");
    println!(
        "card {}, {} ops/session, read latency {} us, pool {} pages{}\n",
        args.card,
        args.ops,
        args.latency_us,
        POOL_PAGES,
        if args.smoke { " (smoke)" } else { "" }
    );

    // I/O-latency-bound setup: simulated read latency under a pool too
    // small for the tables. The latency wrapper sleeps outside any
    // lock, so concurrent sessions genuinely overlap their misses.
    let disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(
        Arc::new(MemDisk::new()),
        Duration::from_micros(args.latency_us),
    ));
    let db = Arc::new(Database::with_disk(catalog(args.card), disk, POOL_PAGES));
    db.generate(42);
    // Tickets for the whole sweep: admission never degrades here (the
    // sweep never exceeds the ticket count), it only meters; the
    // degraded column in the export proves it stayed at zero.
    let server = Server::over(
        db.clone(),
        ServerConfig {
            max_concurrent: *SESSIONS.iter().max().expect("sweep non-empty"),
            ..ServerConfig::default()
        },
    );

    // Oracle row counts per scan parameter (and the join), computed
    // once on a private session. This also warms the plan cache, so
    // the timed sweep measures serving, not first-touch optimization.
    let mut oracle_session = server.session(TrafficClass::Background);
    oracle_session.prepare("scan", SCAN_SQL).expect("prepare");
    oracle_session.prepare("join", JOIN_SQL).expect("prepare");
    let mut oracle = HashMap::new();
    for i in 0..(args.ops + SESSIONS[SESSIONS.len() - 1]) {
        if let Some(p) = op_param(i) {
            oracle.entry(p).or_insert_with(|| {
                oracle_session
                    .execute("scan", &[Value::Int(p)])
                    .expect("oracle scan")
                    .outcome
                    .rows
                    .len()
            });
        }
    }
    let join_rows = oracle_session
        .execute("join", &[])
        .expect("oracle join")
        .outcome
        .rows
        .len();

    println!(
        "{:>8} {:>9} {:>13} {:>8} {:>8} {:>9}",
        "sessions", "wall ms", "plans/sec", "p50 ms", "p99 ms", "degraded"
    );
    let mut points = Vec::new();
    for sessions in SESSIONS {
        let p = run_point(&server, sessions, args.ops, &oracle, join_rows);
        println!(
            "{:>8} {:>9.1} {:>13.1} {:>8.2} {:>8.2} {:>9}",
            p.sessions, p.wall_ms, p.plans_per_sec, p.p50_ms, p.p99_ms, p.degraded
        );
        points.push(p);
    }

    // The ledger must reconcile after the whole sweep, or the numbers
    // above measured a broken cache.
    let s = db.plan_cache().stats();
    assert_eq!(
        s.lookups,
        s.hits + s.misses + s.invalidations,
        "plan cache counters do not reconcile"
    );

    let scaling_8 = points[points.len() - 1].plans_per_sec / points[0].plans_per_sec.max(1e-9);
    println!(
        "\nthroughput scaling 1 -> {} sessions: {:.2}x",
        SESSIONS[SESSIONS.len() - 1],
        scaling_8
    );

    if let Some(path) = &args.json {
        let points_json: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "{{\"sessions\":{},\"wall_ms\":{},\"plans_per_sec\":{},",
                        "\"p50_ms\":{},\"p99_ms\":{},\"degraded\":{}}}"
                    ),
                    p.sessions, p.wall_ms, p.plans_per_sec, p.p50_ms, p.p99_ms, p.degraded
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\"benchmark\":\"serve\",\"card\":{},\"ops_per_session\":{},",
                "\"latency_us\":{},\"pool_pages\":{},\"smoke\":{},",
                "\"points\":[{}],\"scaling_8\":{}}}\n"
            ),
            args.card,
            args.ops,
            args.latency_us,
            POOL_PAGES,
            args.smoke,
            points_json.join(","),
            scaling_8
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
