//! Regenerate Figure 4 of the paper: *Exhaustive Optimization
//! Performance* — average optimization time and average estimated
//! execution time per query, for select–join queries over 2–8 input
//! relations, EXODUS baseline vs. Volcano optimizer generator.
//!
//! Usage:
//!   cargo run -p volcano-bench --release --bin fig4 [-- --queries N] [--max-rel M] [--csv PATH]
//!
//! Defaults match the paper: 50 queries per complexity level, 2–8 input
//! relations. Output: one table row per complexity level plus a CSV.

use std::fmt::Write as _;
use std::time::Instant;

use volcano_bench::{generate_query, run_exodus, run_volcano, WorkloadConfig};
use volcano_core::{SearchOptions, SearchStats};

struct Args {
    queries: usize,
    max_rel: usize,
    csv: Option<String>,
    json: Option<String>,
    exodus_budget: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: 50,
        max_rel: 8,
        csv: Some("fig4.csv".to_string()),
        json: Some("BENCH_fig4.json".to_string()),
        exodus_budget: 16 << 20,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--queries" => args.queries = it.next().expect("--queries N").parse().expect("number"),
            "--max-rel" => args.max_rel = it.next().expect("--max-rel M").parse().expect("number"),
            "--csv" => args.csv = Some(it.next().expect("--csv PATH")),
            "--no-csv" => args.csv = None,
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            "--exodus-budget-mb" => {
                args.exodus_budget = it
                    .next()
                    .expect("--exodus-budget-mb N")
                    .parse::<usize>()
                    .expect("number")
                    << 20
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// JSON has no NaN/Infinity literal; absent aggregates export as 0.
fn j(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    let mut csv = String::from(
        "relations,queries,volcano_opt_s,exodus_opt_s,volcano_exec_ms,exodus_exec_ms,\
         volcano_memo_kb,exodus_mesh_kb,exodus_aborts,time_ratio,exec_ratio\n",
    );
    let mut json_levels: Vec<String> = Vec::new();

    println!("Figure 4 reproduction: exhaustive optimization performance");
    println!(
        "{} queries per complexity level, relations of 1,200-7,200 x 100-byte records,",
        args.queries
    );
    println!("one selection per relation, bushy plans, exhaustive search.\n");
    println!(
        "{:>4} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7} | {:>9} {:>9} {:>7}",
        "rels",
        "volcano opt",
        "exodus opt",
        "ratio",
        "volcano exec",
        "exodus exec",
        "ratio",
        "memo KB",
        "mesh KB",
        "aborts"
    );

    for n in 2..=args.max_rel {
        let mut v_opt = Vec::new();
        let mut e_opt = Vec::new();
        let mut v_exec = Vec::new();
        let mut e_exec = Vec::new();
        let mut v_mem = Vec::new();
        let mut e_mem = Vec::new();
        let mut aborts = 0usize;
        let mut level_stats = SearchStats::default();

        for q in 0..args.queries {
            let seed = (n as u64) * 10_000 + q as u64;
            let query = generate_query(&WorkloadConfig::relations(n), seed);
            let v = run_volcano(&query, SearchOptions::default());
            let e = run_exodus(&query, args.exodus_budget);
            level_stats.merge(&v.stats);
            v_opt.push(v.opt_seconds);
            v_mem.push(v.memo_bytes as f64);
            e_mem.push(e.mesh_bytes as f64);
            e_opt.push(e.opt_seconds);
            match e.est_exec_ms {
                Some(ec) => {
                    // Plan quality compared only on queries both complete,
                    // as in the paper.
                    v_exec.push(v.est_exec_ms);
                    e_exec.push(ec);
                }
                None => aborts += 1,
            }
        }

        let vo = mean(&v_opt);
        let eo = mean(&e_opt);
        let ve = geomean(&v_exec);
        let ee = geomean(&e_exec);
        let vm = mean(&v_mem) / 1024.0;
        let em = mean(&e_mem) / 1024.0;
        println!(
            "{:>4} | {:>10.4}s {:>10.4}s {:>6.1}x | {:>10.1}ms {:>10.1}ms {:>6.2}x | {:>9.0} {:>9.0} {:>7}",
            n,
            vo,
            eo,
            eo / vo,
            ve,
            ee,
            ee / ve,
            vm,
            em,
            aborts
        );
        let _ = writeln!(
            csv,
            "{n},{},{vo},{eo},{ve},{ee},{vm},{em},{aborts},{},{}",
            args.queries,
            eo / vo,
            ee / ve
        );
        json_levels.push(format!(
            concat!(
                "{{\"relations\":{},\"queries\":{},",
                "\"volcano_opt_s\":{},\"exodus_opt_s\":{},",
                "\"volcano_exec_ms\":{},\"exodus_exec_ms\":{},",
                "\"volcano_memo_kb\":{},\"exodus_mesh_kb\":{},",
                "\"exodus_aborts\":{},\"search\":{}}}"
            ),
            n,
            args.queries,
            j(vo),
            j(eo),
            j(ve),
            j(ee),
            j(vm),
            j(em),
            aborts,
            level_stats.to_json()
        ));
    }

    if let Some(path) = &args.csv {
        std::fs::write(path, csv).expect("write csv");
        println!("\nCSV written to {path}");
    }
    if let Some(path) = &args.json {
        // Search statistics are summed across a level's queries; the
        // harness-level aggregates mirror the printed table.
        let json = format!(
            "{{\"benchmark\":\"fig4\",\"queries_per_level\":{},\"levels\":[{}]}}\n",
            args.queries,
            json_levels.join(",")
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
