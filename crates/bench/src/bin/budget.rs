//! Budget sweep: how does plan quality degrade as the optimizer's search
//! budget shrinks? For each generated query we first run unbudgeted
//! (recording the goal count G and the optimal cost), then re-run under
//! goal caps at fixed fractions of G and under fixed wall-clock
//! deadlines, recording the cost ratio (budgeted / optimal, always ≥ 1
//! by the anytime guarantee) and how many runs actually degraded.
//!
//! Usage:
//!   cargo run -p volcano-bench --release --bin budget \
//!     [-- --queries N] [--relations R] [--json PATH]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use volcano_bench::{generate_query, run_volcano, WorkloadConfig};
use volcano_core::{BudgetOutcome, SearchBudget, SearchOptions};

const GOAL_FRACTIONS: [f64; 6] = [0.05, 0.1, 0.25, 0.5, 0.75, 1.0];
const DEADLINES_MS: [u64; 4] = [1, 5, 20, 100];

struct Args {
    queries: usize,
    relations: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: 10,
        relations: 8,
        json: Some("BENCH_budget.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--queries" => args.queries = it.next().expect("--queries N").parse().expect("number"),
            "--relations" => {
                args.relations = it.next().expect("--relations R").parse().expect("number")
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn budgeted(budget: SearchBudget) -> SearchOptions {
    SearchOptions {
        budget,
        ..SearchOptions::default()
    }
}

/// Aggregates for one sweep point.
#[derive(Default)]
struct Point {
    degraded: usize,
    ratios: Vec<f64>,
    opt_secs: Vec<f64>,
}

impl Point {
    fn record(&mut self, cost: f64, optimal: f64, opt_seconds: f64, outcome: BudgetOutcome) {
        if outcome.is_degraded() {
            self.degraded += 1;
        }
        self.ratios.push(cost / optimal);
        self.opt_secs.push(opt_seconds);
    }

    fn mean_ratio(&self) -> f64 {
        self.ratios.iter().sum::<f64>() / self.ratios.len().max(1) as f64
    }

    fn max_ratio(&self) -> f64 {
        self.ratios.iter().copied().fold(1.0, f64::max)
    }

    fn mean_opt_s(&self) -> f64 {
        self.opt_secs.iter().sum::<f64>() / self.opt_secs.len().max(1) as f64
    }
}

fn main() {
    let args = parse_args();
    let started = Instant::now();

    println!(
        "Budget sweep: {} queries over {} relations (paper fig4 workload)",
        args.queries, args.relations
    );

    // Unbudgeted baselines: optimal cost and total goal count per query.
    let queries: Vec<_> = (0..args.queries)
        .map(|q| {
            generate_query(
                &WorkloadConfig::relations(args.relations),
                (args.relations as u64) * 10_000 + q as u64,
            )
        })
        .collect();
    let baselines: Vec<_> = queries
        .iter()
        .map(|q| run_volcano(q, SearchOptions::default()))
        .collect();
    for b in &baselines {
        assert_eq!(
            b.stats.outcome,
            BudgetOutcome::Exhaustive,
            "baseline must be exhaustive"
        );
    }

    println!(
        "\n{:>10} | {:>9} | {:>10} {:>10} | {:>10}",
        "goal cap", "degraded", "mean ratio", "max ratio", "mean opt"
    );
    let mut goal_points = Vec::new();
    for frac in GOAL_FRACTIONS {
        let mut pt = Point::default();
        for (q, base) in queries.iter().zip(&baselines) {
            let cap = ((base.stats.goals_optimized as f64 * frac).ceil() as u64).max(1);
            let v = run_volcano(q, budgeted(SearchBudget::default().with_max_goals(cap)));
            pt.record(
                v.est_exec_ms,
                base.est_exec_ms,
                v.opt_seconds,
                v.stats.outcome,
            );
        }
        println!(
            "{:>9.0}% | {:>5}/{:<3} | {:>10.3} {:>10.3} | {:>9.4}s",
            frac * 100.0,
            pt.degraded,
            args.queries,
            pt.mean_ratio(),
            pt.max_ratio(),
            pt.mean_opt_s()
        );
        goal_points.push((frac, pt));
    }

    println!(
        "\n{:>10} | {:>9} | {:>10} {:>10} | {:>10}",
        "deadline", "degraded", "mean ratio", "max ratio", "mean opt"
    );
    let mut deadline_points = Vec::new();
    for ms in DEADLINES_MS {
        let mut pt = Point::default();
        for (q, base) in queries.iter().zip(&baselines) {
            let v = run_volcano(
                q,
                budgeted(SearchBudget::default().with_deadline(Duration::from_millis(ms))),
            );
            pt.record(
                v.est_exec_ms,
                base.est_exec_ms,
                v.opt_seconds,
                v.stats.outcome,
            );
        }
        println!(
            "{:>8}ms | {:>5}/{:<3} | {:>10.3} {:>10.3} | {:>9.4}s",
            ms,
            pt.degraded,
            args.queries,
            pt.mean_ratio(),
            pt.max_ratio(),
            pt.mean_opt_s()
        );
        deadline_points.push((ms, pt));
    }

    if let Some(path) = &args.json {
        let mut goal_json = String::new();
        for (i, (frac, pt)) in goal_points.iter().enumerate() {
            if i > 0 {
                goal_json.push(',');
            }
            let _ = write!(
                goal_json,
                "{{\"fraction\":{},\"degraded\":{},\"mean_cost_ratio\":{},\
                 \"max_cost_ratio\":{},\"mean_opt_s\":{}}}",
                frac,
                pt.degraded,
                pt.mean_ratio(),
                pt.max_ratio(),
                pt.mean_opt_s()
            );
        }
        let mut deadline_json = String::new();
        for (i, (ms, pt)) in deadline_points.iter().enumerate() {
            if i > 0 {
                deadline_json.push(',');
            }
            let _ = write!(
                deadline_json,
                "{{\"deadline_ms\":{},\"degraded\":{},\"mean_cost_ratio\":{},\
                 \"max_cost_ratio\":{},\"mean_opt_s\":{}}}",
                ms,
                pt.degraded,
                pt.mean_ratio(),
                pt.max_ratio(),
                pt.mean_opt_s()
            );
        }
        let json = format!(
            "{{\"benchmark\":\"budget\",\"queries\":{},\"relations\":{},\
             \"goal_sweep\":[{}],\"deadline_sweep\":[{}]}}\n",
            args.queries, args.relations, goal_json, deadline_json
        );
        std::fs::write(path, json).expect("write json");
        println!("\nJSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
