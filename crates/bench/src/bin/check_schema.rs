//! Schema sanity for the benchmark JSON exports. The `BENCH_*.json`
//! files are hand-serialized, so CI runs this checker over them after
//! each harness run: parse, dispatch on the `benchmark` tag, and verify
//! required fields, types, and basic invariants (non-empty sweeps,
//! anytime cost ratios ≥ 1, exhaustive baselines).
//!
//! Usage: `check_schema FILE...` — exits non-zero on the first violation.

use std::process::ExitCode;

use volcano_bench::{parse_json, Json};

fn fail(path: &str, msg: &str) -> ExitCode {
    eprintln!("{path}: schema violation: {msg}");
    ExitCode::FAILURE
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// The keys every `SearchStats::to_json` export carries.
const SEARCH_STAT_KEYS: [&str; 20] = [
    "groups_created",
    "exprs_created",
    "group_merges",
    "dead_exprs",
    "transform_matches",
    "transform_fired",
    "substitutes_produced",
    "explore_passes",
    "goals_optimized",
    "winner_hits",
    "failure_hits",
    "alg_moves",
    "enforcer_moves",
    "moves_pruned",
    "moves_excluded",
    "winners_recorded",
    "failures_recorded",
    "greedy_goals",
    "elapsed_us",
    "memo_bytes",
];

fn check_search_stats(v: &Json) -> Result<(), String> {
    for key in SEARCH_STAT_KEYS {
        let x = num(v, key)?;
        if x < 0.0 {
            return Err(format!("search.{key} is negative ({x})"));
        }
    }
    let outcome = v
        .get("outcome")
        .and_then(Json::as_str)
        .ok_or("missing search.outcome")?;
    if outcome != "exhaustive" && !outcome.starts_with("degraded:") {
        return Err(format!("unrecognized search.outcome {outcome:?}"));
    }
    Ok(())
}

fn check_fig4(v: &Json) -> Result<(), String> {
    num(v, "queries_per_level")?;
    let levels = v
        .get("levels")
        .and_then(Json::as_arr)
        .ok_or("missing levels array")?;
    if levels.is_empty() {
        return Err("levels array is empty".to_string());
    }
    for (i, level) in levels.iter().enumerate() {
        let ctx = |e: String| format!("levels[{i}]: {e}");
        let rels = num(level, "relations").map_err(ctx)?;
        if rels < 2.0 {
            return Err(format!("levels[{i}]: relations {rels} < 2"));
        }
        for key in [
            "queries",
            "volcano_opt_s",
            "exodus_opt_s",
            "volcano_exec_ms",
            "exodus_exec_ms",
            "volcano_memo_kb",
            "exodus_mesh_kb",
            "exodus_aborts",
        ] {
            let x = num(level, key).map_err(ctx)?;
            if x < 0.0 {
                return Err(format!("levels[{i}]: {key} is negative ({x})"));
            }
        }
        let search = level
            .get("search")
            .ok_or(format!("levels[{i}]: missing search"))?;
        check_search_stats(search).map_err(ctx)?;
    }
    Ok(())
}

fn check_sweep(v: &Json, name: &str, axis_key: &str) -> Result<(), String> {
    let sweep = v
        .get(name)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing {name} array"))?;
    if sweep.is_empty() {
        return Err(format!("{name} array is empty"));
    }
    let queries = num(v, "queries")?;
    for (i, pt) in sweep.iter().enumerate() {
        let ctx = |e: String| format!("{name}[{i}]: {e}");
        num(pt, axis_key).map_err(ctx)?;
        let degraded = num(pt, "degraded").map_err(ctx)?;
        if degraded > queries {
            return Err(format!(
                "{name}[{i}]: degraded {degraded} exceeds query count {queries}"
            ));
        }
        for key in ["mean_cost_ratio", "max_cost_ratio"] {
            let r = num(pt, key).map_err(ctx)?;
            // The anytime guarantee: budgeted plans never beat the
            // exhaustive optimum.
            if r < 1.0 - 1e-9 {
                return Err(format!("{name}[{i}]: {key} {r} < 1 violates anytime bound"));
            }
        }
        let s = num(pt, "mean_opt_s").map_err(ctx)?;
        if s < 0.0 {
            return Err(format!("{name}[{i}]: mean_opt_s is negative"));
        }
    }
    Ok(())
}

fn check_budget(v: &Json) -> Result<(), String> {
    num(v, "queries")?;
    let rels = num(v, "relations")?;
    if rels < 2.0 {
        return Err(format!("relations {rels} < 2"));
    }
    check_sweep(v, "goal_sweep", "fraction")?;
    check_sweep(v, "deadline_sweep", "deadline_ms")?;
    Ok(())
}

fn check_search_hotpath(v: &Json) -> Result<(), String> {
    num(v, "queries_per_level")?;
    let reps = num(v, "reps")?;
    if reps < 1.0 {
        return Err(format!("reps {reps} < 1"));
    }
    let levels = v
        .get("levels")
        .and_then(Json::as_arr)
        .ok_or("missing levels array")?;
    if levels.is_empty() {
        return Err("levels array is empty".to_string());
    }
    for (i, level) in levels.iter().enumerate() {
        let ctx = |e: String| format!("levels[{i}]: {e}");
        let rels = num(level, "relations").map_err(ctx)?;
        if rels < 2.0 {
            return Err(format!("levels[{i}]: relations {rels} < 2"));
        }
        for key in [
            "queries",
            "opt_s_mean",
            "probe_ns",
            "moves_per_s",
            "goals_per_s",
            "peak_memo_bytes",
            "cost_checksum",
        ] {
            let x = num(level, key).map_err(ctx)?;
            if x < 0.0 {
                return Err(format!("levels[{i}]: {key} is negative ({x})"));
            }
        }
        let search = level
            .get("search")
            .ok_or(format!("levels[{i}]: missing search"))?;
        check_search_stats(search).map_err(ctx)?;
    }
    // The speedup block is optional (present only with --baseline), but
    // when it exists the factors must be positive and the geomean sane.
    if let Some(speedup) = v.get("speedup") {
        let per = speedup
            .get("per_level")
            .and_then(Json::as_arr)
            .ok_or("speedup: missing per_level array")?;
        if per.is_empty() {
            return Err("speedup.per_level is empty".to_string());
        }
        for (i, pt) in per.iter().enumerate() {
            let ctx = |e: String| format!("speedup.per_level[{i}]: {e}");
            num(pt, "relations").map_err(ctx)?;
            let s = num(pt, "speedup").map_err(ctx)?;
            if s <= 0.0 {
                return Err(format!("speedup.per_level[{i}]: factor {s} <= 0"));
            }
        }
        let g = num(speedup, "geomean").map_err(|e| format!("speedup: {e}"))?;
        if g <= 0.0 {
            return Err(format!("speedup.geomean {g} <= 0"));
        }
    }
    Ok(())
}

fn check_exec_workloads(v: &Json, name: &str) -> Result<(), String> {
    let workloads = v
        .get(name)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing {name} array"))?;
    if workloads.is_empty() {
        return Err(format!("{name} array is empty"));
    }
    for (i, w) in workloads.iter().enumerate() {
        let ctx = |e: String| format!("{name}[{i}]: {e}");
        w.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}[{i}]: missing name"))?;
        w.get("class")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}[{i}]: missing class"))?;
        num(w, "rows").map_err(ctx)?;
        for key in ["tuple_ms", "batch_ms", "speedup"] {
            let x = num(w, key).map_err(ctx)?;
            if x <= 0.0 {
                return Err(format!("{name}[{i}]: {key} {x} <= 0"));
            }
        }
    }
    Ok(())
}

fn check_exec(v: &Json) -> Result<(), String> {
    for key in ["card", "reps", "batch_size"] {
        let x = num(v, key)?;
        if x < 1.0 {
            return Err(format!("{key} {x} < 1"));
        }
    }
    let smoke = match v.get("smoke") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing or non-boolean field \"smoke\"".to_string()),
    };
    check_exec_workloads(v, "workloads")?;
    check_exec_workloads(v, "adapter_workloads")?;
    let g = num(v, "geomean_speedup")?;
    if g <= 0.0 {
        return Err(format!("geomean_speedup {g} <= 0"));
    }
    // The acceptance gate: on a full (non-smoke) run the batch engine
    // must beat the tuple engine by >= 2x geomean on the vectorized
    // workloads. Smoke runs (tiny cards, debug builds) are exempt.
    if !smoke && g < 2.0 {
        return Err(format!(
            "geomean_speedup {g:.2} < 2.0 on a full run (batch engine regression)"
        ));
    }
    if let Some(vs) = v.get("vs_baseline") {
        let b = num(vs, "baseline_geomean").map_err(|e| format!("vs_baseline: {e}"))?;
        let r = num(vs, "ratio").map_err(|e| format!("vs_baseline: {e}"))?;
        if b <= 0.0 || r <= 0.0 {
            return Err(format!("vs_baseline: non-positive values ({b}, {r})"));
        }
    }
    Ok(())
}

fn check_exec_fused(v: &Json) -> Result<(), String> {
    for key in ["card", "reps", "batch_size", "pool_pages"] {
        let x = num(v, key)?;
        if x < 1.0 {
            return Err(format!("{key} {x} < 1"));
        }
    }
    // Zero is the default here (sleep-granularity floors make any
    // nonzero latency I/O-bound), so only reject negatives.
    let lat = num(v, "latency_us")?;
    if lat < 0.0 {
        return Err(format!("latency_us {lat} < 0"));
    }
    let smoke = match v.get("smoke") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing or non-boolean field \"smoke\"".to_string()),
    };
    let workloads = v
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing workloads array".to_string())?;
    if workloads.is_empty() {
        return Err("workloads array is empty".to_string());
    }
    let mut saw_headline = false;
    for (i, w) in workloads.iter().enumerate() {
        let ctx = |e: String| format!("workloads[{i}]: {e}");
        w.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("workloads[{i}]: missing name"))?;
        match w.get("class").and_then(Json::as_str) {
            Some("headline") => saw_headline = true,
            Some(_) => {}
            None => return Err(format!("workloads[{i}]: missing class")),
        }
        num(w, "rows").map_err(ctx)?;
        for key in ["batch_ms", "fused_ms", "speedup"] {
            let x = num(w, key).map_err(ctx)?;
            if x <= 0.0 {
                return Err(format!("workloads[{i}]: {key} {x} <= 0"));
            }
        }
    }
    if !saw_headline {
        return Err("workloads must include a headline class".to_string());
    }
    let g = num(v, "geomean_speedup")?;
    if g <= 0.0 {
        return Err(format!("geomean_speedup {g} <= 0"));
    }
    // The acceptance gate: on a full (non-smoke) run the fused engine
    // must beat the batch engine by >= 1.25x geomean on the fusable
    // headline workloads. Smoke runs (tiny cards, debug builds) are
    // exempt.
    if !smoke && g < 1.25 {
        return Err(format!(
            "geomean_speedup {g:.2} < 1.25 on a full run (fused engine regression)"
        ));
    }
    Ok(())
}

fn check_exec_agg(v: &Json) -> Result<(), String> {
    for key in ["card", "reps", "batch_size", "degree"] {
        let x = num(v, key)?;
        if x < 1.0 {
            return Err(format!("{key} {x} < 1"));
        }
    }
    let smoke = match v.get("smoke") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing or non-boolean field \"smoke\"".to_string()),
    };
    let workloads = v
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing workloads array".to_string())?;
    if workloads.is_empty() {
        return Err("workloads array is empty".to_string());
    }
    let mut classes = (false, false);
    for (i, w) in workloads.iter().enumerate() {
        let ctx = |e: String| format!("workloads[{i}]: {e}");
        w.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("workloads[{i}]: missing name"))?;
        match w.get("class").and_then(Json::as_str) {
            Some("grouped") => classes.0 = true,
            Some("total") => classes.1 = true,
            other => return Err(format!("workloads[{i}]: bad class {other:?}")),
        }
        let rows = num(w, "rows").map_err(ctx)?;
        if rows < 1.0 {
            return Err(format!("workloads[{i}]: rows {rows} < 1"));
        }
        for key in ["tuple_ms", "batch_serial_ms", "parallel_ms", "speedup"] {
            let x = num(w, key).map_err(ctx)?;
            if x <= 0.0 {
                return Err(format!("workloads[{i}]: {key} {x} <= 0"));
            }
        }
    }
    if !(classes.0 && classes.1) {
        return Err("workloads must cover both a grouped and a total class".to_string());
    }
    let g = num(v, "geomean_speedup")?;
    if g <= 0.0 {
        return Err(format!("geomean_speedup {g} <= 0"));
    }
    // The acceptance gate: on a full (non-smoke) run, two-phase batch
    // aggregation at 8 workers must beat the serial tuple engine by
    // >= 2x geomean. Smoke runs (tiny cards, debug builds) are exempt.
    if !smoke && g < 2.0 {
        return Err(format!(
            "geomean_speedup {g:.2} < 2.0 on a full run (parallel aggregation regression)"
        ));
    }
    if let Some(vs) = v.get("vs_baseline") {
        let b = num(vs, "baseline_geomean").map_err(|e| format!("vs_baseline: {e}"))?;
        let r = num(vs, "ratio").map_err(|e| format!("vs_baseline: {e}"))?;
        if b <= 0.0 || r <= 0.0 {
            return Err(format!("vs_baseline: non-positive values ({b}, {r})"));
        }
    }
    Ok(())
}

fn check_exec_parallel(v: &Json) -> Result<(), String> {
    for key in ["card", "reps", "latency_us", "pool_pages"] {
        let x = num(v, key)?;
        if x < 1.0 {
            return Err(format!("{key} {x} < 1"));
        }
    }
    let smoke = match v.get("smoke") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing or non-boolean field \"smoke\"".to_string()),
    };
    let workloads = v
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing workloads array".to_string())?;
    if workloads.is_empty() {
        return Err("workloads array is empty".to_string());
    }
    let mut classes = (false, false);
    for (i, w) in workloads.iter().enumerate() {
        let ctx = |e: String| format!("workloads[{i}]: {e}");
        w.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("workloads[{i}]: missing name"))?;
        match w.get("class").and_then(Json::as_str) {
            Some("scan") => classes.0 = true,
            Some("join") => classes.1 = true,
            other => return Err(format!("workloads[{i}]: bad class {other:?}")),
        }
        num(w, "rows").map_err(ctx)?;
        let serial = num(w, "serial_ms").map_err(ctx)?;
        if serial <= 0.0 {
            return Err(format!("workloads[{i}]: serial_ms {serial} <= 0"));
        }
        let points = w
            .get("threads")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("workloads[{i}]: missing threads array"))?;
        if points.is_empty() {
            return Err(format!("workloads[{i}]: threads array is empty"));
        }
        for (j, p) in points.iter().enumerate() {
            let ctx = |e: String| format!("workloads[{i}].threads[{j}]: {e}");
            for key in ["threads", "ms", "speedup"] {
                let x = num(p, key).map_err(ctx)?;
                if x <= 0.0 {
                    return Err(format!("workloads[{i}].threads[{j}]: {key} {x} <= 0"));
                }
            }
        }
    }
    if !(classes.0 && classes.1) {
        return Err("workloads must cover both a scan and a join class".to_string());
    }
    let scaling = v
        .get("scaling")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing scaling array".to_string())?;
    if scaling.is_empty() {
        return Err("scaling array is empty".to_string());
    }
    for (i, s) in scaling.iter().enumerate() {
        let ctx = |e: String| format!("scaling[{i}]: {e}");
        num(s, "threads").map_err(ctx)?;
        num(s, "geomean_speedup").map_err(ctx)?;
    }
    let g = num(v, "geomean_8")?;
    if g <= 0.0 {
        return Err(format!("geomean_8 {g} <= 0"));
    }
    // The acceptance gate: on a full (non-smoke) run, 8 parallel workers
    // must deliver >= 3x geomean speedup over the serial baseline across
    // the scan-heavy and join-heavy workloads. Smoke runs (tiny cards
    // that fit the buffer pool, debug builds) are exempt.
    if !smoke && g < 3.0 {
        return Err(format!(
            "geomean_8 {g:.2} < 3.0 on a full run (parallel scaling regression)"
        ));
    }
    Ok(())
}

fn check_plan_cache_workloads(v: &Json, name: &str) -> Result<(), String> {
    let workloads = v
        .get(name)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing {name} array"))?;
    if workloads.is_empty() {
        return Err(format!("{name} array is empty"));
    }
    for (i, w) in workloads.iter().enumerate() {
        let ctx = |e: String| format!("{name}[{i}]: {e}");
        w.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}[{i}]: missing name"))?;
        w.get("class")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}[{i}]: missing class"))?;
        num(w, "rows").map_err(ctx)?;
        for key in ["cold_ms", "warm_ms", "speedup"] {
            let x = num(w, key).map_err(ctx)?;
            if x <= 0.0 {
                return Err(format!("{name}[{i}]: {key} {x} <= 0"));
            }
        }
    }
    Ok(())
}

fn check_plan_cache(v: &Json) -> Result<(), String> {
    for key in ["card", "reps"] {
        let x = num(v, key)?;
        if x < 1.0 {
            return Err(format!("{key} {x} < 1"));
        }
    }
    let smoke = match v.get("smoke") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing or non-boolean field \"smoke\"".to_string()),
    };
    check_plan_cache_workloads(v, "workloads")?;
    check_plan_cache_workloads(v, "short_workloads")?;
    let g = num(v, "geomean_speedup")?;
    if g <= 0.0 {
        return Err(format!("geomean_speedup {g} <= 0"));
    }
    // The acceptance gate: on a full (non-smoke) run, warm-cache serving
    // must beat cold planning by >= 5x geomean on the join-order-bound
    // workloads. Smoke runs (tiny cards, debug builds) are exempt.
    if !smoke && g < 5.0 {
        return Err(format!(
            "geomean_speedup {g:.2} < 5.0 on a full run (plan cache regression)"
        ));
    }
    let stats = v
        .get("cache_stats")
        .ok_or_else(|| "missing cache_stats".to_string())?;
    let mut parts = [0.0; 4];
    for (slot, key) in ["lookups", "hits", "misses", "invalidations"]
        .iter()
        .enumerate()
    {
        parts[slot] = num(stats, key).map_err(|e| format!("cache_stats: {e}"))?;
    }
    if parts[0] != parts[1] + parts[2] + parts[3] {
        return Err(format!(
            "cache_stats do not reconcile: {} lookups != {} hits + {} misses + {} invalidations",
            parts[0], parts[1], parts[2], parts[3]
        ));
    }
    if parts[1] <= 0.0 {
        return Err("cache_stats: a benchmark run must record hits".to_string());
    }
    Ok(())
}

fn check_serve(v: &Json) -> Result<(), String> {
    for key in ["card", "ops_per_session", "latency_us", "pool_pages"] {
        let x = num(v, key)?;
        if x < 1.0 {
            return Err(format!("{key} {x} < 1"));
        }
    }
    let smoke = match v.get("smoke") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing or non-boolean field \"smoke\"".to_string()),
    };
    let points = v
        .get("points")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing points array".to_string())?;
    if points.is_empty() {
        return Err("points array is empty".to_string());
    }
    let mut prev_sessions = 0.0;
    for (i, p) in points.iter().enumerate() {
        let ctx = |e: String| format!("points[{i}]: {e}");
        let sessions = num(p, "sessions").map_err(ctx)?;
        if sessions <= prev_sessions {
            return Err(format!(
                "points[{i}]: sessions {sessions} not strictly increasing"
            ));
        }
        prev_sessions = sessions;
        for key in ["wall_ms", "plans_per_sec", "p50_ms", "p99_ms"] {
            let x = num(p, key).map_err(ctx)?;
            if x <= 0.0 {
                return Err(format!("points[{i}]: {key} {x} <= 0"));
            }
        }
        let p50 = num(p, "p50_ms").map_err(ctx)?;
        let p99 = num(p, "p99_ms").map_err(ctx)?;
        if p99 < p50 {
            return Err(format!("points[{i}]: p99 {p99} < p50 {p50}"));
        }
        let degraded = num(p, "degraded").map_err(ctx)?;
        if degraded < 0.0 {
            return Err(format!("points[{i}]: degraded {degraded} < 0"));
        }
    }
    if points.len() < 2 {
        return Err("points must sweep at least two session counts".to_string());
    }
    let g = num(v, "scaling_8")?;
    if g <= 0.0 {
        return Err(format!("scaling_8 {g} <= 0"));
    }
    // The acceptance gate: on a full (non-smoke) run, 8 concurrent
    // sessions must deliver >= 2x the single-session throughput (the
    // I/O-overlap regime the serving layer exists for). Smoke runs
    // (tiny cards that fit the buffer pool, debug builds) are exempt.
    if !smoke && g < 2.0 {
        return Err(format!(
            "scaling_8 {g:.2} < 2.0 on a full run (serving concurrency regression)"
        ));
    }
    Ok(())
}

fn check_feedback(v: &Json) -> Result<(), String> {
    for key in ["rows", "reps"] {
        let x = num(v, key)?;
        if x < 1.0 {
            return Err(format!("{key} {x} < 1"));
        }
    }
    let smoke = match v.get("smoke") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing or non-boolean field \"smoke\"".to_string()),
    };
    let engines = v
        .get("engines")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing engines array".to_string())?;
    let mut seen = (false, false, false);
    for (i, e) in engines.iter().enumerate() {
        let ctx = |err: String| format!("engines[{i}]: {err}");
        match e.get("engine").and_then(Json::as_str) {
            Some("tuple") => seen.0 = true,
            Some("batch") => seen.1 = true,
            Some("fused") => seen.2 = true,
            other => return Err(format!("engines[{i}]: unknown engine {other:?}")),
        }
        let k = num(e, "executions_to_converge").map_err(ctx)?;
        if k < 1.0 {
            return Err(format!("engines[{i}]: executions_to_converge {k} < 1"));
        }
        // The acceptance gate, per engine: a repeatedly-wrong cached
        // plan must be re-optimized onto the oracle plan within 5
        // executions.
        if !smoke && k > 5.0 {
            return Err(format!(
                "engines[{i}]: executions_to_converge {k} > 5 on a full run \
                 (adaptive re-optimization regression)"
            ));
        }
        for key in ["wrong_ms", "converged_ms", "improvement_ratio"] {
            let x = num(e, key).map_err(ctx)?;
            if x <= 0.0 {
                return Err(format!("engines[{i}]: {key} {x} <= 0"));
            }
        }
    }
    if seen != (true, true, true) {
        return Err("engines must cover tuple, batch, and fused".to_string());
    }
    let k = num(v, "max_executions_to_converge")?;
    if !smoke && k > 5.0 {
        return Err(format!("max_executions_to_converge {k} > 5 on a full run"));
    }
    let g = num(v, "geomean_improvement")?;
    if g <= 0.0 {
        return Err(format!("geomean_improvement {g} <= 0"));
    }
    // The latency gate: on a full run, the converged plan must run at
    // least 2x faster than the misestimated plan it replaced (geomean
    // across engines). Smoke runs (tiny tables, debug builds) are
    // exempt.
    if !smoke && g < 2.0 {
        return Err(format!(
            "geomean_improvement {g:.2} < 2.0 on a full run \
             (feedback stopped paying for itself)"
        ));
    }
    Ok(())
}

fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let v = parse_json(&text).map_err(|e| e.to_string())?;
    match v.get("benchmark").and_then(Json::as_str) {
        Some("fig4") => check_fig4(&v),
        Some("budget") => check_budget(&v),
        Some("search_hotpath") => check_search_hotpath(&v),
        Some("exec_batch") => check_exec(&v),
        Some("exec_fused") => check_exec_fused(&v),
        Some("exec_agg") => check_exec_agg(&v),
        Some("exec_parallel") => check_exec_parallel(&v),
        Some("plan_cache") => check_plan_cache(&v),
        Some("serve") => check_serve(&v),
        Some("feedback") => check_feedback(&v),
        Some(other) => Err(format!("unknown benchmark tag {other:?}")),
        None => Err("missing \"benchmark\" tag".to_string()),
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_schema FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        match check_file(path) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => return fail(path, &e),
        }
    }
    ExitCode::SUCCESS
}
