//! Serial-vs-parallel aggregation benchmark.
//!
//! Measures the combined win of the two aggregation tentpoles: the
//! batch-native vectorized aggregation kernels and the two-phase
//! parallel split (`FinalHashAggregate ← Gather(8) ←
//! PartialHashAggregate`). Each workload is optimized twice from the
//! same catalog — once under a serial model (degree 1, the plan the
//! tuple engine runs as the baseline) and once at parallel degree 8,
//! where every grouped workload's winning plan must split the aggregate
//! into per-worker partials below the gather, or the harness panics
//! (the optimizer silently keeping a one-shot aggregate would turn
//! this into a serial-vs-serial measurement).
//!
//! Reported per workload: the serial tuple engine (baseline), the
//! serial batch engine (the vectorization-only delta), and the
//! two-phase batch engine at degree 8 (the headline). The gated figure
//! is `tuple_ms / parallel_ms` — CI requires a ≥ 2.0× geometric mean
//! on full (non-smoke) runs via `check_schema`.
//!
//! Every workload is verified per engine: all-integer columns make
//! SUM/AVG exact, so the row multisets must be *identical* between the
//! serial and two-phase plans — a speedup over a wrong answer is
//! worthless.
//!
//! Usage:
//!   exec_agg [--card N] [--reps R] [--batch-size B] [--smoke]
//!            [--json PATH] [--no-json] [--baseline PATH]
//!
//! `--smoke` shrinks cardinalities and marks the export `"smoke":true`,
//! which exempts it from the ≥ 2.0× gate (debug-build CI runs are not
//! representative). `--baseline` (a previous `BENCH_agg.json`) adds a
//! `vs_baseline` drift block to the export.

use std::time::Instant;

use volcano_bench::{parse_json, Json};
use volcano_core::SearchOptions;
use volcano_exec::{BatchConfig, Database};
use volcano_rel::value::Tuple;
use volcano_rel::{
    Catalog, ColumnDef, RelAlg, RelModel, RelModelOptions, RelOptimizer, RelPlan, RelProps,
};
use volcano_sql::plan_query;

/// The parallel degree of the headline measurement.
const DEGREE: u32 = 8;

struct Args {
    card: usize,
    reps: usize,
    batch_size: usize,
    smoke: bool,
    json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        card: 400_000,
        reps: 3,
        batch_size: 1024,
        smoke: false,
        json: Some("BENCH_agg.json".to_string()),
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--card" => args.card = it.next().expect("--card N").parse().expect("number"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("number"),
            "--batch-size" => {
                args.batch_size = it.next().expect("--batch-size B").parse().expect("number")
            }
            "--smoke" => {
                args.smoke = true;
                args.card = 5_000;
                args.reps = 1;
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            "--baseline" => args.baseline = Some(it.next().expect("--baseline PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// One benchmark workload: a catalog and an aggregate query.
struct Workload {
    name: &'static str,
    /// "grouped" (two-phase split required at degree 8) or "total"
    /// (grand totals may stay single-phase above the gather).
    class: &'static str,
    catalog: Catalog,
    sql: String,
}

/// All-integer catalogs: SUM/AVG accumulate exactly, so the serial and
/// two-phase results must be identical, and the measured delta is
/// dispatch overhead vs kernel throughput — the quantity under test.
fn workloads(card: usize) -> Vec<Workload> {
    let card_f = card as f64;
    let sales = |cust_distinct: f64| {
        let mut c = Catalog::new();
        c.add_table(
            "sales",
            card_f,
            vec![
                ColumnDef::int("cust", cust_distinct),
                ColumnDef::int("amount", 10_000.0),
            ],
        );
        c
    };
    vec![
        Workload {
            name: "grouped_sum_low_card",
            class: "grouped",
            catalog: sales(100.0),
            sql: "SELECT cust, SUM(amount) FROM sales GROUP BY cust".to_string(),
        },
        Workload {
            name: "grouped_multi_agg",
            class: "grouped",
            catalog: sales(100.0),
            sql: "SELECT cust, COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) \
                  FROM sales GROUP BY cust"
                .to_string(),
        },
        // Mid cardinality: enough groups that the final merge does real
        // work, few enough that per-worker partials still collapse the
        // stream (at very high cardinality the cost model correctly
        // keeps a one-shot aggregate above the gather instead).
        Workload {
            name: "grouped_sum_mid_card",
            class: "grouped",
            catalog: sales(card_f / 200.0),
            sql: "SELECT cust, SUM(amount) FROM sales GROUP BY cust".to_string(),
        },
        Workload {
            name: "grand_total",
            class: "total",
            catalog: sales(100.0),
            sql: "SELECT COUNT(*), SUM(amount), AVG(amount) FROM sales".to_string(),
        },
    ]
}

fn has_gather(plan: &RelPlan) -> bool {
    matches!(plan.alg, RelAlg::Gather(_)) || plan.inputs.iter().any(has_gather)
}

/// A final merge above a gather above a per-worker partial aggregation.
fn is_two_phase(plan: &RelPlan) -> bool {
    fn split_gather(p: &RelPlan) -> bool {
        if let RelAlg::Gather(_) = p.alg {
            return matches!(p.inputs[0].alg, RelAlg::PartialHashAggregate(..));
        }
        p.inputs.iter().any(split_gather)
    }
    split_gather(plan)
}

fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

struct WorkloadResult {
    name: &'static str,
    class: &'static str,
    rows: usize,
    tuple_ms: f64,
    batch_serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

fn run_workload(w: &Workload, args: &Args, cfg: BatchConfig) -> WorkloadResult {
    // Parse once: plan_query registers attributes in the catalog, and
    // both models and the database must share that catalog.
    let mut catalog = w.catalog.clone();
    let q = plan_query(&w.sql, &mut catalog).expect("workload query must parse");
    let optimize = |degree: u32| -> RelPlan {
        let model = RelModel::new(
            catalog.clone(),
            RelModelOptions::default().with_parallel_degree(degree),
        );
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&q.expr);
        opt.find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
            .expect("workload query must be satisfiable")
    };
    let serial_plan = optimize(1);
    assert!(
        !has_gather(&serial_plan),
        "{}: degree 1 produced a gather plan",
        w.name
    );
    let parallel_plan = optimize(DEGREE);
    if w.class == "grouped" {
        assert!(
            is_two_phase(&parallel_plan),
            "{}: optimizer refused the two-phase split at degree {DEGREE}:\n{}",
            w.name,
            volcano_rel::explain_plan(&catalog, &parallel_plan)
        );
    }

    let db = Database::in_memory(catalog);
    db.generate(42);

    // Correctness first: integer columns make even SUM/AVG exact, so
    // the serial and two-phase multisets must match bit for bit.
    let expected = sorted_copy(&db.execute(&serial_plan));
    for (tag, rows) in [
        ("serial batch", db.execute_batch(&serial_plan, cfg)),
        ("parallel batch", db.execute_batch(&parallel_plan, cfg)),
        ("parallel fused", db.execute_fused(&parallel_plan, cfg)),
    ] {
        assert_eq!(
            expected,
            sorted_copy(&rows),
            "{}: {tag} diverges from the serial tuple result",
            w.name
        );
    }

    let mut tuple_best = f64::INFINITY;
    let mut batch_best = f64::INFINITY;
    let mut parallel_best = f64::INFINITY;
    for _ in 0..args.reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(db.execute(&serial_plan));
        tuple_best = tuple_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(db.execute_batch(&serial_plan, cfg));
        batch_best = batch_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(db.execute_batch(&parallel_plan, cfg));
        parallel_best = parallel_best.min(t.elapsed().as_secs_f64());
    }
    let tuple_ms = tuple_best * 1e3;
    let parallel_ms = parallel_best * 1e3;
    WorkloadResult {
        name: w.name,
        class: w.class,
        rows: expected.len(),
        tuple_ms,
        batch_serial_ms: batch_best * 1e3,
        parallel_ms,
        speedup: tuple_ms / parallel_ms.max(1e-9),
    }
}

fn baseline_geomean(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v = parse_json(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    v.get("geomean_speedup")
        .and_then(Json::as_num)
        .expect("baseline missing geomean_speedup")
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    let cfg = BatchConfig::with_batch_size(args.batch_size);
    println!("serial-vs-parallel aggregation benchmark");
    println!(
        "card {}, best of {} reps, batch size {}, degree {DEGREE}{}\n",
        args.card,
        args.reps,
        args.batch_size,
        if args.smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<24} {:>8} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "workload", "class", "groups", "tuple ms", "batch@1 ms", "batch@8 ms", "speedup"
    );

    let mut results = Vec::new();
    for w in workloads(args.card) {
        let r = run_workload(&w, &args, cfg);
        println!(
            "{:<24} {:>8} {:>8} {:>10.2} {:>12.2} {:>12.2} {:>8.2}x",
            r.name, r.class, r.rows, r.tuple_ms, r.batch_serial_ms, r.parallel_ms, r.speedup
        );
        results.push(r);
    }

    let g = geomean(&results.iter().map(|r| r.speedup).collect::<Vec<_>>());
    println!("\ngeomean speedup (two-phase batch @{DEGREE} vs serial tuple): {g:.2}x");

    let vs_baseline = args.baseline.as_deref().map(|path| {
        let b = baseline_geomean(path);
        println!("baseline geomean ({path}): {b:.2}x, ratio {:.2}", g / b);
        (b, g / b)
    });

    if let Some(path) = &args.json {
        let items: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"class\":\"{}\",\"rows\":{},",
                        "\"tuple_ms\":{},\"batch_serial_ms\":{},",
                        "\"parallel_ms\":{},\"speedup\":{}}}"
                    ),
                    r.name,
                    r.class,
                    r.rows,
                    r.tuple_ms,
                    r.batch_serial_ms,
                    r.parallel_ms,
                    r.speedup
                )
            })
            .collect();
        let vs = match vs_baseline {
            None => String::new(),
            Some((b, ratio)) => {
                format!(",\"vs_baseline\":{{\"baseline_geomean\":{b},\"ratio\":{ratio}}}")
            }
        };
        let json = format!(
            concat!(
                "{{\"benchmark\":\"exec_agg\",\"card\":{},\"reps\":{},",
                "\"batch_size\":{},\"degree\":{},\"smoke\":{},",
                "\"workloads\":[{}],\"geomean_speedup\":{}{}}}\n"
            ),
            args.card,
            args.reps,
            args.batch_size,
            DEGREE,
            args.smoke,
            items.join(","),
            g,
            vs
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
