//! Search-engine hot-path microbenchmark.
//!
//! Quantifies the mechanisms the hot-path overhaul targets (operator-
//! indexed rule dispatch, goal interning, allocation-free move
//! generation) on the fig4 select–join workload:
//!
//! * **end-to-end optimization time** per complexity level (best-of-reps
//!   per query, so transient noise does not inflate the mean),
//! * **winner-table probe latency** (`best_cost` in a tight loop over
//!   every group of the final memo — the memo-probe hot path),
//! * **move and goal throughput** derived from `SearchStats`,
//! * **peak memo `memory_estimate`** across the level's queries.
//!
//! Usage:
//!   search_hotpath [--queries N] [--reps R] [--min-rel A] [--max-rel B]
//!                  [--json PATH] [--baseline PATH]
//!
//! With `--baseline` (a previous `BENCH_search.json`, e.g. one recorded
//! before a change), the export adds per-level `speedup` factors and
//! their geometric mean so regressions and wins are machine-checkable.

use std::time::Instant;

use volcano_bench::{generate_query, parse_json, Json, WorkloadConfig};
use volcano_core::{PhysicalProps, SearchOptions, SearchStats};
use volcano_rel::{RelModel, RelModelOptions, RelOptimizer, RelProps};

struct Args {
    queries: usize,
    reps: usize,
    min_rel: usize,
    max_rel: usize,
    json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: 12,
        reps: 3,
        min_rel: 4,
        max_rel: 8,
        json: Some("BENCH_search.json".to_string()),
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--queries" => args.queries = it.next().expect("--queries N").parse().expect("number"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("number"),
            "--min-rel" => args.min_rel = it.next().expect("--min-rel A").parse().expect("number"),
            "--max-rel" => args.max_rel = it.next().expect("--max-rel B").parse().expect("number"),
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            "--baseline" => args.baseline = Some(it.next().expect("--baseline PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// One complexity level's aggregated measurements.
struct LevelResult {
    relations: usize,
    /// Mean per-query optimization time (best of reps), seconds.
    opt_s_mean: f64,
    /// Winner-table probe latency, nanoseconds per probe.
    probe_ns: f64,
    /// Algorithm + enforcer moves costed per second of search time.
    moves_per_s: f64,
    /// Goals optimized per second of search time.
    goals_per_s: f64,
    /// Largest memo memory estimate seen at this level, bytes.
    peak_memo_bytes: usize,
    /// Summed search statistics over the level's queries (one rep).
    stats: SearchStats,
    /// Plan-cost checksum over the level (sum of estimated costs):
    /// byte-identical plans across engine variants must agree on it.
    cost_checksum: f64,
}

fn run_level(relations: usize, queries: usize, reps: usize) -> LevelResult {
    let mut per_query_best = Vec::with_capacity(queries);
    let mut level_stats = SearchStats::default();
    let mut peak_memo = 0usize;
    let mut probe_ns_samples = Vec::new();
    let mut cost_checksum = 0.0f64;

    for q in 0..queries {
        let seed = (relations as u64) * 10_000 + q as u64;
        let query = generate_query(&WorkloadConfig::relations(relations), seed);
        let model = RelModel::new(query.catalog.clone(), RelModelOptions::paper_fig4());
        let mut best = f64::INFINITY;
        for rep in 0..reps.max(1) {
            let start = Instant::now();
            let mut opt = RelOptimizer::new(&model, SearchOptions::default());
            let root = opt.insert_tree(&query.expr);
            let plan = opt
                .find_best_plan(root, RelProps::any(), None)
                .expect("fig4 workload is always satisfiable");
            best = best.min(start.elapsed().as_secs_f64());
            if rep == 0 {
                level_stats.merge(opt.stats());
                peak_memo = peak_memo.max(opt.stats().memo_bytes);
                cost_checksum += plan.cost.total();
                // Probe bench: hammer the winner table through the public
                // `best_cost` lookup for every group in the memo.
                let groups = opt.memo().group_ids();
                let any = RelProps::any();
                let probes = 200usize;
                let t = Instant::now();
                let mut hits = 0usize;
                for _ in 0..probes {
                    for &g in &groups {
                        if opt.best_cost(g, &any).is_some() {
                            hits += 1;
                        }
                    }
                }
                let total = probes * groups.len();
                std::hint::black_box(hits);
                if total > 0 {
                    probe_ns_samples.push(t.elapsed().as_nanos() as f64 / total as f64);
                }
            }
        }
        per_query_best.push(best);
    }

    let opt_s_mean = per_query_best.iter().sum::<f64>() / per_query_best.len().max(1) as f64;
    let search_s = level_stats.elapsed.as_secs_f64().max(1e-12);
    LevelResult {
        relations,
        opt_s_mean,
        probe_ns: geomean(&probe_ns_samples),
        moves_per_s: level_stats.total_moves() as f64 / search_s,
        goals_per_s: level_stats.goals_optimized as f64 / search_s,
        peak_memo_bytes: peak_memo,
        stats: level_stats,
        cost_checksum,
    }
}

/// Pull `opt_s_mean` per level out of a previous export for speedups.
fn baseline_levels(path: &str) -> Vec<(usize, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v = parse_json(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    let levels = v
        .get("levels")
        .and_then(Json::as_arr)
        .expect("baseline missing levels");
    levels
        .iter()
        .map(|l| {
            let n = l
                .get("relations")
                .and_then(Json::as_num)
                .expect("baseline level missing relations") as usize;
            let s = l
                .get("opt_s_mean")
                .and_then(Json::as_num)
                .expect("baseline level missing opt_s_mean");
            (n, s)
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    println!("search hot-path benchmark: fig4 workload, exhaustive search");
    println!(
        "{} queries/level, best of {} reps, {}-{} relations\n",
        args.queries, args.reps, args.min_rel, args.max_rel
    );
    println!(
        "{:>4} | {:>11} {:>9} {:>12} {:>12} {:>10}",
        "rels", "opt mean", "probe ns", "moves/s", "goals/s", "memo KB"
    );

    let mut levels = Vec::new();
    for n in args.min_rel..=args.max_rel {
        let lvl = run_level(n, args.queries, args.reps);
        println!(
            "{:>4} | {:>10.4}s {:>9.1} {:>12.0} {:>12.0} {:>10}",
            lvl.relations,
            lvl.opt_s_mean,
            lvl.probe_ns,
            lvl.moves_per_s,
            lvl.goals_per_s,
            lvl.peak_memo_bytes / 1024
        );
        levels.push(lvl);
    }

    let speedups: Option<Vec<(usize, f64)>> = args.baseline.as_deref().map(|path| {
        let base = baseline_levels(path);
        levels
            .iter()
            .filter_map(|l| {
                base.iter()
                    .find(|(n, _)| *n == l.relations)
                    .map(|(n, s)| (*n, s / l.opt_s_mean.max(1e-12)))
            })
            .collect()
    });
    if let Some(sp) = &speedups {
        println!(
            "\nspeedup vs baseline ({}):",
            args.baseline.as_deref().unwrap()
        );
        for (n, s) in sp {
            println!("  {n} relations: {s:.2}x");
        }
        let g = geomean(&sp.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        println!("  geometric mean: {g:.2}x");
    }

    if let Some(path) = &args.json {
        let mut level_json: Vec<String> = Vec::new();
        for l in &levels {
            level_json.push(format!(
                concat!(
                    "{{\"relations\":{},\"queries\":{},\"opt_s_mean\":{},",
                    "\"probe_ns\":{},\"moves_per_s\":{},\"goals_per_s\":{},",
                    "\"peak_memo_bytes\":{},\"cost_checksum\":{},\"search\":{}}}"
                ),
                l.relations,
                args.queries,
                l.opt_s_mean,
                l.probe_ns,
                l.moves_per_s,
                l.goals_per_s,
                l.peak_memo_bytes,
                l.cost_checksum,
                l.stats.to_json()
            ));
        }
        let speedup_json = match &speedups {
            None => String::new(),
            Some(sp) => {
                let per: Vec<String> = sp
                    .iter()
                    .map(|(n, s)| format!("{{\"relations\":{n},\"speedup\":{s}}}"))
                    .collect();
                let g = geomean(&sp.iter().map(|(_, s)| *s).collect::<Vec<_>>());
                format!(
                    ",\"speedup\":{{\"per_level\":[{}],\"geomean\":{}}}",
                    per.join(","),
                    g
                )
            }
        };
        let json = format!(
            concat!(
                "{{\"benchmark\":\"search_hotpath\",\"queries_per_level\":{},",
                "\"reps\":{},\"levels\":[{}]{}}}\n"
            ),
            args.queries,
            args.reps,
            level_json.join(","),
            speedup_json
        );
        std::fs::write(path, json).expect("write json");
        println!("\nJSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
