//! Cold-vs-warm plan cache benchmark.
//!
//! Measures end-to-end prepared-statement serving latency with the plan
//! cache disabled (every execution pays parse-free lowering plus a full
//! memo search) against warm-cache serving (lowering plus parameter
//! re-binding of the cached template — `find_best_plan` is never
//! called). The delta is the optimization work the cache removes from
//! the serving path. Workloads fall in two classes:
//!
//! * **headline** — wide join shapes (5 and 7 tables), where
//!   join-order search dominates serving cost. Their speedups form the
//!   headline geometric mean, which CI gates at ≥ 5.0× on full runs
//!   (see `check_schema`).
//! * **short** — shapes of up to three tables whose optimization is
//!   already cheap; the cache can only win small there. Reported
//!   separately and excluded from the headline geomean: they measure
//!   the serving path's fixed overhead, not the cached search.
//!
//! Every workload is verified each run: warm and cold executions must
//! return identical row multisets, and the warm path must report a
//! cache hit with no search statistics.
//!
//! Usage:
//!   plan_cache [--card N] [--reps R] [--smoke] [--json PATH] [--no-json]
//!
//! `--smoke` shrinks cardinalities and repetitions and marks the export
//! `"smoke":true`, which exempts it from `check_schema`'s ≥ 5× geomean
//! gate (debug-build CI runs are not representative).

use std::time::Instant;

use volcano_exec::Database;
use volcano_rel::value::Tuple;
use volcano_rel::{Catalog, ColumnDef, Value};

struct Args {
    card: usize,
    reps: usize,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        card: 1_000,
        reps: 50,
        smoke: false,
        json: Some("BENCH_cache.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--card" => args.card = it.next().expect("--card N").parse().expect("number"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("number"),
            "--smoke" => {
                args.smoke = true;
                args.card = 200;
                args.reps = 5;
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A star-schema catalog: one fact table and six dimensions, so the
/// widest workload optimizes a seven-way join. Join-order search cost
/// grows steeply with width while the (filtered) execution stays cheap,
/// which is exactly the regime where a plan cache pays: short queries
/// whose serving time is dominated by optimization.
fn catalog(card: usize) -> Catalog {
    let card_f = card as f64;
    let mut c = Catalog::new();
    c.add_table(
        "fact",
        card_f,
        vec![
            ColumnDef::int("id", card_f),
            ColumnDef::int("d1", 50.0),
            ColumnDef::int("d2", 40.0),
            ColumnDef::int("d3", 30.0),
            ColumnDef::int("d4", 20.0),
            ColumnDef::int("d5", 15.0),
            ColumnDef::int("d6", 10.0),
            ColumnDef::int("v", 100.0),
        ],
    );
    for (name, dcard) in [
        ("dim1", 50.0),
        ("dim2", 40.0),
        ("dim3", 30.0),
        ("dim4", 20.0),
        ("dim5", 15.0),
        ("dim6", 10.0),
    ] {
        c.add_table(
            name,
            dcard,
            vec![ColumnDef::int("id", dcard), ColumnDef::int("attr", 5.0)],
        );
    }
    c
}

struct Workload {
    name: &'static str,
    /// "headline" (join-order-bound, gated) or "short".
    class: &'static str,
    sql: &'static str,
    /// Parameter values cycled across repetitions (distinct bindings,
    /// same shape — the cache must serve all of them from one entry).
    params: &'static [i64],
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "select_1tab",
        class: "short",
        sql: "SELECT fact.id FROM fact WHERE fact.v < $0 ORDER BY fact.id",
        params: &[3, 7, 11],
    },
    Workload {
        name: "join_2way",
        class: "short",
        sql: "SELECT fact.id FROM fact, dim1 \
              WHERE fact.d1 = dim1.id AND fact.v < $0",
        params: &[3, 7, 11],
    },
    Workload {
        name: "join_3way",
        class: "short",
        sql: "SELECT fact.id FROM fact, dim1, dim2 \
              WHERE fact.d1 = dim1.id AND fact.d2 = dim2.id AND fact.v < $0 \
              ORDER BY fact.id",
        params: &[3, 7, 11],
    },
    Workload {
        name: "join_5way",
        class: "headline",
        sql: "SELECT fact.id FROM fact, dim1, dim2, dim3, dim4 \
              WHERE fact.d1 = dim1.id AND fact.d2 = dim2.id \
              AND fact.d3 = dim3.id AND fact.d4 = dim4.id AND fact.v < $0",
        params: &[3, 7, 11],
    },
    Workload {
        name: "join_7way",
        class: "headline",
        sql: "SELECT fact.id FROM fact, dim1, dim2, dim3, dim4, dim5, dim6 \
              WHERE fact.d1 = dim1.id AND fact.d2 = dim2.id \
              AND fact.d3 = dim3.id AND fact.d4 = dim4.id \
              AND fact.d5 = dim5.id AND fact.d6 = dim6.id AND fact.v < $0",
        params: &[3, 7, 11],
    },
    Workload {
        name: "agg_group",
        class: "short",
        sql: "SELECT fact.d1, COUNT(*) FROM fact, dim1 \
              WHERE fact.d1 = dim1.id AND fact.v < $0 \
              GROUP BY fact.d1 ORDER BY fact.d1",
        params: &[3, 7, 11],
    },
];

struct WorkloadResult {
    name: &'static str,
    class: &'static str,
    rows: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
}

fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

fn run_workload(db: &Database, w: &Workload, reps: usize) -> WorkloadResult {
    let stmt = db.prepare(w.sql).expect("workload must prepare");
    let bind = |i: usize| vec![Value::Int(w.params[i % w.params.len()])];

    // Correctness first: warm and cold must agree, and warm must be a
    // genuine hit that skipped the optimizer.
    db.set_plan_cache_enabled(false);
    let cold_rows = db
        .execute_prepared(&stmt, &bind(0), None)
        .expect("cold run");
    db.set_plan_cache_enabled(true);
    db.execute_prepared(&stmt, &bind(0), None)
        .expect("warming run");
    let warm = db
        .execute_prepared_traced(&stmt, &bind(0), None, None)
        .expect("warm run");
    assert_eq!(warm.cache, "hit", "{}: warm run missed the cache", w.name);
    assert!(
        warm.search.is_none(),
        "{}: warm run invoked the optimizer",
        w.name
    );
    assert_eq!(
        sorted_copy(&cold_rows),
        sorted_copy(&warm.rows),
        "{}: cold and warm executions disagree",
        w.name
    );
    let rows = cold_rows.len();
    drop((cold_rows, warm));

    db.set_plan_cache_enabled(false);
    let t = Instant::now();
    for i in 0..reps {
        std::hint::black_box(db.execute_prepared(&stmt, &bind(i), None).expect("cold"));
    }
    let cold_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    db.set_plan_cache_enabled(true);
    db.execute_prepared(&stmt, &bind(0), None).expect("rewarm");
    let t = Instant::now();
    for i in 0..reps {
        std::hint::black_box(db.execute_prepared(&stmt, &bind(i), None).expect("warm"));
    }
    let warm_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    WorkloadResult {
        name: w.name,
        class: w.class,
        rows,
        cold_ms,
        warm_ms,
        speedup: cold_ms / warm_ms.max(1e-9),
    }
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    println!("cold-vs-warm plan cache benchmark");
    println!(
        "fact card {}, {} reps per mode{}\n",
        args.card,
        args.reps,
        if args.smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "workload", "class", "rows", "cold ms", "warm ms", "speedup"
    );

    let db = Database::in_memory(catalog(args.card));
    db.generate(42);

    let mut results = Vec::new();
    for w in WORKLOADS {
        let r = run_workload(&db, w, args.reps);
        println!(
            "{:<14} {:>8} {:>8} {:>10.3} {:>10.3} {:>8.2}x",
            r.name, r.class, r.rows, r.cold_ms, r.warm_ms, r.speedup
        );
        results.push(r);
    }

    let headline: Vec<&WorkloadResult> = results.iter().filter(|r| r.class == "headline").collect();
    let short: Vec<&WorkloadResult> = results.iter().filter(|r| r.class == "short").collect();
    let g = geomean(&headline.iter().map(|r| r.speedup).collect::<Vec<_>>());
    println!("\nheadline geomean speedup: {g:.2}x (short workloads excluded)");
    let stats = db.plan_cache().stats();
    println!("cache counters: {}", stats.to_json());
    assert_eq!(
        stats.lookups,
        stats.hits + stats.misses + stats.invalidations,
        "cache counters failed to reconcile"
    );

    if let Some(path) = &args.json {
        let render = |rs: &[&WorkloadResult]| -> String {
            rs.iter()
                .map(|r| {
                    format!(
                        concat!(
                            "{{\"name\":\"{}\",\"class\":\"{}\",\"rows\":{},",
                            "\"cold_ms\":{},\"warm_ms\":{},\"speedup\":{}}}"
                        ),
                        r.name, r.class, r.rows, r.cold_ms, r.warm_ms, r.speedup
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        let json = format!(
            concat!(
                "{{\"benchmark\":\"plan_cache\",\"card\":{},\"reps\":{},",
                "\"smoke\":{},\"workloads\":[{}],\"short_workloads\":[{}],",
                "\"geomean_speedup\":{},\"cache_stats\":{}}}\n"
            ),
            args.card,
            args.reps,
            args.smoke,
            render(&headline),
            render(&short),
            g,
            stats.to_json()
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
