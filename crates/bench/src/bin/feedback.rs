//! Adaptive-feedback convergence benchmark.
//!
//! Measures the two numbers that justify feedback-driven
//! re-optimization: how many executions a repeatedly-wrong cached plan
//! needs before the drift guard re-optimizes it onto the oracle plan,
//! and how much faster the converged plan actually runs.
//!
//! The workload is the canonical estimate-killer: an equality predicate
//! on a Zipf-distributed column whose catalog statistics claim
//! uniformity. The static estimate prices the predicate at well under
//! 1% selectivity when the hot key really passes the majority of the
//! table, so the first plan is built for a tiny join input (nested
//! loops / wrong build side / early sort). With feedback ON, executing
//! the plan merges the observed selectivity into the catalog's memory,
//! bumps the stats epoch, and the next cache probe trips the drift
//! guard and re-optimizes under observed statistics.
//!
//! The oracle plan is computed by *forced-stats* optimization (a fresh
//! database whose memory is primed with the true selectivity), and both
//! measurements are verified: wrong and converged executions must
//! return identical row multisets.
//!
//! Usage:
//!   feedback [--rows N] [--reps R] [--smoke] [--json PATH] [--no-json]
//!
//! `--smoke` shrinks the table and repetitions and marks the export
//! `"smoke":true`, which exempts it from `check_schema`'s gates
//! (convergence within 5 executions, ≥ 2× improvement) — debug-build
//! CI runs are not representative of the latency ratio.

use std::time::Instant;

use volcano_exec::{BatchConfig, Database, Engine, ExecOptions};
use volcano_rel::value::Tuple;
use volcano_rel::{explain_plan, Catalog, Cmp, CmpOp, ColumnDef, Observation, RelPlan, Value};

struct Args {
    rows: usize,
    reps: usize,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        rows: 40_000,
        reps: 30,
        smoke: false,
        json: Some("BENCH_feedback.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rows" => args.rows = it.next().expect("--rows N").parse().expect("number"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("number"),
            "--smoke" => {
                args.smoke = true;
                args.rows = 4_000;
                args.reps = 3;
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// Deterministic LCG (no rand dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn unit(&mut self) -> f64 {
        (self.next() % (1 << 24)) as f64 / (1 << 24) as f64
    }
}

/// Zipf(s) keys over `0..n_keys` via inverse-CDF sampling.
fn zipf_keys(n: usize, n_keys: usize, s: f64, seed: u64) -> Vec<i64> {
    let mut mass = 0.0;
    let cdf: Vec<f64> = (1..=n_keys)
        .map(|rank| {
            mass += 1.0 / (rank as f64).powf(s);
            mass
        })
        .collect();
    let total = *cdf.last().unwrap();
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let u = rng.unit() * total;
            cdf.partition_point(|&c| c < u) as i64
        })
        .collect()
}

/// The parameterized probe: skewed equality feeding a join, with a sort
/// goal so misestimated cardinalities hurt twice (join sizing and sort
/// placement).
const SQL: &str = "SELECT emp.id FROM emp, dept \
                   WHERE emp.dept = dept.id AND emp.status = $0 \
                   ORDER BY emp.id";

/// Statistics claim `status` is unique (distinct = cardinality — say,
/// collected back when it really was a key), so the equality estimates
/// a single row and the optimizer picks nested loops with `dept` as
/// the rescanned inner. The data draws it Zipf(2.0) over 1000 values:
/// the hot key really passes ~60% of the table, and every one of those
/// rows rescans the inner — the catastrophic wrong plan that feedback
/// exists to fix.
fn build_catalog(rows: usize) -> Catalog {
    let rows_f = rows as f64;
    let mut c = Catalog::new();
    c.add_table(
        "emp",
        rows_f,
        vec![
            ColumnDef::int("id", rows_f),
            ColumnDef::int("status", rows_f),
            ColumnDef::int("dept", 20.0),
        ],
    );
    c.add_table(
        "dept",
        1000.0,
        vec![ColumnDef::int("id", 1000.0), ColumnDef::int("region", 4.0)],
    );
    c
}

/// A populated database plus the true hot-key selectivity.
fn populated_db(rows: usize) -> (Database, f64) {
    let catalog = build_catalog(rows);
    let emp = catalog.table_by_name("emp").unwrap().id;
    let dept = catalog.table_by_name("dept").unwrap().id;
    let db = Database::in_memory(catalog);
    let status = zipf_keys(rows, 1000, 2.0, 42);
    let hot = status.iter().filter(|&&s| s == 0).count();
    for (i, &s) in status.iter().enumerate() {
        db.insert(
            emp,
            vec![
                Value::Int(i as i64),
                Value::Int(s),
                Value::Int((i % 20) as i64),
            ],
        );
    }
    for i in 0..1000i64 {
        db.insert(dept, vec![Value::Int(i), Value::Int(i % 4)]);
    }
    (db, hot as f64 / rows as f64)
}

fn explain(db: &Database, plan: &RelPlan) -> String {
    explain_plan(db.snapshot().catalog(), plan)
}

/// The oracle plan by forced-stats optimization.
fn oracle_explain(rows: usize, engine: Engine, true_sel: f64) -> String {
    let (db, _) = populated_db(rows);
    let status = db.catalog().table_by_name("emp").unwrap().columns[1].attr;
    let key = volcano_rel::term_key(&Cmp::with_param(status, CmpOp::Eq, 0i64, 0));
    db.apply_feedback(&[Observation {
        key,
        observed: true_sel,
        estimated: 1.0 / rows as f64,
    }]);
    let stmt = db.prepare(SQL).expect("oracle prepare");
    let out = db
        .execute_prepared_opts(
            &stmt,
            &[Value::Int(0)],
            &ExecOptions::new().with_executor(engine),
            None,
        )
        .expect("oracle execution");
    explain(&db, &out.plan)
}

fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

struct EngineResult {
    engine: &'static str,
    executions_to_converge: usize,
    wrong_ms: f64,
    converged_ms: f64,
    improvement: f64,
}

fn run_engine(rows: usize, reps: usize, engine: Engine) -> EngineResult {
    let (db, true_sel) = populated_db(rows);
    let oracle = oracle_explain(rows, engine, true_sel);
    let opts = ExecOptions::new().with_executor(engine);
    let params = [Value::Int(0)];

    // Phase 1: wrong-plan latency, feedback OFF — the cached plan never
    // moves, so every repetition runs the misestimated plan.
    let stmt = db.prepare(SQL).expect("prepare");
    let wrong_out = db
        .execute_prepared_opts(&stmt, &params, &opts, None)
        .expect("wrong-plan execution");
    let wrong_explain = explain(&db, &wrong_out.plan);
    assert_ne!(
        wrong_explain,
        oracle,
        "{}: the misestimate failed to produce a wrong plan",
        engine.label()
    );
    if std::env::var("FEEDBACK_BENCH_VERBOSE").is_ok() {
        eprintln!(
            "== {} wrong ==\n{wrong_explain}== oracle ==\n{oracle}",
            engine.label()
        );
    }
    let expected = sorted_copy(&wrong_out.rows);
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            db.execute_prepared_opts(&stmt, &params, &opts, None)
                .expect("wrong-plan rep"),
        );
    }
    let wrong_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    // Phase 2: turn feedback on and count executions until the served
    // plan equals the oracle (the wrong plan is already cached, as in a
    // live system that has been serving it).
    db.set_feedback_enabled(true);
    let mut executions = 0usize;
    loop {
        executions += 1;
        let out = db
            .execute_prepared_opts(&stmt, &params, &opts, None)
            .expect("convergence execution");
        assert_eq!(
            sorted_copy(&out.rows),
            expected,
            "{}: plan change altered results",
            engine.label()
        );
        if explain(&db, &out.plan) == oracle {
            break;
        }
        assert!(
            executions < 25,
            "{}: no convergence after {executions} executions",
            engine.label()
        );
    }

    // Phase 3: converged-plan latency (feedback still on — steady
    // state; observations now agree with memory, so no further bumps).
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            db.execute_prepared_opts(&stmt, &params, &opts, None)
                .expect("converged rep"),
        );
    }
    let converged_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    EngineResult {
        engine: engine.label(),
        executions_to_converge: executions,
        wrong_ms,
        converged_ms,
        improvement: wrong_ms / converged_ms.max(1e-9),
    }
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    println!("adaptive-feedback convergence benchmark");
    println!(
        "emp rows {}, {} reps per mode{}\n",
        args.rows,
        args.reps,
        if args.smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12}",
        "engine", "converge", "wrong ms", "converged ms", "improvement"
    );

    let engines = [
        Engine::Tuple,
        Engine::Batch(BatchConfig::default()),
        Engine::Fused(BatchConfig::default()),
    ];
    let mut results = Vec::new();
    for engine in engines {
        let r = run_engine(args.rows, args.reps, engine);
        println!(
            "{:<8} {:>12} {:>12.3} {:>14.3} {:>11.2}x",
            r.engine, r.executions_to_converge, r.wrong_ms, r.converged_ms, r.improvement
        );
        results.push(r);
    }

    let max_converge = results
        .iter()
        .map(|r| r.executions_to_converge)
        .max()
        .unwrap();
    let g = geomean(&results.iter().map(|r| r.improvement).collect::<Vec<_>>());
    println!("\nmax executions to converge: {max_converge}");
    println!("geomean improvement: {g:.2}x");

    if let Some(path) = &args.json {
        let engines_json = results
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"engine\":\"{}\",\"executions_to_converge\":{},",
                        "\"wrong_ms\":{},\"converged_ms\":{},\"improvement_ratio\":{}}}"
                    ),
                    r.engine, r.executions_to_converge, r.wrong_ms, r.converged_ms, r.improvement
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let json = format!(
            concat!(
                "{{\"benchmark\":\"feedback\",\"rows\":{},\"reps\":{},",
                "\"smoke\":{},\"engines\":[{}],",
                "\"max_executions_to_converge\":{},\"geomean_improvement\":{}}}\n"
            ),
            args.rows, args.reps, args.smoke, engines_json, max_converge, g
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
