//! Morsel-driven parallel execution benchmark.
//!
//! Measures how the batch engine scales with the optimizer-chosen
//! parallel degree on scan-heavy and join-heavy workloads. Each
//! workload is optimized once per degree in {1, 2, 4, 8} — at degree 1
//! the model has no gather enforcer and yields the serial plan (the
//! baseline); at higher degrees the winning plan must contain a
//! `gather(n)`, or the harness panics (the optimizer silently refusing
//! to parallelize would turn this into a serial-vs-serial measurement).
//!
//! The database sits on a [`LatencyDisk`]: every page read carries a
//! fixed simulated latency, and the buffer pool is deliberately smaller
//! than the tables so sequential scans miss continuously. That models
//! the regime parallel scans exist for — I/O-latency-bound plans where
//! workers overlap their reads (the buffer pool releases its lock
//! across misses precisely to allow this) — and keeps the measurement
//! meaningful on single-core CI runners, where a CPU-bound sweep would
//! show no scaling at all.
//!
//! Each workload is verified per degree: the parallel engine must
//! produce the serial plan's row multiset, or the harness panics.
//!
//! Usage:
//!   exec_parallel [--card N] [--reps R] [--latency-us U] [--smoke]
//!                 [--json PATH] [--no-json]
//!
//! `--smoke` shrinks cardinalities/latency and marks the export
//! `"smoke":true`, which exempts it from the ≥ 3.0× scaling gate
//! (debug-build CI runs are not representative).

use std::sync::Arc;
use std::time::{Duration, Instant};

use volcano_core::SearchOptions;
use volcano_exec::{BatchConfig, Database};
use volcano_rel::value::Tuple;
use volcano_rel::{
    Catalog, ColumnDef, RelAlg, RelModel, RelModelOptions, RelOptimizer, RelPlan, RelProps,
};
use volcano_sql::plan_query;
use volcano_store::{DiskManager, LatencyDisk, MemDisk};

/// The degree sweep; the first entry must be 1 (the serial baseline).
const DEGREES: [u32; 4] = [1, 2, 4, 8];

/// Buffer-pool pages: smaller than every benchmarked table, so scans
/// miss continuously and pay the simulated read latency.
const POOL_PAGES: usize = 128;

struct Args {
    card: usize,
    reps: usize,
    latency_us: u64,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        card: 60_000,
        reps: 2,
        latency_us: 300,
        smoke: false,
        json: Some("BENCH_parallel.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--card" => args.card = it.next().expect("--card N").parse().expect("number"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("number"),
            "--latency-us" => {
                args.latency_us = it.next().expect("--latency-us U").parse().expect("number")
            }
            "--smoke" => {
                args.smoke = true;
                args.card = 4_000;
                args.reps = 1;
                args.latency_us = 50;
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// One benchmark workload: a catalog and a query whose parallel plans
/// the sweep measures.
struct Workload {
    name: &'static str,
    /// "scan" (scan→filter→project pipeline) or "join" (hash join).
    class: &'static str,
    catalog: Catalog,
    sql: String,
}

fn workloads(card: usize) -> Vec<Workload> {
    let card_f = card as f64;
    let scan_catalog = || {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            card_f,
            vec![
                ColumnDef::int("a", card_f),
                ColumnDef::int("b", 1000.0),
                ColumnDef::int("c", 100.0),
            ],
        );
        c
    };
    let join_catalog = || {
        let mut c = Catalog::new();
        c.add_table(
            "fact",
            card_f,
            vec![
                ColumnDef::int("k", card_f / 8.0),
                ColumnDef::int("v", 1000.0),
            ],
        );
        c.add_table(
            "dim",
            card_f / 8.0,
            vec![
                ColumnDef::int("id", card_f / 8.0),
                ColumnDef::int("r", 10.0),
            ],
        );
        c
    };
    vec![
        Workload {
            name: "scan_filter_project",
            class: "scan",
            catalog: scan_catalog(),
            sql: "SELECT t.a FROM t WHERE t.c < 30".to_string(),
        },
        Workload {
            name: "scan_project",
            class: "scan",
            catalog: scan_catalog(),
            sql: "SELECT t.a, t.b FROM t".to_string(),
        },
        Workload {
            name: "hash_join",
            class: "join",
            catalog: join_catalog(),
            sql: "SELECT fact.v, dim.r FROM fact, dim WHERE fact.k = dim.id".to_string(),
        },
    ]
}

fn has_gather(plan: &RelPlan) -> bool {
    matches!(plan.alg, RelAlg::Gather(_)) || plan.inputs.iter().any(has_gather)
}

fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

struct DegreePoint {
    threads: u32,
    ms: f64,
    speedup: f64,
}

struct WorkloadResult {
    name: &'static str,
    class: &'static str,
    rows: usize,
    serial_ms: f64,
    points: Vec<DegreePoint>,
}

fn run_workload(w: &Workload, args: &Args) -> WorkloadResult {
    // Parse once: plan_query registers attributes in the catalog, and
    // the optimizer and database must share that catalog.
    let mut catalog = w.catalog.clone();
    let q = plan_query(&w.sql, &mut catalog).expect("workload query must parse");
    let optimize = |degree: u32| -> RelPlan {
        let model = RelModel::new(
            catalog.clone(),
            RelModelOptions::default().with_parallel_degree(degree),
        );
        let mut opt = RelOptimizer::new(&model, SearchOptions::default());
        let root = opt.insert_tree(&q.expr);
        opt.find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
            .expect("workload query must be satisfiable")
    };

    // I/O-latency-bound setup: simulated read latency under a pool too
    // small for the tables. The latency wrapper sleeps outside any
    // lock, so parallel workers genuinely overlap their misses.
    let disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(
        Arc::new(MemDisk::new()),
        Duration::from_micros(args.latency_us),
    ));
    let db = Database::with_disk(catalog.clone(), disk, POOL_PAGES);
    db.generate(42);

    let timed = |plan: &RelPlan| {
        let mut best = f64::INFINITY;
        for _ in 0..args.reps.max(1) {
            let t = Instant::now();
            std::hint::black_box(db.execute_batch(plan, BatchConfig::default()));
            best = best.min(t.elapsed().as_secs_f64());
        }
        best * 1e3
    };

    let serial_plan = optimize(1);
    assert!(
        !has_gather(&serial_plan),
        "{}: degree 1 produced a gather plan",
        w.name
    );
    let expected = sorted_copy(&db.execute_batch(&serial_plan, BatchConfig::default()));
    let serial_ms = timed(&serial_plan);

    let mut points = Vec::new();
    for degree in DEGREES {
        let plan = if degree == 1 {
            serial_plan.clone()
        } else {
            let plan = optimize(degree);
            assert!(
                has_gather(&plan),
                "{}: optimizer refused to parallelize at degree {degree}:\n{}",
                w.name,
                volcano_rel::explain_plan(&catalog, &plan)
            );
            // Correctness first: a speedup over a wrong answer is
            // worthless.
            let rows = sorted_copy(&db.execute_batch(&plan, BatchConfig::default()));
            assert_eq!(
                rows, expected,
                "{}: parallel result diverges at degree {degree}",
                w.name
            );
            plan
        };
        let ms = timed(&plan);
        points.push(DegreePoint {
            threads: degree,
            ms,
            speedup: serial_ms / ms.max(1e-9),
        });
    }
    WorkloadResult {
        name: w.name,
        class: w.class,
        rows: expected.len(),
        serial_ms,
        points,
    }
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    println!("morsel-driven parallel execution benchmark");
    println!(
        "card {}, best of {} reps, read latency {} us, pool {} pages{}\n",
        args.card,
        args.reps,
        args.latency_us,
        POOL_PAGES,
        if args.smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<22} {:>6} {:>9} {:>9}   threads: ms (speedup)",
        "workload", "class", "rows", "serial ms"
    );

    let mut results = Vec::new();
    for w in workloads(args.card) {
        let r = run_workload(&w, &args);
        let sweep: Vec<String> = r
            .points
            .iter()
            .map(|p| format!("{}: {:.1} ({:.2}x)", p.threads, p.ms, p.speedup))
            .collect();
        println!(
            "{:<22} {:>6} {:>9} {:>9.1}   {}",
            r.name,
            r.class,
            r.rows,
            r.serial_ms,
            sweep.join("  ")
        );
        results.push(r);
    }

    // Per-degree geomean across workloads; the 8-thread figure is the
    // gated headline.
    let mut scaling = Vec::new();
    for (i, &degree) in DEGREES.iter().enumerate() {
        let g = geomean(
            &results
                .iter()
                .map(|r| r.points[i].speedup)
                .collect::<Vec<_>>(),
        );
        scaling.push((degree, g));
    }
    let geomean_8 = scaling
        .iter()
        .find(|(d, _)| *d == 8)
        .map(|(_, g)| *g)
        .expect("degree 8 in sweep");
    println!(
        "\nscaling geomean: {}",
        scaling
            .iter()
            .map(|(d, g)| format!("{d} threads: {g:.2}x"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    if let Some(path) = &args.json {
        let workloads_json: Vec<String> = results
            .iter()
            .map(|r| {
                let points: Vec<String> = r
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"threads\":{},\"ms\":{},\"speedup\":{}}}",
                            p.threads, p.ms, p.speedup
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"class\":\"{}\",\"rows\":{},",
                        "\"serial_ms\":{},\"threads\":[{}]}}"
                    ),
                    r.name,
                    r.class,
                    r.rows,
                    r.serial_ms,
                    points.join(",")
                )
            })
            .collect();
        let scaling_json: Vec<String> = scaling
            .iter()
            .map(|(d, g)| format!("{{\"threads\":{d},\"geomean_speedup\":{g}}}"))
            .collect();
        let json = format!(
            concat!(
                "{{\"benchmark\":\"exec_parallel\",\"card\":{},\"reps\":{},",
                "\"latency_us\":{},\"pool_pages\":{},\"smoke\":{},",
                "\"workloads\":[{}],\"scaling\":[{}],\"geomean_8\":{}}}\n"
            ),
            args.card,
            args.reps,
            args.latency_us,
            POOL_PAGES,
            args.smoke,
            workloads_json.join(","),
            scaling_json.join(","),
            geomean_8
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
