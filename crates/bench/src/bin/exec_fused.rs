//! Batch-vs-fused executor benchmark.
//!
//! Runs the same optimized physical plans through the vectorized batch
//! engine (`Database::execute_batch`) and the pipeline-fused engine
//! (`Database::execute_fused`) and reports per-workload wall time and
//! speedup. The workloads are the batch benchmark's headline shapes —
//! scan→filter→project pipelines and hash joins — because those are
//! exactly the segments the fused compiler turns into single compiled
//! loops: projected record decode skips unused columns at the page,
//! predicate conjuncts run through monomorphized kernels, and probe +
//! project fuse into one gather, with zero `next_batch` dispatch
//! between the plan's operators.
//!
//! Per repository convention the database sits on a [`LatencyDisk`]
//! behind an undersized buffer pool, so scans keep paying per-page
//! misses. The simulated latency defaults to zero: OS sleep granularity
//! makes any nonzero `thread::sleep` cost tens of microseconds per
//! page, which turns every workload I/O-bound and buries the CPU
//! comparison this benchmark is about (`--latency-us` remains available
//! for I/O-bound runs).
//!
//! The timed region compiles a plan for one engine and drives the
//! resulting operator tree batch-to-batch — the consumer interface both
//! engines share — counting delivered rows. Materializing client-side
//! row tuples is deliberately outside the loop: both engines pay that
//! identical per-row cost, and it measures the client, not the engine.
//!
//! Each workload is verified once per run: tuple, batch, and fused
//! engines must produce the same multiset of rows, or the harness
//! panics — a speedup over a wrong answer is worthless. Every timed
//! drive must also deliver exactly the verified row count.
//!
//! Usage:
//!   exec_fused [--card N] [--reps R] [--batch-size B] [--latency-us U]
//!              [--smoke] [--json PATH] [--no-json]
//!
//! `--smoke` shrinks cardinalities and marks the export `"smoke":true`,
//! which exempts it from the ≥ 1.25× geomean gate (debug-build CI runs
//! are not representative).

use std::sync::Arc;
use std::time::{Duration, Instant};

use volcano_core::SearchOptions;
use volcano_exec::{compile_batch, compile_fused, Batch, BatchConfig, BatchOperator, Database};
use volcano_rel::value::Tuple;
use volcano_rel::{Catalog, ColumnDef, RelModel, RelOptimizer, RelPlan, RelProps};
use volcano_sql::plan_query;
use volcano_store::{DiskManager, LatencyDisk, MemDisk};

/// Default buffer-pool pages: smaller than every benchmarked table, so
/// scans miss continuously and pay the simulated read latency.
const POOL_PAGES: usize = 128;

struct Args {
    card: usize,
    reps: usize,
    batch_size: usize,
    latency_us: u64,
    pool_pages: usize,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        card: 200_000,
        reps: 3,
        batch_size: 1024,
        latency_us: 0,
        pool_pages: POOL_PAGES,
        smoke: false,
        json: Some("BENCH_fused.json".to_string()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--card" => args.card = it.next().expect("--card N").parse().expect("number"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("number"),
            "--batch-size" => {
                args.batch_size = it.next().expect("--batch-size B").parse().expect("number")
            }
            "--latency-us" => {
                args.latency_us = it.next().expect("--latency-us U").parse().expect("number")
            }
            "--pool-pages" => {
                args.pool_pages = it.next().expect("--pool-pages P").parse().expect("number")
            }
            "--smoke" => {
                args.smoke = true;
                args.card = 5_000;
                args.reps = 1;
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// One benchmark workload: a catalog, a query, and the operator shape
/// the winning plan must contain (so a planner change cannot silently
/// turn a join benchmark into something else).
struct Workload {
    name: &'static str,
    class: &'static str,
    catalog: Catalog,
    sql: String,
    expect_op: &'static str,
}

/// The batch benchmark's headline shapes: all fully fusable, so the
/// measurement is fused-loop throughput vs per-operator batch dispatch.
fn workloads(card: usize) -> Vec<Workload> {
    let card_f = card as f64;
    let scan_catalog = || {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            card_f,
            vec![
                ColumnDef::int("a", card_f),
                ColumnDef::int("b", 1000.0),
                ColumnDef::int("c", 100.0),
                ColumnDef::int("d", 10.0),
            ],
        );
        c
    };
    let join_catalog = |dim_card: f64, key_distinct: f64| {
        let mut c = Catalog::new();
        c.add_table(
            "fact",
            card_f,
            vec![
                ColumnDef::int("k", key_distinct),
                ColumnDef::int("v", 1000.0),
            ],
        );
        c.add_table(
            "dim",
            dim_card,
            vec![ColumnDef::int("id", dim_card), ColumnDef::int("r", 10.0)],
        );
        c
    };
    vec![
        Workload {
            name: "scan_project",
            class: "headline",
            catalog: scan_catalog(),
            sql: "SELECT t.a, t.b FROM t".to_string(),
            expect_op: "scan",
        },
        Workload {
            name: "scan_filter_project",
            class: "headline",
            catalog: scan_catalog(),
            sql: "SELECT t.a FROM t WHERE t.c < 30".to_string(),
            expect_op: "scan",
        },
        Workload {
            name: "scan_filter_project_low",
            class: "headline",
            catalog: scan_catalog(),
            sql: "SELECT t.a FROM t WHERE t.c < 2".to_string(),
            expect_op: "scan",
        },
        Workload {
            name: "hash_join_small_build",
            class: "headline",
            catalog: join_catalog(100.0, 100.0),
            sql: "SELECT fact.v, dim.r FROM fact, dim WHERE fact.k = dim.id".to_string(),
            expect_op: "hash_join",
        },
        Workload {
            name: "hash_join_large_build",
            class: "headline",
            catalog: join_catalog(card_f / 4.0, card_f / 4.0),
            sql: "SELECT fact.v, dim.r FROM fact, dim WHERE fact.k = dim.id".to_string(),
            expect_op: "hash_join",
        },
    ]
}

struct WorkloadResult {
    name: &'static str,
    class: &'static str,
    rows: usize,
    batch_ms: f64,
    fused_ms: f64,
    speedup: f64,
}

fn optimize(catalog: &mut Catalog, sql: &str) -> RelPlan {
    let q = plan_query(sql, catalog).expect("workload query must parse");
    let model = RelModel::with_defaults(catalog.clone());
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.expr);
    opt.find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
        .expect("workload query must be satisfiable")
}

fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

/// Run an engine's operator tree to exhaustion, returning delivered
/// rows. This is the timed engine loop: batches are consumed in place,
/// never converted to client row tuples.
fn drive(op: &mut dyn BatchOperator) -> u64 {
    let mut batch = Batch::default();
    let mut rows = 0u64;
    op.open();
    while op.next_batch(&mut batch) {
        rows += batch.live_rows() as u64;
        std::hint::black_box(&mut batch);
    }
    op.close();
    rows
}

fn run_workload(w: &Workload, args: &Args, cfg: BatchConfig) -> WorkloadResult {
    let mut catalog = w.catalog.clone();
    let plan = optimize(&mut catalog, &w.sql);
    let explained = volcano_rel::explain_plan(&catalog, &plan);
    assert!(
        explained.contains(w.expect_op),
        "{}: winning plan lost its {} (plan drift?):\n{}",
        w.name,
        w.expect_op,
        explained
    );
    let disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(
        Arc::new(MemDisk::new()),
        Duration::from_micros(args.latency_us),
    ));
    let db = Database::with_disk(catalog, disk, args.pool_pages);
    db.generate(42);

    // Correctness first: all three engines must agree before any timing.
    let tuple_rows = db.execute(&plan);
    let batch_rows = db.execute_batch(&plan, cfg);
    let fused_rows = db.execute_fused(&plan, cfg);
    assert_eq!(
        sorted_copy(&tuple_rows),
        sorted_copy(&batch_rows),
        "{}: tuple and batch engines disagree",
        w.name
    );
    assert_eq!(
        sorted_copy(&tuple_rows),
        sorted_copy(&fused_rows),
        "{}: tuple and fused engines disagree",
        w.name
    );
    let rows = tuple_rows.len();
    drop((tuple_rows, batch_rows, fused_rows));

    let mut batch_best = f64::INFINITY;
    let mut fused_best = f64::INFINITY;
    for _ in 0..args.reps.max(1) {
        let t = Instant::now();
        let mut compiled = compile_batch(&db, &plan, cfg);
        let delivered = drive(compiled.operator.as_mut());
        batch_best = batch_best.min(t.elapsed().as_secs_f64());
        assert_eq!(delivered, rows as u64, "{}: batch drive lost rows", w.name);
        let t = Instant::now();
        let mut compiled = compile_fused(&db, &plan, cfg);
        let delivered = drive(compiled.operator.as_mut());
        fused_best = fused_best.min(t.elapsed().as_secs_f64());
        assert_eq!(delivered, rows as u64, "{}: fused drive lost rows", w.name);
    }
    let batch_ms = batch_best * 1e3;
    let fused_ms = fused_best * 1e3;
    WorkloadResult {
        name: w.name,
        class: w.class,
        rows,
        batch_ms,
        fused_ms,
        speedup: batch_ms / fused_ms.max(1e-9),
    }
}

fn results_json(results: &[WorkloadResult]) -> String {
    let items: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"class\":\"{}\",\"rows\":{},",
                    "\"batch_ms\":{},\"fused_ms\":{},\"speedup\":{}}}"
                ),
                r.name, r.class, r.rows, r.batch_ms, r.fused_ms, r.speedup
            )
        })
        .collect();
    items.join(",")
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    let cfg = BatchConfig::with_batch_size(args.batch_size);
    println!("batch-vs-fused executor benchmark");
    println!(
        "card {}, best of {} reps, batch size {}, latency {}us, pool {} pages{}\n",
        args.card,
        args.reps,
        args.batch_size,
        args.latency_us,
        args.pool_pages,
        if args.smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "workload", "class", "rows", "batch ms", "fused ms", "speedup"
    );

    let mut results = Vec::new();
    for w in workloads(args.card) {
        let r = run_workload(&w, &args, cfg);
        println!(
            "{:<26} {:>8} {:>10} {:>10.2} {:>10.2} {:>8.2}x",
            r.name, r.class, r.rows, r.batch_ms, r.fused_ms, r.speedup
        );
        results.push(r);
    }

    let g = geomean(&results.iter().map(|r| r.speedup).collect::<Vec<_>>());
    println!("\nheadline geomean speedup: {g:.2}x (fused over batch)");

    if let Some(path) = &args.json {
        let json = format!(
            concat!(
                "{{\"benchmark\":\"exec_fused\",\"card\":{},\"reps\":{},",
                "\"batch_size\":{},\"latency_us\":{},\"pool_pages\":{},",
                "\"smoke\":{},\"workloads\":[{}],\"geomean_speedup\":{}}}\n"
            ),
            args.card,
            args.reps,
            args.batch_size,
            args.latency_us,
            args.pool_pages,
            args.smoke,
            results_json(&results),
            g
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
