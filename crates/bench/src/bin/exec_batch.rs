//! Tuple-vs-batch executor benchmark.
//!
//! Runs the same optimized physical plans through the tuple-at-a-time
//! engine (`Database::execute`) and the vectorized batch engine
//! (`Database::execute_batch`) and reports per-workload wall time and
//! speedup. Workloads fall in two classes:
//!
//! * **headline** — scan→filter→project pipelines and hash joins, the
//!   operator shapes the batch engine vectorizes end to end. Their
//!   speedups form the headline geometric mean, which CI gates at
//!   ≥ 2.0× (see `check_schema`).
//! * **adapter** — sort- and aggregate-rooted plans, which execute the
//!   root tuple-at-a-time behind batch↔tuple adapters. Reported
//!   separately and excluded from the headline geomean; they measure
//!   adapter overhead, not kernel wins.
//!
//! Each workload is verified once per run: both engines must produce
//! the same multiset of rows, or the harness panics — a speedup over a
//! wrong answer is worthless.
//!
//! Usage:
//!   exec_batch [--card N] [--reps R] [--batch-size B] [--smoke]
//!              [--json PATH] [--no-json] [--baseline PATH]
//!
//! `--smoke` shrinks cardinalities and marks the export `"smoke":true`,
//! which exempts it from the ≥ 2.0× gate (debug-build CI runs are not
//! representative). `--baseline` (a previous `BENCH_exec.json`) adds a
//! `vs_baseline` drift block to the export.

use std::time::Instant;

use volcano_bench::{parse_json, Json};
use volcano_core::SearchOptions;
use volcano_exec::{BatchConfig, Database};
use volcano_rel::value::Tuple;
use volcano_rel::{Catalog, ColumnDef, RelModel, RelOptimizer, RelPlan, RelProps};
use volcano_sql::plan_query;

struct Args {
    card: usize,
    reps: usize,
    batch_size: usize,
    smoke: bool,
    json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        card: 200_000,
        reps: 3,
        batch_size: 1024,
        smoke: false,
        json: Some("BENCH_exec.json".to_string()),
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--card" => args.card = it.next().expect("--card N").parse().expect("number"),
            "--reps" => args.reps = it.next().expect("--reps R").parse().expect("number"),
            "--batch-size" => {
                args.batch_size = it.next().expect("--batch-size B").parse().expect("number")
            }
            "--smoke" => {
                args.smoke = true;
                args.card = 5_000;
                args.reps = 1;
            }
            "--json" => args.json = Some(it.next().expect("--json PATH")),
            "--no-json" => args.json = None,
            "--baseline" => args.baseline = Some(it.next().expect("--baseline PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// One benchmark workload: a catalog, a query, and the operator shape
/// the winning plan must contain (so a planner change cannot silently
/// turn a join benchmark into something else).
struct Workload {
    name: &'static str,
    /// "headline" (vectorized end to end, gated) or "adapter".
    class: &'static str,
    catalog: Catalog,
    sql: String,
    expect_op: &'static str,
}

/// All-integer catalogs: decode cost is small, so the measured delta is
/// iterator overhead vs kernel throughput — the quantity under test.
fn workloads(card: usize) -> Vec<Workload> {
    let card_f = card as f64;
    let scan_catalog = || {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            card_f,
            vec![
                ColumnDef::int("a", card_f),
                ColumnDef::int("b", 1000.0),
                ColumnDef::int("c", 100.0),
                ColumnDef::int("d", 10.0),
            ],
        );
        c
    };
    let join_catalog = |dim_card: f64, key_distinct: f64| {
        let mut c = Catalog::new();
        c.add_table(
            "fact",
            card_f,
            vec![
                ColumnDef::int("k", key_distinct),
                ColumnDef::int("v", 1000.0),
            ],
        );
        c.add_table(
            "dim",
            dim_card,
            vec![ColumnDef::int("id", dim_card), ColumnDef::int("r", 10.0)],
        );
        c
    };
    vec![
        Workload {
            name: "scan_project",
            class: "headline",
            catalog: scan_catalog(),
            sql: "SELECT t.a, t.b FROM t".to_string(),
            expect_op: "scan",
        },
        Workload {
            name: "scan_filter_project",
            class: "headline",
            catalog: scan_catalog(),
            sql: "SELECT t.a FROM t WHERE t.c < 30".to_string(),
            expect_op: "scan",
        },
        Workload {
            name: "scan_filter_project_low",
            class: "headline",
            catalog: scan_catalog(),
            sql: "SELECT t.a FROM t WHERE t.c < 2".to_string(),
            expect_op: "scan",
        },
        Workload {
            name: "hash_join_small_build",
            class: "headline",
            catalog: join_catalog(100.0, 100.0),
            sql: "SELECT fact.v, dim.r FROM fact, dim WHERE fact.k = dim.id".to_string(),
            expect_op: "hash_join",
        },
        Workload {
            name: "hash_join_large_build",
            class: "headline",
            catalog: join_catalog(card_f / 4.0, card_f / 4.0),
            sql: "SELECT fact.v, dim.r FROM fact, dim WHERE fact.k = dim.id".to_string(),
            expect_op: "hash_join",
        },
        Workload {
            name: "sort",
            class: "adapter",
            catalog: scan_catalog(),
            sql: "SELECT t.b FROM t WHERE t.c < 30 ORDER BY t.b".to_string(),
            expect_op: "sort",
        },
        Workload {
            name: "aggregate",
            class: "adapter",
            catalog: scan_catalog(),
            sql: "SELECT t.d, COUNT(*) FROM t GROUP BY t.d".to_string(),
            expect_op: "aggregate",
        },
    ]
}

struct WorkloadResult {
    name: &'static str,
    class: &'static str,
    rows: usize,
    tuple_ms: f64,
    batch_ms: f64,
    speedup: f64,
}

fn optimize(catalog: &mut Catalog, sql: &str) -> RelPlan {
    let q = plan_query(sql, catalog).expect("workload query must parse");
    let model = RelModel::with_defaults(catalog.clone());
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&q.expr);
    opt.find_best_plan(root, RelProps::sorted(q.order_by.clone()), None)
        .expect("workload query must be satisfiable")
}

fn sorted_copy(rows: &[Tuple]) -> Vec<Tuple> {
    let mut s = rows.to_vec();
    s.sort();
    s
}

fn run_workload(w: &Workload, reps: usize, cfg: BatchConfig) -> WorkloadResult {
    let mut catalog = w.catalog.clone();
    let plan = optimize(&mut catalog, &w.sql);
    let explained = volcano_rel::explain_plan(&catalog, &plan);
    assert!(
        explained.contains(w.expect_op),
        "{}: winning plan lost its {} (plan drift?):\n{}",
        w.name,
        w.expect_op,
        explained
    );
    let db = Database::in_memory(catalog);
    db.generate(42);

    // Correctness first: a speedup over a wrong answer is worthless.
    let tuple_rows = db.execute(&plan);
    let batch_rows = db.execute_batch(&plan, cfg);
    assert_eq!(
        sorted_copy(&tuple_rows),
        sorted_copy(&batch_rows),
        "{}: engines disagree on the result multiset",
        w.name
    );
    let rows = tuple_rows.len();
    drop((tuple_rows, batch_rows));

    let mut tuple_best = f64::INFINITY;
    let mut batch_best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(db.execute(&plan));
        tuple_best = tuple_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(db.execute_batch(&plan, cfg));
        batch_best = batch_best.min(t.elapsed().as_secs_f64());
    }
    let tuple_ms = tuple_best * 1e3;
    let batch_ms = batch_best * 1e3;
    WorkloadResult {
        name: w.name,
        class: w.class,
        rows,
        tuple_ms,
        batch_ms,
        speedup: tuple_ms / batch_ms.max(1e-9),
    }
}

fn baseline_geomean(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v = parse_json(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    v.get("geomean_speedup")
        .and_then(Json::as_num)
        .expect("baseline missing geomean_speedup")
}

fn results_json(results: &[&WorkloadResult]) -> String {
    let items: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"class\":\"{}\",\"rows\":{},",
                    "\"tuple_ms\":{},\"batch_ms\":{},\"speedup\":{}}}"
                ),
                r.name, r.class, r.rows, r.tuple_ms, r.batch_ms, r.speedup
            )
        })
        .collect();
    items.join(",")
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    let cfg = BatchConfig::with_batch_size(args.batch_size);
    println!("tuple-vs-batch executor benchmark");
    println!(
        "card {}, best of {} reps, batch size {}{}\n",
        args.card,
        args.reps,
        args.batch_size,
        if args.smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "workload", "class", "rows", "tuple ms", "batch ms", "speedup"
    );

    let mut results = Vec::new();
    for w in workloads(args.card) {
        let r = run_workload(&w, args.reps, cfg);
        println!(
            "{:<26} {:>8} {:>10} {:>10.2} {:>10.2} {:>8.2}x",
            r.name, r.class, r.rows, r.tuple_ms, r.batch_ms, r.speedup
        );
        results.push(r);
    }

    let headline: Vec<&WorkloadResult> = results.iter().filter(|r| r.class == "headline").collect();
    let adapter: Vec<&WorkloadResult> = results.iter().filter(|r| r.class == "adapter").collect();
    let g = geomean(&headline.iter().map(|r| r.speedup).collect::<Vec<_>>());
    println!("\nheadline geomean speedup: {g:.2}x (adapter workloads excluded)");

    let vs_baseline = args.baseline.as_deref().map(|path| {
        let b = baseline_geomean(path);
        println!("baseline geomean ({path}): {b:.2}x, ratio {:.2}", g / b);
        (b, g / b)
    });

    if let Some(path) = &args.json {
        let vs = match vs_baseline {
            None => String::new(),
            Some((b, ratio)) => {
                format!(",\"vs_baseline\":{{\"baseline_geomean\":{b},\"ratio\":{ratio}}}")
            }
        };
        let json = format!(
            concat!(
                "{{\"benchmark\":\"exec_batch\",\"card\":{},\"reps\":{},",
                "\"batch_size\":{},\"smoke\":{},\"workloads\":[{}],",
                "\"adapter_workloads\":[{}],\"geomean_speedup\":{}{}}}\n"
            ),
            args.card,
            args.reps,
            args.batch_size,
            args.smoke,
            results_json(&headline),
            results_json(&adapter),
            g,
            vs
        );
        std::fs::write(path, json).expect("write json");
        println!("JSON written to {path}");
    }
    println!(
        "total harness time: {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
