//! A minimal JSON value model and recursive-descent parser — enough to
//! validate the hand-written `BENCH_*.json` exports without pulling in a
//! serialization crate. Not a general-purpose parser: no `\u` escapes
//! beyond pass-through, numbers parsed via [`f64::from_str`].

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; BTreeMap keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(a));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse_json(r#""a;b\n""#).unwrap(),
            Json::Str("a;b\n".to_string())
        );
        let v = parse_json(r#"{"a":[1,2,{"b":"c"}],"d":false}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(false)));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("c"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} x").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn round_trips_real_search_stats_export() {
        let s = volcano_core::SearchStats::default().to_json();
        let v = parse_json(&s).unwrap();
        assert!(v.get("goals_optimized").and_then(Json::as_num).is_some());
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("exhaustive"));
    }
}
