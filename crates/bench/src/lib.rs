//! # volcano-bench — workloads and harnesses for the paper's evaluation
//!
//! [`workload`] generates the §4.2 experiment queries: random relational
//! select–join queries over 2–8 input relations of 1,200–7,200 records of
//! 100 bytes, with one selection per input relation and a connected join
//! graph (so exhaustive search with bushy trees is meaningful and no
//! Cartesian products are required).
//!
//! [`runner`] runs one query through both optimizers and returns the
//! measurements Figure 4 plots: optimization time, estimated execution
//! time of the produced plan, and memory consumption.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod jsonv;
pub mod runner;
pub mod workload;

pub use jsonv::{parse_json, Json, JsonError};
pub use runner::{run_exodus, run_volcano, ExodusMeasurement, VolcanoMeasurement};
pub use workload::{generate_query, GeneratedQuery, WorkloadConfig};
