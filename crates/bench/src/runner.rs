//! Run one generated query through each optimizer and measure what
//! Figure 4 plots.

use std::time::Instant;

use exodus::ExodusOptimizer;
use volcano_core::{PhysicalProps, SearchOptions, SearchStats};
use volcano_rel::{RelModel, RelModelOptions, RelOptimizer, RelProps};

use crate::workload::GeneratedQuery;

/// Measurements from one Volcano optimization.
#[derive(Debug, Clone)]
pub struct VolcanoMeasurement {
    /// Wall-clock optimization time in seconds.
    pub opt_seconds: f64,
    /// Estimated execution time of the produced plan, in cost-model ms.
    pub est_exec_ms: f64,
    /// Memo memory estimate in bytes ("less than 1 MB of work space").
    pub memo_bytes: usize,
    /// Logical expressions created during the search.
    pub exprs: usize,
    /// Equivalence classes created during the search.
    pub groups: usize,
    /// Full search statistics for the run (exported to BENCH_*.json).
    pub stats: SearchStats,
}

/// Measurements from one EXODUS optimization (`None` cost = aborted).
#[derive(Debug, Clone)]
pub struct ExodusMeasurement {
    /// Wall-clock optimization time in seconds (including aborted runs).
    pub opt_seconds: f64,
    /// Estimated execution time, or `None` when the optimizer aborted.
    pub est_exec_ms: Option<f64>,
    /// MESH memory estimate in bytes.
    pub mesh_bytes: usize,
    /// Reanalysis count — the documented EXODUS time sink.
    pub reanalyses: u64,
}

/// Optimize with the Volcano optimizer generator (paper §4.2 model
/// configuration unless `options` says otherwise).
pub fn run_volcano(query: &GeneratedQuery, options: SearchOptions) -> VolcanoMeasurement {
    let model = RelModel::new(query.catalog.clone(), RelModelOptions::paper_fig4());
    let start = Instant::now();
    let mut opt = RelOptimizer::new(&model, options);
    let root = opt.insert_tree(&query.expr);
    let plan = opt
        .find_best_plan(root, RelProps::any(), None)
        .expect("the fig4 workload is always satisfiable");
    let opt_seconds = start.elapsed().as_secs_f64();
    VolcanoMeasurement {
        opt_seconds,
        est_exec_ms: plan.cost.total(),
        memo_bytes: opt.stats().memo_bytes,
        exprs: opt.stats().exprs_created,
        groups: opt.stats().groups_created,
        stats: opt.stats().clone(),
    }
}

/// Optimize with the EXODUS baseline under a MESH memory budget.
pub fn run_exodus(query: &GeneratedQuery, memory_budget: usize) -> ExodusMeasurement {
    let model = RelModel::new(query.catalog.clone(), RelModelOptions::paper_fig4());
    let optimizer = ExodusOptimizer::new(&model).with_memory_budget(memory_budget);
    let start = Instant::now();
    match optimizer.optimize(&query.expr, &[]) {
        Ok(out) => ExodusMeasurement {
            opt_seconds: start.elapsed().as_secs_f64(),
            est_exec_ms: Some(out.cost.total()),
            mesh_bytes: out.stats.mesh_bytes,
            reanalyses: out.stats.reanalyses,
        },
        Err(abort) => ExodusMeasurement {
            opt_seconds: start.elapsed().as_secs_f64(),
            est_exec_ms: None,
            mesh_bytes: abort.stats.mesh_bytes,
            reanalyses: abort.stats.reanalyses,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_query, WorkloadConfig};

    #[test]
    fn both_runners_complete_small_queries() {
        let q = generate_query(&WorkloadConfig::relations(3), 1);
        let v = run_volcano(&q, SearchOptions::default());
        let e = run_exodus(&q, 64 << 20);
        assert!(v.est_exec_ms > 0.0);
        let e_cost = e.est_exec_ms.expect("3 relations must fit in 64 MiB");
        // Volcano's exhaustive, property-driven search can never lose.
        assert!(v.est_exec_ms <= e_cost + 1e-6);
    }

    #[test]
    fn volcano_plan_quality_never_worse_across_seeds() {
        for seed in 0..10 {
            for n in 2..=5 {
                let q = generate_query(&WorkloadConfig::relations(n), seed);
                let v = run_volcano(&q, SearchOptions::default());
                let e = run_exodus(&q, 256 << 20);
                if let Some(ec) = e.est_exec_ms {
                    assert!(
                        v.est_exec_ms <= ec + 1e-6,
                        "seed {seed} n {n}: volcano {} worse than exodus {}",
                        v.est_exec_ms,
                        ec
                    );
                }
            }
        }
    }
}
