//! Random select–join query generation per the paper's §4.2 setup.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use volcano_rel::builder::{join, select_one};
use volcano_rel::{Catalog, Cmp, CmpOp, ColumnDef, JoinPred, RelExpr, TableId};

/// Workload parameters; defaults reproduce §4.2.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of input relations (the paper sweeps 2–8).
    pub num_relations: usize,
    /// Minimum relation cardinality (paper: 1,200 records).
    pub min_card: u64,
    /// Maximum relation cardinality (paper: 7,200 records).
    pub max_card: u64,
    /// Number of integer join/selection columns per relation.
    pub int_columns: usize,
    /// Probability that a new join edge reuses an attribute already used
    /// by another edge at the same relation — this is what creates
    /// *interesting orders* for the property-driven search to exploit.
    pub shared_attr_probability: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_relations: 4,
            min_card: 1_200,
            max_card: 7_200,
            int_columns: 4,
            shared_attr_probability: 0.8,
        }
    }
}

impl WorkloadConfig {
    /// Config for `n` relations, other parameters per the paper.
    pub fn relations(n: usize) -> Self {
        WorkloadConfig {
            num_relations: n,
            ..WorkloadConfig::default()
        }
    }
}

/// One generated query with its private catalog.
pub struct GeneratedQuery {
    /// The catalog the query runs against.
    pub catalog: Catalog,
    /// The query: joins over selections over scans.
    pub expr: RelExpr,
    /// Number of input relations.
    pub num_relations: usize,
}

/// Generate one random select–join query.
///
/// The join graph is a random spanning tree over the relations (so the
/// query has exactly `n - 1` binary joins and needs no Cartesian
/// products), each relation carries one selection placed directly above
/// its scan ("as many selections as input relations"), and 100-byte rows
/// are modelled with `int_columns` integer columns plus a string filler.
pub fn generate_query(config: &WorkloadConfig, seed: u64) -> GeneratedQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_relations;
    assert!(n >= 1);

    let mut catalog = Catalog::new();
    let mut tables: Vec<TableId> = Vec::with_capacity(n);
    for i in 0..n {
        let card = rng.gen_range(config.min_card..=config.max_card) as f64;
        let mut cols: Vec<ColumnDef> = (0..config.int_columns)
            .map(|c| {
                // c0 is a unique key (selection target); the remaining
                // columns are join candidates with medium/low distinct
                // counts, so join results grow and plan choice matters.
                let distinct = if c == 0 {
                    card
                } else {
                    // Moderate, fairly uniform growth (~3x per join):
                    // large enough that intermediate results dominate and
                    // no join order can avoid them, small enough that
                    // per-input costs — where order-based plans win — stay
                    // a meaningful share of total cost.
                    if rng.gen_range(0..5) < 4 {
                        card / 10.0
                    } else {
                        100.0
                    }
                };
                ColumnDef::int(&format!("c{c}"), distinct.max(1.0))
            })
            .collect();
        // Pad the row to 100 bytes (paper: "records of 100 bytes").
        let pad = 100u32.saturating_sub(8 * config.int_columns as u32);
        cols.push(ColumnDef::str("filler", pad, card));
        tables.push(catalog.add_table(&format!("t{i}"), card, cols));
    }

    // Selection per relation, above its scan: ranges on the key column
    // (System R's 1/3 selectivity), or equality on a categorical column
    // (selectivity ≥ 1/100) — selective but not annihilating, so the
    // intermediate results that drive plan choice stay meaningful.
    let mut leaves: Vec<RelExpr> = Vec::with_capacity(n);
    for &t in &tables {
        let table = catalog.table(t);
        let categorical: Vec<_> = table
            .columns
            .iter()
            .take(config.int_columns)
            .filter(|c| c.distinct <= 100.0)
            .collect();
        let cmp = if rng.gen_bool(0.85) || categorical.is_empty() {
            let col = &table.columns[0];
            Cmp::new(col.attr, CmpOp::Lt, rng.gen_range(0..1_000_000i64))
        } else {
            let col = categorical[rng.gen_range(0..categorical.len())];
            Cmp::new(
                col.attr,
                CmpOp::Eq,
                rng.gen_range(0..col.distinct as i64 + 1),
            )
        };
        leaves.push(select_one(RelExpr::leaf(volcano_rel::RelOp::Get(t)), cmp));
    }

    // Random spanning tree: connect each new relation to a random
    // already-connected one.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    // The first relation in the order is the *hub*: with probability
    // `shared_attr_probability`, an edge joins the new relation to the
    // hub on the hub's designated join attribute (the star-schema /
    // N-way-common-key pattern). Runs of joins sharing one attribute are
    // what give a property-driven search interesting orders to exploit;
    // non-hub edges pick a random partner and fresh attributes.
    let join_col = |rng: &mut StdRng, catalog: &Catalog, idx: usize| {
        // Join columns exclude c0 (the unique key), so join
        // selectivities stay in a range where results grow.
        let t = catalog.table_by_name(&format!("t{idx}")).unwrap();
        t.columns[rng.gen_range(1..config.int_columns)].attr
    };
    let hub_attr = join_col(&mut rng, &catalog, order[0]);
    let mut expr: Option<RelExpr> = None;
    let mut joined: Vec<usize> = Vec::new();

    for &rel in &order {
        let leaf = leaves[rel].clone();
        match expr.take() {
            None => {
                expr = Some(leaf);
                joined.push(rel);
            }
            Some(acc) => {
                let pa = if rng.gen_bool(config.shared_attr_probability) {
                    hub_attr
                } else {
                    let partner = joined[rng.gen_range(0..joined.len())];
                    join_col(&mut rng, &catalog, partner)
                };
                let ra = join_col(&mut rng, &catalog, rel);
                // The accumulated expression is on the left; its schema
                // contains `pa`.
                expr = Some(join(acc, leaf, JoinPred::eq(pa, ra)));
                joined.push(rel);
            }
        }
    }

    GeneratedQuery {
        catalog,
        expr: expr.expect("at least one relation"),
        num_relations: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcano_core::model::Operator;

    #[test]
    fn query_shape_matches_paper_setup() {
        for n in 2..=6 {
            let q = generate_query(&WorkloadConfig::relations(n), 42 + n as u64);
            assert_eq!(q.num_relations, n);
            // n scans, n selections, n-1 joins.
            assert_eq!(q.expr.node_count(), 3 * n - 1);
            assert_eq!(count_ops(&q.expr, "join"), n - 1);
            assert_eq!(count_ops(&q.expr, "select"), n);
            assert_eq!(count_ops(&q.expr, "get"), n);
        }
    }

    #[test]
    fn rows_are_100_bytes() {
        let q = generate_query(&WorkloadConfig::relations(3), 7);
        for t in q.catalog.tables() {
            assert_eq!(t.row_width(), 100);
            assert!(t.card >= 1_200.0 && t.card <= 7_200.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_query(&WorkloadConfig::relations(5), 99);
        let b = generate_query(&WorkloadConfig::relations(5), 99);
        assert_eq!(a.expr, b.expr);
    }

    fn count_ops(e: &RelExpr, name: &str) -> usize {
        let mut c = usize::from(e.op.name() == name);
        for i in &e.inputs {
            c += count_ops(i, name);
        }
        c
    }
}
