//! Criterion micro-benchmarks behind Figure 4's optimization-time
//! series: Volcano vs. the EXODUS baseline at increasing query
//! complexity. (The full 50-queries-per-level table is produced by the
//! `fig4` binary; this bench tracks per-query latency precisely.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use volcano_bench::{generate_query, run_exodus, run_volcano, WorkloadConfig};
use volcano_core::SearchOptions;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_opt_time");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let query = generate_query(&WorkloadConfig::relations(n), 42 + n as u64);
        group.bench_with_input(BenchmarkId::new("volcano", n), &query, |b, q| {
            b.iter(|| run_volcano(q, SearchOptions::default()))
        });
        if n <= 6 {
            // EXODUS at n=8 takes seconds per query; keep the bench fast.
            group.bench_with_input(BenchmarkId::new("exodus", n), &query, |b, q| {
                b.iter(|| run_exodus(q, 256 << 20))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
