//! Ablations A–D: what each search mechanism contributes to optimization
//! time (the answer is never plan quality — those configurations stay
//! exhaustive, which the invariant tests assert separately).
//!
//! * A — branch-and-bound pruning (§3: cost limits passed down)
//! * B — failure memoization (§3: "interesting" facts include failures)
//! * C — goal-directed physical properties (measured via a sorted goal,
//!   which exercises the property-driven machinery end to end)
//! * D — promise ordering of moves

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use volcano_bench::{generate_query, WorkloadConfig};
use volcano_core::{PhysicalProps, SearchOptions};
use volcano_rel::{JoinSpace, RelModel, RelModelOptions, RelOptimizer, RelProps};

fn optimize(query: &volcano_bench::GeneratedQuery, opts: SearchOptions, sorted_goal: bool) {
    optimize_in_space(query, opts, sorted_goal, JoinSpace::Bushy)
}

fn optimize_in_space(
    query: &volcano_bench::GeneratedQuery,
    opts: SearchOptions,
    sorted_goal: bool,
    space: JoinSpace,
) {
    let model = RelModel::new(
        query.catalog.clone(),
        RelModelOptions {
            join_space: space,
            ..RelModelOptions::paper_fig4()
        },
    );
    let mut opt = RelOptimizer::new(&model, opts);
    let root = opt.insert_tree(&query.expr);
    let goal = if sorted_goal {
        let attr = opt.memo().logical_props(opt.memo().repr(root)).cols[0].attr;
        RelProps::sorted(vec![attr])
    } else {
        RelProps::any()
    };
    let _ = opt.find_best_plan(root, goal, None).unwrap();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let n = 6;
    let query = generate_query(&WorkloadConfig::relations(n), 4242);

    group.bench_function(BenchmarkId::new("all_mechanisms", n), |b| {
        b.iter(|| optimize(&query, SearchOptions::default(), false))
    });

    let no_prune = SearchOptions {
        pruning: false,
        ..SearchOptions::default()
    };
    group.bench_function(BenchmarkId::new("A_no_pruning", n), |b| {
        b.iter(|| optimize(&query, no_prune.clone(), false))
    });

    let no_fail = SearchOptions {
        failure_memo: false,
        ..SearchOptions::default()
    };
    group.bench_function(BenchmarkId::new("B_no_failure_memo", n), |b| {
        b.iter(|| optimize(&query, no_fail.clone(), false))
    });

    group.bench_function(BenchmarkId::new("C_sorted_goal", n), |b| {
        b.iter(|| optimize(&query, SearchOptions::default(), true))
    });

    let no_promise = SearchOptions {
        promise_ordering: false,
        ..SearchOptions::default()
    };
    group.bench_function(BenchmarkId::new("D_no_promise_order", n), |b| {
        b.iter(|| optimize(&query, no_promise.clone(), false))
    });

    // F: the Starburst search-space parameter (§5): left-deep trees only.
    group.bench_function(BenchmarkId::new("F_left_deep_space", n), |b| {
        b.iter(|| optimize_in_space(&query, SearchOptions::default(), false, JoinSpace::LeftDeep))
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
