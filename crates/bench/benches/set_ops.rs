//! Ablation E: alternative consistent sort orders for binary merge
//! operators — "for a sort-based implementation of intersection ... any
//! sort order of the two inputs will suffice as long as the two inputs
//! are sorted in the same way" (§3) — and "optimizing the union or
//! intersection of N sets is very similar to optimizing a join of N
//! relations" (§5): N-ary intersections are planned with the full
//! cost-based search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use volcano_core::{PhysicalProps, SearchOptions};
use volcano_rel::builder::intersect;
use volcano_rel::{
    Catalog, ColumnDef, QueryBuilder, RelExpr, RelModel, RelModelOptions, RelOptimizer, RelProps,
};

fn n_ary_intersection_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 0..n {
        c.add_table(
            &format!("s{i}"),
            3_000.0 + 500.0 * i as f64,
            vec![ColumnDef::int("a", 400.0), ColumnDef::int("b", 50.0)],
        );
    }
    c
}

fn build(model: &RelModel, n: usize) -> RelExpr {
    let q = QueryBuilder::new(model.catalog());
    let mut e = q.scan("s0");
    for i in 1..n {
        e = intersect(e, q.scan(&format!("s{i}")));
    }
    e
}

fn optimize(n: usize, variants: usize, sorted_goal_second_col: bool) -> f64 {
    let catalog = n_ary_intersection_catalog(n);
    let b_attr = catalog.attr("s0", "b");
    let opts = RelModelOptions {
        sort_order_variants: variants,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(catalog, opts);
    let expr = build(&model, n);
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    let goal = if sorted_goal_second_col {
        RelProps::sorted(vec![b_attr])
    } else {
        RelProps::any()
    };
    opt.find_best_plan(root, goal, None).unwrap().cost.total()
}

fn bench_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_ops");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        group.bench_function(BenchmarkId::new("intersect_1_order", n), |b| {
            b.iter(|| optimize(n, 1, false))
        });
        group.bench_function(BenchmarkId::new("intersect_2_orders", n), |b| {
            b.iter(|| optimize(n, 2, false))
        });
    }
    // The quality side of ablation E. For intersections the alternative
    // rarely wins (the output shrinks, so sorting it afterwards is
    // cheap); the win shows on multi-key merge *joins* whose outputs
    // grow: with a goal sorted on the second key, only the swapped key
    // order avoids sorting a huge join result.
    let one = optimize(4, 1, true);
    let two = optimize(4, 2, true);
    assert!(
        two <= one + 1e-6,
        "alternatives can only improve: {two} vs {one}"
    );
    let j1 = join_quality(1);
    let j2 = join_quality(2);
    assert!(
        j2 < j1,
        "the alternative key order must avoid the output sort: {j2} vs {j1}"
    );
    println!(
        "E: multi-key join, goal sorted on 2nd key: 1 order = {j1:.1}ms, 2 orders = {j2:.1}ms"
    );
    group.finish();
}

/// Optimal cost of a two-key join with the goal sorted on the *second*
/// key, under `variants` alternative key orders. Low-distinct keys make
/// the output far larger than the inputs, so a top-level sort is
/// expensive and the swapped-order merge join wins.
fn join_quality(variants: usize) -> f64 {
    let mut c = Catalog::new();
    c.add_table(
        "l",
        5_000.0,
        vec![ColumnDef::int("a", 5.0), ColumnDef::int("b", 2.0)],
    );
    c.add_table(
        "r",
        5_000.0,
        vec![ColumnDef::int("a", 5.0), ColumnDef::int("b", 2.0)],
    );
    let la = c.attr("l", "a");
    let lb = c.attr("l", "b");
    let ra = c.attr("r", "a");
    let rb = c.attr("r", "b");
    let opts = RelModelOptions {
        sort_order_variants: variants,
        ..RelModelOptions::default()
    };
    let model = RelModel::new(c, opts);
    let q = QueryBuilder::new(model.catalog());
    let expr = volcano_rel::builder::join(
        q.scan("l"),
        q.scan("r"),
        volcano_rel::JoinPred::on(vec![(la, ra), (lb, rb)]),
    );
    let mut opt = RelOptimizer::new(&model, SearchOptions::default());
    let root = opt.insert_tree(&expr);
    opt.find_best_plan(root, RelProps::sorted(vec![lb, la]), None)
        .unwrap()
        .cost
        .total()
}

criterion_group!(benches, bench_set_ops);
criterion_main!(benches);
